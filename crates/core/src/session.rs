//! The COBRA session: the end-to-end pipeline of the paper's Fig. 4.
//!
//! ```text
//! Provenance Engine → Provenance Polynomials ┐
//! Bound, Abstraction Trees ─────────────────→ Provenance Compression
//!                                             → Abstracted Polynomials
//! Meta-variables + Assignment ──────────────→ Results (+ speedup)
//! ```
//!
//! A [`CobraSession`] owns the variable registry, the input polynomials,
//! the user's valuation, trees and bound; [`compress`](CobraSession::compress)
//! runs the optimizer, after which meta-variables can be inspected
//! ([`meta_summary`](CobraSession::meta_summary), the paper's Fig. 5
//! screen) and scenarios evaluated ([`assign`](CobraSession::assign)).
//! With tracing enabled the session records the "under the hood" steps the
//! demonstration walks through (§4).

use crate::apply::AppliedAbstraction;
use crate::assign::{self, ResultComparison, SpeedupMeasurement};
use crate::budget::{SweepBudget, SweepOutcome};
use crate::cut::{Cut, MetaVar};
use crate::error::{CoreError, Result};
use crate::folds::MergeFold;
use crate::groups::GroupAnalysis;
use crate::multi::{
    optimize_forest_descent, optimize_single_tree, plan_forest_frontier, ForestFrontier,
};
use crate::planner::{
    AlgebraicDag, CutFrontier, CutPlanner, DagOptimizer, ExactDp, PlanContext, PlanSnapshot,
};
use crate::report::{CompressionReport, DagReport};
use crate::scenario::{
    measure_sweep_speedup, CompiledComparison, ErrorShadow, F64Divergence, F64ErrorBound,
    F64ScenarioSweep, FoldItem, ScenarioSweep,
};
use crate::scenario_set::ScenarioSet;
use crate::tree::AbstractionTree;
use cobra_provenance::{
    dag, BatchEvaluator, DagOptions, DagStats, DeltaReport, EvalProgram, PolyDelta, PolySet,
    ProvenanceStats, Valuation, Var, VarRegistry,
};
use cobra_util::{par, FxHashMap, FxHashSet, Rat};
use std::cell::OnceCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Maps an already-caught worker panic whose payload is the exact
/// `i128` rational overflow panic onto the typed, recoverable
/// [`CoreError::ExactOverflow`]; every other error passes through.
fn overflow_to_typed(e: CoreError) -> CoreError {
    match e {
        CoreError::WorkerPanicked(m) if m.contains("Rat overflow") => CoreError::ExactOverflow(m),
        other => other,
    }
}

/// Runs an exact sweep surface under `catch_unwind`, converting a `Rat`
/// overflow panic (reachable on adversarial coefficients near `i128::MAX`)
/// into the typed [`CoreError::ExactOverflow`] so a long-lived session or
/// server worker survives it; any unrelated panic is resumed unchanged.
fn catch_exact_overflow<T>(f: impl FnOnce() -> Result<T>) -> Result<T> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(result) => result.map_err(overflow_to_typed),
        Err(payload) => {
            let msg = par::panic_message(&payload);
            if msg.contains("Rat overflow") {
                Err(CoreError::ExactOverflow(msg))
            } else {
                resume_unwind(payload)
            }
        }
    }
}

/// One row of the meta-variable screen: the meta-variable, the original
/// variables it groups with their base values, and the default (average).
#[derive(Clone, Debug)]
pub struct MetaSummaryRow {
    /// Meta-variable name.
    pub name: String,
    /// `(leaf name, base value)` for each grouped variable.
    pub leaves: Vec<(String, Rat)>,
    /// Default value = average of the leaves' base values.
    pub default_value: Rat,
}

/// Cheap session statistics ([`CobraSession::info`]): everything here is
/// read off already-computed state — nothing compiles, plans, or
/// materializes polynomials.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SessionInfo {
    /// Registered abstraction trees.
    pub trees: usize,
    /// The current size bound, if one was set or selected.
    pub bound: Option<u64>,
    /// Planned frontier points (single-tree or forest), if planned.
    pub frontier_points: Option<usize>,
    /// Total monomials of the full provenance, when known without
    /// materializing polynomials.
    pub original_size: Option<u64>,
    /// Distinct variables of the full provenance, when known.
    pub original_vars: Option<usize>,
    /// Monomials of the current compression, if one is selected.
    pub compressed_size: Option<u64>,
    /// Distinct variables of the current compression, if selected.
    pub compressed_vars: Option<usize>,
    /// Stashed warm compressed-side engines.
    pub warm_engines: usize,
    /// True for re-hydrated sessions that have not yet decompiled their
    /// polynomials (the zero-copy cold path).
    pub hydrated: bool,
    /// Name of the `f64` lane kernel the session's sweeps resolve to
    /// (`COBRA_KERNEL`, runtime CPU detection — see
    /// [`cobra_util::kernel`]), as reported on monitoring surfaces.
    pub kernel: &'static str,
    /// True when algebraic DAG mode is armed
    /// ([`compile_dag`](CobraSession::compile_dag)).
    pub dag: bool,
    /// Shared-subterm slots across the *built* DAG engines (full +
    /// compressed side); `None` while no DAG engine has been built.
    pub dag_slots: Option<usize>,
}

/// An interactive COBRA session (Fig. 4).
pub struct CobraSession {
    pub(crate) reg: VarRegistry,
    /// The input polynomials. Eager for sessions built from parsed input;
    /// **lazy** for re-hydrated sessions ([`crate::hydrate`]), which carry
    /// a persisted full engine and decompile the polynomial set only when
    /// something actually needs it (a cold frontier selection's group
    /// analysis) — the zero-copy cold-start path never allocates it.
    pub(crate) polys: OnceCell<PolySet<Rat>>,
    pub(crate) base_valuation: Valuation<Rat>,
    pub(crate) trees: Vec<AbstractionTree>,
    /// The compact text each tree was parsed from (`None` for trees added
    /// programmatically) — what [`crate::hydrate`] persists so a restored
    /// session rebuilds identical trees.
    pub(crate) tree_texts: Vec<Option<String>>,
    pub(crate) bound: Option<u64>,
    /// Terms touched by deltas since the full program was last compiled
    /// from scratch: once the accumulated churn passes a fraction of the
    /// program, [`apply_delta`](CobraSession::apply_delta) compacts by
    /// recompiling instead of splicing another patch, bounding the local
    /// table's drift from first-occurrence order.
    pub(crate) delta_churn: usize,
    /// Exact compiled engine over the full provenance. The input
    /// polynomials never change after construction, so this is compiled
    /// once per session (lazily, on first compression) and *shared* with
    /// every [`Compressed`] state — recompressing under a new bound only
    /// compiles the compressed side.
    pub(crate) full_rat: OnceCell<BatchEvaluator<Rat>>,
    /// `f64` shadow of the full-side engine for the timing fast path,
    /// likewise session-invariant and built on first use.
    pub(crate) full_f64: OnceCell<BatchEvaluator<f64>>,
    pub(crate) compressed: Option<Compressed>,
    /// The planner's frontier state (one planning pass over the whole
    /// bound axis), populated by
    /// [`compress_frontier`](CobraSession::compress_frontier) and
    /// invalidated when a tree is added.
    pub(crate) frontier: Option<FrontierState>,
    /// The forest sibling of `frontier`, populated by
    /// [`compress_forest_frontier`](CobraSession::compress_forest_frontier).
    pub(crate) forest: Option<ForestFrontierState>,
    /// Algebraic DAG mode ([`compile_dag`](CobraSession::compile_dag)):
    /// when armed, every evaluation surface resolves to the DAG-rewritten
    /// engines instead of the flat ones.
    pub(crate) dag_mode: bool,
    /// The rewrite configuration of the armed optimizer.
    pub(crate) dag_opts: DagOptions,
    /// DAG rewrite of the session-invariant full-side exact engine, built
    /// lazily in armed mode and dropped whenever a delta patches the flat
    /// program it was rewritten from.
    pub(crate) dag_full_rat: OnceCell<BatchEvaluator<Rat>>,
    /// Its `f64` shadow (derived from the exact DAG program, so both
    /// paths share one slot structure).
    pub(crate) dag_full_f64: OnceCell<BatchEvaluator<f64>>,
    pub(crate) trace: Vec<String>,
    pub(crate) trace_enabled: bool,
}

pub(crate) struct Compressed {
    /// The meta-variable assignment and substitution of the chosen cut —
    /// always available without materializing the compressed polynomials
    /// (sweep projection, the Fig. 5 screen, and reports need only these).
    pub(crate) meta_vars: Vec<MetaVar>,
    pub(crate) substitution: FxHashMap<Var, Var>,
    pub(crate) original_size: usize,
    pub(crate) compressed_size: usize,
    pub(crate) compressed_vars: usize,
    pub(crate) cuts_display: Vec<String>,
    /// For frontier selections: the selected cut, the recipe of the lazy
    /// group-statistics application. `None` for `compress()`-built states,
    /// whose `applied` cell is pre-filled.
    pub(crate) lazy_cut: Option<Cut>,
    /// The applied abstraction (compressed polynomials included), built
    /// lazily for frontier selections — report-only bound sweeps never
    /// construct a polynomial.
    pub(crate) applied: OnceCell<AppliedAbstraction<Rat>>,
    /// Exact batched engines over the full and compressed provenance,
    /// compiled lazily on first evaluation: the full side shares the
    /// session's cached program (cheap `Arc` clone) and only the
    /// compressed side is compiled — so report-only compressions and
    /// frontier re-selections never pay for compilation.
    pub(crate) engines: OnceCell<CompiledComparison>,
    /// `f64` shadow of the compressed engine for the timing fast path,
    /// built lazily on the first speedup measurement (assign/sweep-only
    /// sessions never pay for the copy).
    pub(crate) comp_f64: OnceCell<BatchEvaluator<f64>>,
    /// The Higham running-error shadows (|coefficient| programs plus
    /// per-polynomial γ factors) for the *bounded* `f64` sweeps, derived
    /// from the `f64` engines on first use.
    pub(crate) err_shadow: OnceCell<ErrorShadow>,
    /// DAG-rewritten exact comparison (armed mode only), built lazily
    /// from the flat engines. A fresh cell on every `Compressed`
    /// construction is what guarantees delta updates can never serve
    /// stale slots: any path that rebuilds a selection rebuilds these.
    pub(crate) dag_engines: OnceCell<CompiledComparison>,
    /// `f64` shadow of the DAG compressed-side engine.
    pub(crate) dag_comp_f64: OnceCell<BatchEvaluator<f64>>,
    /// Higham shadows derived from the DAG `f64` engines (slot-aware
    /// rounding-op counts — see [`EvalProgram::rounding_op_counts`]).
    pub(crate) dag_err_shadow: OnceCell<ErrorShadow>,
}

impl Compressed {
    /// Wraps an eagerly applied abstraction (the `compress()` path).
    fn from_applied(applied: AppliedAbstraction<Rat>, cuts_display: Vec<String>) -> Compressed {
        let state = Compressed {
            meta_vars: applied.meta_vars.clone(),
            substitution: applied.substitution.clone(),
            original_size: applied.original_size,
            compressed_size: applied.compressed_size,
            compressed_vars: applied.distinct_vars(),
            cuts_display,
            lazy_cut: None,
            applied: OnceCell::new(),
            engines: OnceCell::new(),
            comp_f64: OnceCell::new(),
            err_shadow: OnceCell::new(),
            dag_engines: OnceCell::new(),
            dag_comp_f64: OnceCell::new(),
            dag_err_shadow: OnceCell::new(),
        };
        let _ = state.applied.set(applied);
        state
    }
}

/// The memoized outcome of one frontier planning pass: the group analysis
/// and Pareto curve are bound-independent, so changing the bound is an
/// `O(log frontier)` re-selection plus one fast cut application.
pub(crate) struct FrontierState {
    /// The group analysis behind the plan. Filled eagerly by
    /// [`CobraSession::compress_frontier`]; left empty by re-hydration and
    /// recomputed only if a *cold* selection must materialize compressed
    /// polynomials — the warm and report-only paths never need it.
    pub(crate) analysis: OnceCell<GroupAnalysis>,
    /// Per-tree-node group weight (monomials abstracted at that node),
    /// copied out of the analysis so bound re-selection and persistence
    /// work without it.
    pub(crate) node_weight: Vec<u64>,
    pub(crate) frontier: CutFrontier,
    /// Distinct variables of the full provenance (for reports).
    pub(crate) original_vars: usize,
    /// Total monomials of the full provenance (for reports).
    pub(crate) original_size: u64,
    /// The set's distinct variables, memoized for the fast apply path.
    pub(crate) reserved: FxHashSet<Var>,
    /// Distinct non-tree variables (base-term and group-context vars):
    /// they survive every cut, so any selection's `compressed_vars` is
    /// this count plus the cut nodes that some group actually touches.
    pub(crate) invariant_vars: usize,
    /// The planner's per-node DP tables behind the frontier, kept so a
    /// structural delta replans only the root-to-leaf paths whose weights
    /// changed ([`PlanContext::new_incremental`]). `None` for re-hydrated
    /// sessions, which fall back to a fresh plan on their first delta.
    pub(crate) plan_snapshot: Option<PlanSnapshot>,
    /// Registry length when `reserved` was last brought up to date. The
    /// registry is append-only, so this is a perfect generation stamp:
    /// variables interned through `registry_mut` since then are folded
    /// into `reserved` before the next cut substitution, keeping user
    /// variables from aliasing a meta-variable that shares their name.
    pub(crate) reg_len_at_plan: usize,
    /// Frontier index currently materialized in `compressed`, if any.
    pub(crate) selected: Option<usize>,
    /// Memoized per-point meta-variable substitutions: re-selecting a
    /// frontier point must reuse the *same* meta-variable identities it
    /// minted the first time (fresh-naming on every selection would strand
    /// the warm engines compiled against the earlier identities).
    pub(crate) subs: FxHashMap<usize, (FxHashMap<Var, Var>, Vec<MetaVar>)>,
    /// Compiled compressed-side engines of *previously* selected frontier
    /// points, stashed on de-selection so hopping back to a bound the
    /// session already explored re-installs its engines (cheap `Arc`
    /// clones) instead of decompiling, re-analyzing and recompiling.
    pub(crate) warm: FxHashMap<usize, WarmEngines>,
}

/// Engines kept warm for one de-selected frontier point.
pub(crate) struct WarmEngines {
    /// The exact compressed-side engine.
    pub(crate) rat: BatchEvaluator<Rat>,
    /// Its `f64` timing shadow, if it was ever built.
    pub(crate) f64: Option<BatchEvaluator<f64>>,
}

/// The forest analogue of [`FrontierState`]: a staircase of coordinate-
/// descent solutions over the bound axis, planned once by
/// [`CobraSession::compress_forest_frontier`].
pub(crate) struct ForestFrontierState {
    pub(crate) frontier: ForestFrontier,
    /// Distinct variables of the full provenance (for reports).
    pub(crate) original_vars: usize,
    /// Total monomials of the full provenance (for reports).
    pub(crate) original_size: u64,
    /// Frontier index currently materialized in `compressed`, if any.
    pub(crate) selected: Option<usize>,
    /// Previously selected staircase points, stashed **whole** on
    /// de-selection (applied polynomials, meta-variable identities and any
    /// compiled engines ride along): hopping back to a bound the session
    /// already explored re-installs the state instead of re-applying the
    /// per-tree cuts and recompiling — the forest analogue of
    /// [`FrontierState::warm`]. Forest deltas clear the whole state, so a
    /// stashed point can never outlive the polynomials it was built from.
    pub(crate) warm: FxHashMap<usize, Compressed>,
}

impl CobraSession {
    /// Starts a session over polynomials produced by any provenance engine
    /// (the registry must be the one the polynomials were built against).
    pub fn new(reg: VarRegistry, polys: PolySet<Rat>) -> CobraSession {
        let cell = OnceCell::new();
        let _ = cell.set(polys);
        CobraSession {
            reg,
            polys: cell,
            base_valuation: Valuation::with_default(Rat::ONE),
            trees: Vec::new(),
            tree_texts: Vec::new(),
            bound: None,
            delta_churn: 0,
            full_rat: OnceCell::new(),
            full_f64: OnceCell::new(),
            compressed: None,
            frontier: None,
            forest: None,
            dag_mode: false,
            dag_opts: DagOptions::default(),
            dag_full_rat: OnceCell::new(),
            dag_full_f64: OnceCell::new(),
            trace: Vec::new(),
            trace_enabled: false,
        }
    }

    /// The input polynomial set, decompiling a re-hydrated session's full
    /// engine on first use. An associated fn over the two cells (not
    /// `&self`) so callers holding `&mut self.reg` can still reach it.
    pub(crate) fn polys_of<'a>(
        cell: &'a OnceCell<PolySet<Rat>>,
        full: &OnceCell<BatchEvaluator<Rat>>,
    ) -> &'a PolySet<Rat> {
        cell.get_or_init(|| {
            full.get()
                .expect("a session without polynomials carries a full engine")
                .program()
                .decompile()
        })
    }

    /// The session-invariant compiled engine over the full provenance
    /// (compiled on first use, shared by every compression).
    pub(crate) fn full_engine(&self) -> &BatchEvaluator<Rat> {
        self.full_rat.get_or_init(|| {
            BatchEvaluator::compile(Self::polys_of(&self.polys, &self.full_rat))
        })
    }

    /// The session-invariant `f64` shadow of the full engine.
    pub(crate) fn full_f64_engine(&self) -> &BatchEvaluator<f64> {
        self.full_f64
            .get_or_init(|| BatchEvaluator::new(self.full_engine().program().to_f64_program()))
    }

    /// The **flat** exact compiled comparison of a compression, built on
    /// first use: the session-invariant full side is shared (an `Arc`
    /// clone), only the compressed side compiles — and only when
    /// something actually evaluates.
    fn flat_engines<'a>(&'a self, state: &'a Compressed) -> &'a CompiledComparison {
        state.engines.get_or_init(|| {
            CompiledComparison::from_engines(
                self.full_engine().clone(),
                BatchEvaluator::compile(&self.applied(state).compressed),
            )
        })
    }

    /// The exact comparison every evaluation surface uses: the flat
    /// engines, or — with DAG mode armed
    /// ([`compile_dag`](Self::compile_dag)) — their shared-subterm DAG
    /// rewrites ([`cobra_provenance::dag::rewrite`]). The `Rat` path of a
    /// DAG program is bit-identical to the flat walk (rearrangement is
    /// exact in the ring), so arming the mode never changes an exact
    /// answer.
    fn engines<'a>(&'a self, state: &'a Compressed) -> &'a CompiledComparison {
        if !self.dag_mode {
            return self.flat_engines(state);
        }
        state.dag_engines.get_or_init(|| {
            let flat = self.flat_engines(state);
            let compressed = dag::rewrite(flat.compressed.program(), &self.dag_opts).program;
            // The flat engines ride along as probe twins: DAG programs
            // never lower to the fixed-point exact kernel, so the `f64`
            // sweeps' divergence probes evaluate the (bit-identical) flat
            // originals instead of paying a `Rat` slot walk per probe.
            CompiledComparison::from_engines(
                self.dag_full_engine().clone(),
                BatchEvaluator::new(compressed),
            )
            .with_probe_twins(flat.full.clone(), flat.compressed.clone())
        })
    }

    /// The DAG rewrite of the session-invariant full engine (armed mode
    /// only), shared by every selection the way the flat full engine is.
    fn dag_full_engine(&self) -> &BatchEvaluator<Rat> {
        self.dag_full_rat.get_or_init(|| {
            let build = dag::rewrite(self.full_engine().program(), &self.dag_opts);
            BatchEvaluator::new(build.program)
        })
    }

    /// The applied abstraction of a compression, materialized on first
    /// access: `compress()` fills it eagerly, frontier selections defer
    /// the group-statistics polynomial construction until something needs
    /// the compressed set (engine compilation, `compressed_polynomials`).
    fn applied<'a>(&'a self, state: &'a Compressed) -> &'a AppliedAbstraction<Rat> {
        state.applied.get_or_init(|| {
            let cut = state
                .lazy_cut
                .as_ref()
                .expect("an unfilled applied cell implies a frontier selection");
            let frontier = self
                .frontier
                .as_ref()
                .expect("frontier selections keep their planning state");
            let polys = Self::polys_of(&self.polys, &self.full_rat);
            let analysis = frontier.analysis.get_or_init(|| {
                GroupAnalysis::analyze(polys, &self.trees[0])
                    .expect("a planned session's polynomials re-analyze cleanly")
            });
            let compressed = crate::apply::compress_polyset_with_groups(
                polys,
                &self.trees[0],
                analysis,
                cut,
                &state.meta_vars,
            );
            debug_assert_eq!(compressed.total_monomials(), state.compressed_size);
            AppliedAbstraction {
                original_size: state.original_size,
                compressed_size: state.compressed_size,
                compressed,
                substitution: state.substitution.clone(),
                meta_vars: state.meta_vars.clone(),
            }
        })
    }

    /// The `f64` timing shadows: session-cached full side, per-compression
    /// compressed side. In DAG mode both shadows derive from the exact DAG
    /// programs, so the `f64` path evaluates the identical slot structure
    /// the exact path does.
    fn f64_engines<'a>(
        &'a self,
        state: &'a Compressed,
    ) -> (&'a BatchEvaluator<f64>, &'a BatchEvaluator<f64>) {
        if !self.dag_mode {
            let full = self.full_f64_engine();
            let compressed = state.comp_f64.get_or_init(|| {
                BatchEvaluator::new(self.engines(state).compressed.program().to_f64_program())
            });
            return (full, compressed);
        }
        let full = self
            .dag_full_f64
            .get_or_init(|| BatchEvaluator::new(self.dag_full_engine().program().to_f64_program()));
        let compressed = state.dag_comp_f64.get_or_init(|| {
            BatchEvaluator::new(self.engines(state).compressed.program().to_f64_program())
        });
        (full, compressed)
    }

    /// The Higham running-error machinery for the bounded `f64` sweeps
    /// (|coefficient| shadow programs + per-polynomial γ factors), built
    /// once per compression on the first bounded sweep. DAG mode carries
    /// its own shadow: the slot-aware rounding-op counts certify the
    /// restructured evaluation, not the flat one.
    fn error_shadow<'a>(&'a self, state: &'a Compressed) -> &'a ErrorShadow {
        let cell = if self.dag_mode {
            &state.dag_err_shadow
        } else {
            &state.err_shadow
        };
        cell.get_or_init(|| {
            let (full, compressed) = self.f64_engines(state);
            ErrorShadow::new(full, compressed)
        })
    }

    /// Parses polynomials from the text interchange format and starts a
    /// session (the "any provenance engine" entry point).
    pub fn from_text(polys: &str) -> Result<CobraSession> {
        let mut reg = VarRegistry::new();
        let set = cobra_provenance::parse_polyset(polys, &mut reg).map_err(|e| {
            CoreError::Session(format!("polynomial parse failed: {e}"))
        })?;
        Ok(CobraSession::new(reg, set))
    }

    /// Enables step tracing (the demo's "under the hood" view).
    pub fn enable_trace(&mut self) {
        self.trace_enabled = true;
    }

    /// The recorded trace.
    pub fn trace(&self) -> &[String] {
        &self.trace
    }

    fn log(&mut self, msg: impl FnOnce() -> String) {
        if self.trace_enabled {
            self.trace.push(msg());
        }
    }

    /// The variable registry.
    pub fn registry(&self) -> &VarRegistry {
        &self.reg
    }

    /// Mutable registry access (for building valuations by name).
    pub fn registry_mut(&mut self) -> &mut VarRegistry {
        &mut self.reg
    }

    /// The input polynomials (decompiled from the persisted engine on
    /// first access in a re-hydrated session).
    pub fn polynomials(&self) -> &PolySet<Rat> {
        Self::polys_of(&self.polys, &self.full_rat)
    }

    /// Sets the default assignment of the provenance variables (the
    /// "original values"; defaults to the all-ones valuation meaning "no
    /// change").
    pub fn set_base_valuation(&mut self, val: Valuation<Rat>) {
        self.base_valuation = val;
    }

    /// The current base valuation.
    pub fn base_valuation(&self) -> &Valuation<Rat> {
        &self.base_valuation
    }

    /// Registers an abstraction tree.
    pub fn add_tree(&mut self, tree: AbstractionTree) {
        self.compressed = None;
        self.frontier = None;
        self.forest = None;
        self.trees.push(tree);
        self.tree_texts.push(None);
    }

    /// Parses and registers an abstraction tree from the compact text
    /// syntax (`Plans(Standard(p1,p2), …)`), remembering the source text
    /// so the session can be persisted ([`crate::hydrate`]).
    pub fn add_tree_text(&mut self, src: &str) -> Result<()> {
        let tree = AbstractionTree::parse(src, &mut self.reg)?;
        self.add_tree(tree);
        *self
            .tree_texts
            .last_mut()
            .expect("add_tree just pushed a slot") = Some(src.to_owned());
        Ok(())
    }

    /// The registered trees.
    pub fn trees(&self) -> &[AbstractionTree] {
        &self.trees
    }

    /// Sets the bound over the compressed provenance size.
    pub fn set_bound(&mut self, bound: u64) {
        self.compressed = None;
        self.bound = Some(bound);
    }

    /// Runs the compression: the exact planner for a single tree,
    /// coordinate descent for a forest. This is the one-shot path — it
    /// re-derives the plan from scratch for the current bound. Sessions
    /// exploring many bounds should call
    /// [`compress_frontier`](Self::compress_frontier) once and then
    /// [`select_bound`](Self::select_bound) per bound.
    ///
    /// # Errors
    /// `Session` if trees/bound are missing; `InfeasibleBound` if no
    /// abstraction fits.
    pub fn compress(&mut self) -> Result<CompressionReport> {
        let bound = self
            .bound
            .ok_or_else(|| CoreError::Session("set_bound must be called first".into()))?;
        if self.trees.is_empty() {
            return Err(CoreError::Session("no abstraction tree registered".into()));
        }
        // Reserve user-interned variables *before* the optimizer interns
        // its meta-variables, so the stamp advance below never hides them
        // from a later `select_bound`.
        self.sync_reserved_vars();
        let full_stats = ProvenanceStats::compute(Self::polys_of(&self.polys, &self.full_rat));
        self.log(|| format!("input: {full_stats}"));
        let polys = Self::polys_of(&self.polys, &self.full_rat);
        let trees: Vec<&AbstractionTree> = self.trees.iter().collect();
        let (cuts, applied) = if trees.len() == 1 {
            let (sol, applied) = optimize_single_tree(polys, trees[0], bound, &mut self.reg)?;
            (sol.cuts, applied)
        } else {
            let sol = optimize_forest_descent(polys, &trees, bound, &mut self.reg, 32)?;
            let pairs: Vec<(&AbstractionTree, &crate::cut::Cut)> =
                trees.iter().copied().zip(sol.cuts.iter()).collect();
            let applied = crate::apply::apply_cuts(polys, &pairs, &mut self.reg);
            (sol.cuts, applied)
        };
        let cuts_display: Vec<String> = self
            .trees
            .iter()
            .zip(&cuts)
            .map(|(t, c)| format!("{}: {}", t.name(), c.display(t)))
            .collect();
        for line in &cuts_display {
            let line = line.clone();
            self.log(move || format!("chosen cut — {line}"));
        }
        self.log(|| {
            format!(
                "compressed {} → {} monomials",
                applied.original_size, applied.compressed_size
            )
        });
        let report = CompressionReport {
            bound,
            original_size: applied.original_size as u64,
            compressed_size: applied.compressed_size as u64,
            original_vars: full_stats.distinct_vars,
            compressed_vars: applied.distinct_vars(),
            cuts: cuts_display.clone(),
            speedup: None,
        };
        // Engines compile lazily on first evaluation; the full-side
        // program stays session-cached either way.
        self.compressed = Some(Compressed::from_applied(applied, cuts_display));
        // Any frontier selection no longer reflects the compressed state.
        // The meta-variables the one-shot path just interned are the
        // session's own, not user variables: advance the generation stamp
        // past them so a later `select_bound` aliases onto them (it must
        // reproduce this compression bit for bit) instead of reserving
        // them and minting fresh meta-variables.
        if let Some(frontier) = &mut self.frontier {
            frontier.selected = None;
            frontier.reg_len_at_plan = self.reg.len();
        }
        if let Some(forest) = &mut self.forest {
            forest.selected = None;
        }
        Ok(report)
    }

    /// Plans the **entire** size/expressiveness Pareto frontier in one
    /// pass (the exact planner's
    /// [`plan_frontier`](crate::planner::CutPlanner::plan_frontier)) and
    /// caches it: afterwards any bound resolves through
    /// [`select_bound`](Self::select_bound) in `O(log frontier)` plus one
    /// fast cut application — no re-analysis, no re-planning, no
    /// recompilation of the full side. The curve is bound-independent, so
    /// calling this again is free until a tree is added.
    ///
    /// This is the multi-budget exploration surface the COBRA demo's
    /// interactive bound slider needs: one planning pass, then sweeps at
    /// every budget.
    ///
    /// ```
    /// use cobra_core::CobraSession;
    ///
    /// let mut session = CobraSession::from_text(
    ///     "P1 = 208.8*p1*m1 + 240*p1*m3 + 42*v*m1 + 24.2*v*m3",
    /// ).unwrap();
    /// session.add_tree_text("Plans(Standard(p1,p2), v)").unwrap();
    /// let frontier = session.compress_frontier().unwrap();
    /// let budgets: Vec<(usize, u64)> = frontier
    ///     .points()
    ///     .iter()
    ///     .map(|p| (p.variables, p.size))
    ///     .collect();
    /// // k = 2 ({Standard, v}, size 4) is dominated by the k = 3 leaf
    /// // cut at the same size, so the frontier keeps the two points any
    /// // bound can actually select
    /// assert_eq!(budgets, [(1, 2), (3, 4)]);
    /// // changing the bound is a re-selection, not a recomputation
    /// let report = session.select_bound(2).unwrap();
    /// assert_eq!(report.compressed_size, 2);
    /// assert_eq!(session.select_bound(4).unwrap().compressed_size, 4);
    /// ```
    ///
    /// # Errors
    /// `Session` unless exactly one tree is registered (use
    /// [`compress_forest_frontier`](Self::compress_forest_frontier) for
    /// forests, or [`compress`](Self::compress) for a single bound).
    pub fn compress_frontier(&mut self) -> Result<&CutFrontier> {
        if self.trees.len() != 1 {
            return Err(CoreError::Session(format!(
                "compress_frontier requires exactly one abstraction tree, got {}; \
                 use compress_forest_frontier() for forests",
                self.trees.len()
            )));
        }
        if self.frontier.is_none() {
            let set = Self::polys_of(&self.polys, &self.full_rat);
            let tree = &self.trees[0];
            let analysis = GroupAnalysis::analyze(set, tree)?;
            let ctx = PlanContext::new(tree, &analysis);
            let frontier = ExactDp
                .plan_frontier(&ctx)
                .expect("the exact DP frontier always exists");
            // Keep the DP tables: structural deltas replan incrementally
            // against them instead of rebuilding the whole tree.
            let plan_snapshot = Some(ctx.snapshot());
            let full_stats = ProvenanceStats::compute(set);
            // The non-tree variables survive every cut: count them once so
            // selections can report `compressed_vars` without building the
            // compressed polynomials.
            let mut invariant: FxHashSet<Var> = FxHashSet::default();
            for group in &analysis.groups {
                invariant.extend(group.context.vars());
            }
            let polys: Vec<_> = set.iter().map(|(_, p)| p).collect();
            for &(poly, term) in &analysis.base_terms {
                invariant.extend(polys[poly as usize].terms()[term as usize].0.vars());
            }
            let original_size = set.total_monomials() as u64;
            let reserved = set.distinct_vars();
            let points = frontier.len();
            self.log(|| {
                format!(
                    "planned frontier: {points} points, sizes {}..={}",
                    frontier.min_size(),
                    frontier.points().last().map_or(0, |p| p.size)
                )
            });
            let node_weight = analysis.node_weight.clone();
            let analysis_cell = OnceCell::new();
            let _ = analysis_cell.set(analysis);
            self.frontier = Some(FrontierState {
                analysis: analysis_cell,
                node_weight,
                frontier,
                original_vars: full_stats.distinct_vars,
                original_size,
                reserved,
                invariant_vars: invariant.len(),
                plan_snapshot,
                reg_len_at_plan: self.reg.len(),
                selected: None,
                subs: FxHashMap::default(),
                warm: FxHashMap::default(),
            });
        }
        Ok(&self.frontier.as_ref().expect("just populated").frontier)
    }

    /// Plans a size/expressiveness staircase for a **forest** of
    /// abstraction trees by repeated coordinate descent
    /// ([`crate::multi::plan_forest_frontier`]) and caches it: afterwards
    /// any bound resolves through [`select_bound`](Self::select_bound)
    /// without re-planning. Descent is a heuristic, so the staircase is a
    /// frontier of *achieved* solutions rather than the exact Pareto
    /// curve a single tree gets.
    ///
    /// # Errors
    /// `Session` unless at least two trees are registered (single trees
    /// get the exact [`compress_frontier`](Self::compress_frontier)).
    pub fn compress_forest_frontier(&mut self) -> Result<&ForestFrontier> {
        if self.trees.len() < 2 {
            return Err(CoreError::Session(format!(
                "compress_forest_frontier requires a forest (>= 2 trees), got {}; \
                 use compress_frontier() for a single tree",
                self.trees.len()
            )));
        }
        if self.forest.is_none() {
            let set = Self::polys_of(&self.polys, &self.full_rat);
            let full_stats = ProvenanceStats::compute(set);
            let original_size = set.total_monomials() as u64;
            let trees: Vec<&AbstractionTree> = self.trees.iter().collect();
            let frontier = plan_forest_frontier(set, &trees, &mut self.reg, 32)?;
            let points = frontier.len();
            self.log(|| {
                format!(
                    "planned forest frontier: {points} points, sizes {}..={}",
                    frontier.min_size(),
                    frontier.points().last().map_or(0, |p| p.size)
                )
            });
            self.forest = Some(ForestFrontierState {
                frontier,
                original_vars: full_stats.distinct_vars,
                original_size,
                selected: None,
                warm: FxHashMap::default(),
            });
        }
        Ok(&self.forest.as_ref().expect("just populated").frontier)
    }

    /// Cheap session statistics for monitoring surfaces: never compiles
    /// an engine, never materializes polynomials (a re-hydrated session
    /// reports from its persisted plan without decompiling anything).
    pub fn info(&self) -> SessionInfo {
        let (frontier_points, original_size, original_vars, warm_engines) = match &self.frontier {
            Some(f) => (
                Some(f.frontier.len()),
                Some(f.original_size),
                Some(f.original_vars),
                f.warm.len(),
            ),
            None => match &self.forest {
                Some(f) => (
                    Some(f.frontier.len()),
                    Some(f.original_size),
                    Some(f.original_vars),
                    f.warm.len(),
                ),
                None => (
                    None,
                    self.polys.get().map(|p| p.total_monomials() as u64),
                    self.polys.get().map(|p| p.distinct_vars().len()),
                    0,
                ),
            },
        };
        SessionInfo {
            trees: self.trees.len(),
            bound: self.bound,
            frontier_points,
            original_size,
            original_vars,
            compressed_size: self.compressed.as_ref().map(|c| c.compressed_size as u64),
            compressed_vars: self.compressed.as_ref().map(|c| c.compressed_vars),
            warm_engines,
            hydrated: self.polys.get().is_none(),
            kernel: cobra_util::kernel::current().as_str(),
            dag: self.dag_mode,
            dag_slots: {
                let full = self.dag_full_rat.get().map(|e| e.program().num_slots());
                let comp = self
                    .compressed
                    .as_ref()
                    .and_then(|c| c.dag_engines.get())
                    .map(|e| e.compressed.program().num_slots());
                match (full, comp) {
                    (None, None) => None,
                    (a, b) => Some(a.unwrap_or(0) + b.unwrap_or(0)),
                }
            },
        }
    }

    /// The cached forest staircase, if
    /// [`compress_forest_frontier`](Self::compress_forest_frontier) has
    /// run.
    ///
    /// # Errors
    /// `Session` if the forest frontier has not been planned.
    pub fn forest_frontier(&self) -> Result<&ForestFrontier> {
        self.forest.as_ref().map(|f| &f.frontier).ok_or_else(|| {
            CoreError::Session("compress_forest_frontier must be called first".into())
        })
    }

    /// The cached Pareto frontier, if [`compress_frontier`](Self::compress_frontier)
    /// has run.
    ///
    /// # Errors
    /// `Session` if the frontier has not been planned.
    pub fn frontier(&self) -> Result<&CutFrontier> {
        self.frontier
            .as_ref()
            .map(|f| &f.frontier)
            .ok_or_else(|| CoreError::Session("compress_frontier must be called first".into()))
    }

    /// Folds every variable interned since the frontier was planned (or
    /// last synced) into the plan's reserved set and advances the
    /// generation stamp. The registry is append-only, so its length is a
    /// perfect generation stamp for "what appeared since".
    fn sync_reserved_vars(&mut self) {
        if let Some(state) = self.frontier.as_mut() {
            let len = self.reg.len();
            if len > state.reg_len_at_plan {
                state
                    .reserved
                    .extend((state.reg_len_at_plan..len).map(|i| Var(i as u32)));
                state.reg_len_at_plan = len;
            }
        }
    }

    /// Re-selects the session's compression for a new bound against the
    /// cached frontier: an `O(log frontier)` lookup, then — only if the
    /// selected point actually changed — an `O(leaves)` meta-variable
    /// assignment plus a stats-derived report. The compressed polynomials
    /// themselves ([`crate::apply::apply_cut_with_groups`]'s group-statistics
    /// construction, no re-scan of the full provenance) and the
    /// compressed engine are built lazily on first evaluation. The result
    /// is **identical** to `set_bound(bound)` +
    /// [`compress`](Self::compress) (report, cut and sweep results;
    /// property-pinned in `tests/planner.rs`), at a fraction of the cost
    /// (experiment E12 measures the gap at paper scale).
    ///
    /// Like every predicted size in the optimizer pipeline, the report's
    /// `compressed_size` comes from the additive group formula, which
    /// assumes merged coefficients never cancel to zero (always true for
    /// nonnegative provenance annotations; see [`crate::groups`]).
    ///
    /// # Errors
    /// `Session` if [`compress_frontier`](Self::compress_frontier) has
    /// not run; `InfeasibleBound` if even the coarsest frontier point
    /// exceeds `bound`.
    pub fn select_bound(&mut self, bound: u64) -> Result<CompressionReport> {
        if self.forest.is_some() {
            return self.select_bound_forest(bound);
        }
        // Variables interned through `registry_mut` since planning must be
        // treated as reserved, or a cut node sharing their name would alias
        // its meta-variable onto the caller's variable — and a sweep
        // binding that variable would silently perturb the compressed side
        // only.
        self.sync_reserved_vars();
        let state = self
            .frontier
            .as_ref()
            .ok_or_else(|| CoreError::Session("compress_frontier must be called first".into()))?;
        let Some(idx) = state.frontier.select_index(bound) else {
            return Err(CoreError::InfeasibleBound {
                min_achievable: state.frontier.min_size(),
            });
        };
        self.bound = Some(bound);
        if state.selected != Some(idx) || self.compressed.is_none() {
            let point = &state.frontier.points()[idx];
            let tree = &self.trees[0];
            // Disjoint field borrows: the frontier state is read-only here
            // while the registry takes the only mutable borrow.
            let (substitution, meta_vars) = match state.subs.get(&idx) {
                Some(pair) => pair.clone(),
                None => point.cut.substitution(tree, &mut self.reg, &state.reserved),
            };
            // The invariant (non-tree) variables survive every cut; a cut
            // node's meta-variable occurs iff some group touches it.
            let compressed_vars = state.invariant_vars
                + point
                    .cut
                    .nodes()
                    .iter()
                    .filter(|n| state.node_weight[n.index()] > 0)
                    .count();
            let cuts_display = vec![format!("{}: {}", tree.name(), point.cut.display(tree))];
            let lazy_cut = point.cut.clone();
            let (original_size, compressed_size) =
                (state.original_size as usize, point.size as usize);
            let prev_selected = state.selected;
            for line in &cuts_display {
                let line = line.clone();
                self.log(move || format!("selected cut — {line}"));
            }
            // Stash the outgoing selection's engines (cheap `Arc` clones)
            // so hopping back to its bound later skips recompilation.
            let stash = match (&self.compressed, prev_selected) {
                (Some(old), Some(old_idx)) if old_idx != idx => old.engines.get().map(|e| {
                    let warm = WarmEngines {
                        rat: e.compressed.clone(),
                        f64: old.comp_f64.get().cloned(),
                    };
                    (old_idx, warm)
                }),
                _ => None,
            };
            let full = self.full_rat.get().cloned();
            let next = Compressed {
                meta_vars,
                substitution,
                original_size,
                compressed_size,
                compressed_vars,
                cuts_display,
                lazy_cut: Some(lazy_cut),
                applied: OnceCell::new(),
                engines: OnceCell::new(),
                comp_f64: OnceCell::new(),
                err_shadow: OnceCell::new(),
                dag_engines: OnceCell::new(),
                dag_comp_f64: OnceCell::new(),
                dag_err_shadow: OnceCell::new(),
            };
            let fs = self.frontier.as_mut().expect("checked above");
            if let Some((old_idx, warm)) = stash {
                fs.warm.insert(old_idx, warm);
            }
            // Warm re-selection: pre-install the stashed engines so the
            // first evaluation after hopping back costs nothing.
            if let (Some(warm), Some(full)) = (fs.warm.get(&idx), full) {
                let _ = next
                    .engines
                    .set(CompiledComparison::from_engines(full, warm.rat.clone()));
                if let Some(f64_engine) = &warm.f64 {
                    let _ = next.comp_f64.set(f64_engine.clone());
                }
            }
            fs.selected = Some(idx);
            fs.subs
                .entry(idx)
                .or_insert_with(|| (next.substitution.clone(), next.meta_vars.clone()));
            // The substitution may have interned fresh meta-variable
            // names; advance the generation stamp past them so they are
            // never mistaken for user variables (name-addressing a
            // meta-variable via `registry_mut` must keep resolving to the
            // meta-variable itself).
            fs.reg_len_at_plan = self.reg.len();
            self.compressed = Some(next);
        }
        let state = self.frontier.as_ref().expect("checked above");
        let compressed = self.compressed.as_ref().expect("just selected");
        Ok(CompressionReport {
            bound,
            original_size: state.original_size,
            compressed_size: compressed.compressed_size as u64,
            original_vars: state.original_vars,
            compressed_vars: compressed.compressed_vars,
            cuts: compressed.cuts_display.clone(),
            speedup: None,
        })
    }

    /// Forest-staircase bound selection: resolves `bound` against the
    /// cached [`ForestFrontier`] and applies the selected per-tree cuts
    /// eagerly (forest applications have no lazy group recipe). Because
    /// that application is the expensive step, the outgoing selection —
    /// compressed polynomials, meta-variable identities and every compiled
    /// engine — is stashed in a per-point warm cache, so hopping back and
    /// forth along the staircase (the demo slider's access pattern)
    /// re-applies each cut at most once. Deltas clear the whole forest
    /// state, warm cache included, so no stale entry survives a mutation.
    fn select_bound_forest(&mut self, bound: u64) -> Result<CompressionReport> {
        let state = self
            .forest
            .as_ref()
            .expect("select_bound_forest is only called with forest state");
        let Some(idx) = state.frontier.select_index(bound) else {
            return Err(CoreError::InfeasibleBound {
                min_achievable: state.frontier.min_size(),
            });
        };
        self.bound = Some(bound);
        if state.selected != Some(idx) || self.compressed.is_none() {
            let cuts: Vec<Cut> = state.frontier.points()[idx].cuts.to_vec();
            let old_selected = state.selected;
            if let Some(old_idx) = old_selected {
                if old_idx != idx {
                    if let Some(old) = self.compressed.take() {
                        self.forest
                            .as_mut()
                            .expect("checked above")
                            .warm
                            .insert(old_idx, old);
                    }
                }
            }
            let warm = self.forest.as_mut().expect("checked above").warm.remove(&idx);
            if let Some(prev) = warm {
                self.log(move || format!("forest staircase warm hit — reinstalled point {idx}"));
                self.compressed = Some(prev);
            } else {
                let polys = Self::polys_of(&self.polys, &self.full_rat);
                let pairs: Vec<(&AbstractionTree, &Cut)> =
                    self.trees.iter().zip(cuts.iter()).collect();
                let applied = crate::apply::apply_cuts(polys, &pairs, &mut self.reg);
                let cuts_display: Vec<String> = self
                    .trees
                    .iter()
                    .zip(&cuts)
                    .map(|(t, c)| format!("{}: {}", t.name(), c.display(t)))
                    .collect();
                for line in &cuts_display {
                    let line = line.clone();
                    self.log(move || format!("selected forest cut — {line}"));
                }
                self.compressed = Some(Compressed::from_applied(applied, cuts_display));
            }
            self.forest.as_mut().expect("checked above").selected = Some(idx);
        }
        let state = self.forest.as_ref().expect("checked above");
        let compressed = self.compressed.as_ref().expect("just selected");
        Ok(CompressionReport {
            bound,
            original_size: state.original_size,
            compressed_size: compressed.compressed_size as u64,
            original_vars: state.original_vars,
            compressed_vars: compressed.compressed_vars,
            cuts: compressed.cuts_display.clone(),
            speedup: None,
        })
    }

    /// Applies a term-level delta to the session's polynomials **in
    /// place**, then patches — rather than rebuilds — every cache the
    /// delta touches, so a live session absorbs upstream provenance
    /// changes at `O(touched)` cost instead of a full
    /// regenerate → recompile → replan cycle:
    ///
    /// * the polynomial set is edited via [`PolySet::apply_delta`]
    ///   (atomic: an invalid delta leaves the session untouched);
    /// * the compiled full-side program is **spliced**: untouched CSR rows
    ///   are copied by range (coefficient-only deltas share every shape
    ///   array), and accumulated churn eventually triggers a compacting
    ///   recompile;
    /// * for planned frontiers, a structural delta re-analyzes only the
    ///   touched polynomials (groups never span polynomials) and replans
    ///   reusing the DP tables of every subtree whose weights did not
    ///   change; a coefficient-only delta keeps the analysis, frontier and
    ///   selection metadata entirely and drops just the compiled engines;
    /// * an active frontier selection is re-selected at its bound, a
    ///   one-shot [`compress`](Self::compress) state is re-derived, and a
    ///   forest staircase (descent-built over the whole set) is cleared
    ///   for replanning.
    ///
    /// Answers after a delta are **bit-identical** to a session rebuilt
    /// from scratch on the updated polynomials (pinned across kernels and
    /// thread counts in `tests/delta_diff.rs`).
    ///
    /// ```
    /// use cobra_core::{CobraSession, PolyDelta};
    /// use cobra_provenance::{Monomial, Valuation};
    /// use cobra_util::Rat;
    ///
    /// let mut session = CobraSession::from_text(
    ///     "P1 = 208.8*p1*m1 + 240*p1*m3 + 42*v*m1 + 24.2*v*m3",
    /// ).unwrap();
    /// session.add_tree_text("Plans(Standard(p1,p2), v)").unwrap();
    /// session.compress_frontier().unwrap();
    /// session.select_bound(2).unwrap();
    ///
    /// // a March price correction lands as a coefficient-only delta…
    /// let p1 = session.polynomials().index_of("P1").unwrap();
    /// let (p, m3) = {
    ///     let reg = session.registry_mut();
    ///     (reg.var("p1"), reg.var("m3"))
    /// };
    /// let march = Monomial::from_pairs([(p, 1), (m3, 1)]);
    /// let mut delta = PolyDelta::new();
    /// delta.set(p1, march.clone(), Rat::int(250));
    /// let report = session.apply_delta(&delta).unwrap();
    /// assert!(!report.is_structural());
    /// let all_ones = Valuation::with_default(Rat::ONE);
    /// assert_eq!(session.assign(&all_ones).unwrap().rows[0].full, Rat::int(525));
    ///
    /// // …while deleting the tuple entirely is structural: the session
    /// // re-analyzes, replans incrementally and re-selects its bound.
    /// let mut delta = PolyDelta::new();
    /// delta.remove(p1, march);
    /// assert!(session.apply_delta(&delta).unwrap().is_structural());
    /// assert_eq!(session.assign(&all_ones).unwrap().rows[0].full, Rat::int(275));
    /// ```
    ///
    /// # Errors
    /// `Delta` if the delta addresses a polynomial index outside the set
    /// (nothing is modified); `InfeasibleBound` if a structural delta
    /// grows the minimum achievable size past the currently selected
    /// bound (the polynomials and frontier are updated, the selection is
    /// cleared, and the session stays live — select a feasible bound).
    pub fn apply_delta(&mut self, delta: &PolyDelta<Rat>) -> Result<DeltaReport> {
        // Materialize first: re-hydrated sessions decompile their full
        // engine before it is patched out from under them.
        let _ = Self::polys_of(&self.polys, &self.full_rat);
        let report = self
            .polys
            .get_mut()
            .expect("just materialized")
            .apply_delta(delta)
            .map_err(|e| CoreError::Delta(e.to_string()))?;
        if report.is_noop() {
            return Ok(report);
        }
        self.log(|| {
            format!(
                "delta: {} terms touched ({} structural / {} coeff-only polys)",
                report.terms_touched,
                report.structural_polys.len(),
                report.coeff_polys.len()
            )
        });
        self.patch_full_engines(&report);
        if self.forest.is_some() {
            // Forest staircases are descent-built over the whole set;
            // there is no incremental recipe, so clear for replanning.
            self.forest = None;
            self.compressed = None;
            return Ok(report);
        }
        if self.frontier.is_some() {
            if report.is_structural() {
                let recompress = matches!(&self.compressed, Some(c) if c.lazy_cut.is_none());
                let reselect = matches!(&self.compressed, Some(c) if c.lazy_cut.is_some());
                self.compressed = None;
                self.refresh_frontier_after_structural_delta(&report)?;
                if recompress {
                    self.compress()?;
                } else if reselect {
                    let bound = self.bound.expect("a frontier selection records its bound");
                    self.select_bound(bound)?;
                }
            } else {
                // Coefficient-only: groups, weights, the frontier and the
                // selection metadata (cut, meta-variables, sizes) are all
                // untouched — only compiled / materialized caches are
                // stale.
                let state = self.frontier.as_mut().expect("checked above");
                state.warm.clear();
                match self.compressed.take() {
                    Some(c) if c.lazy_cut.is_some() => {
                        self.compressed = Some(Compressed {
                            meta_vars: c.meta_vars,
                            substitution: c.substitution,
                            original_size: c.original_size,
                            compressed_size: c.compressed_size,
                            compressed_vars: c.compressed_vars,
                            cuts_display: c.cuts_display,
                            lazy_cut: c.lazy_cut,
                            applied: OnceCell::new(),
                            engines: OnceCell::new(),
                            comp_f64: OnceCell::new(),
                            err_shadow: OnceCell::new(),
                            dag_engines: OnceCell::new(),
                            dag_comp_f64: OnceCell::new(),
                            dag_err_shadow: OnceCell::new(),
                        });
                    }
                    Some(_) => self.compress().map(|_| ())?,
                    None => {}
                }
            }
            return Ok(report);
        }
        if self.compressed.is_some() {
            // One-shot `compress()` state without a planned frontier:
            // re-derive it against the updated set (the full program above
            // was patched, not recompiled).
            self.compress()?;
        }
        Ok(report)
    }

    /// Patches the session-cached full-side engines after a delta:
    /// coefficient-only deltas overwrite coefficient ranges and share
    /// every shape array; structural deltas splice only the touched CSR
    /// rows. Accumulated churn past a quarter of the program triggers a
    /// compacting recompile, bounding local-table drift.
    fn patch_full_engines(&mut self, report: &DeltaReport) {
        self.delta_churn += report.terms_touched;
        if let Some(old) = self.full_rat.take() {
            let set = Self::polys_of(&self.polys, &self.full_rat);
            let threshold = (old.program().num_terms() / 4).max(64);
            let patched = if self.delta_churn >= threshold {
                self.delta_churn = 0;
                BatchEvaluator::compile(set)
            } else if report.is_structural() {
                BatchEvaluator::new(old.program().patched(set, &report.touched()))
            } else {
                BatchEvaluator::new(old.program().patched_coeffs(set, &report.touched()))
            };
            let _ = self.full_rat.set(patched);
        }
        // The f64 shadow re-derives lazily from the patched exact program,
        // and the DAG rewrites of the full side re-derive from that shadow's
        // exact source — both must drop with it.
        let _ = self.full_f64.take();
        let _ = self.dag_full_rat.take();
        let _ = self.dag_full_f64.take();
    }

    /// Refreshes a planned frontier after a structural delta: re-analyzes
    /// only the polynomials whose monomial set changed (groups never span
    /// polynomials), replans reusing every clean subtree's DP table, and
    /// recomputes the report statistics the way a fresh plan would. The
    /// current selection must already be cleared by the caller.
    fn refresh_frontier_after_structural_delta(&mut self, report: &DeltaReport) -> Result<()> {
        let set = Self::polys_of(&self.polys, &self.full_rat);
        let tree = &self.trees[0];
        let state = self
            .frontier
            .as_mut()
            .expect("structural refresh requires a planned frontier");
        let analysis = match state.analysis.get() {
            Some(prev) => prev.reanalyze_polys(set, tree, &report.structural_polys)?,
            // Re-hydrated cold state: nothing to patch, analyze afresh.
            None => GroupAnalysis::analyze(set, tree)?,
        };
        let ctx = match &state.plan_snapshot {
            Some(prev) => PlanContext::new_incremental(tree, &analysis, prev),
            None => PlanContext::new(tree, &analysis),
        };
        let frontier = ExactDp
            .plan_frontier(&ctx)
            .expect("the exact DP frontier always exists");
        let plan_snapshot = Some(ctx.snapshot());
        let mut invariant: FxHashSet<Var> = FxHashSet::default();
        for group in &analysis.groups {
            invariant.extend(group.context.vars());
        }
        let polys: Vec<_> = set.iter().map(|(_, p)| p).collect();
        for &(poly, term) in &analysis.base_terms {
            invariant.extend(polys[poly as usize].terms()[term as usize].0.vars());
        }
        state.node_weight = analysis.node_weight.clone();
        state.frontier = frontier;
        state.plan_snapshot = plan_snapshot;
        state.original_vars = ProvenanceStats::compute(set).distinct_vars;
        state.original_size = set.total_monomials() as u64;
        state.invariant_vars = invariant.len();
        let cell = OnceCell::new();
        let _ = cell.set(analysis);
        state.analysis = cell;
        // Deltas may introduce brand-new variables: everything the updated
        // set mentions is reserved, plus whatever the user interned since
        // the last generation stamp.
        state.reserved.extend(set.distinct_vars());
        let len = self.reg.len();
        if len > state.reg_len_at_plan {
            state
                .reserved
                .extend((state.reg_len_at_plan..len).map(|i| Var(i as u32)));
        }
        state.reg_len_at_plan = len;
        state.selected = None;
        // Frontier indices shifted: cached substitutions and warm engines
        // are keyed by index and compiled against the old set — drop both.
        state.subs.clear();
        state.warm.clear();
        Ok(())
    }

    fn compressed_state(&self) -> Result<&Compressed> {
        self.compressed
            .as_ref()
            .ok_or_else(|| CoreError::Session("compress must be called first".into()))
    }

    /// Forces every lazily compiled engine of the current selection —
    /// full and compressed, exact and `f64` — without evaluating
    /// anything, so a later request pays evaluation cost only.
    ///
    /// Engine compilation is otherwise deferred to the first evaluation,
    /// which makes the first request after `select_bound` pay the full
    /// compile latency. Long-lived services call this once at prepare
    /// time instead. A no-op for engines that already exist (including
    /// warm engines restored from a persisted artifact).
    pub fn warm_up(&self) -> Result<()> {
        let state = self.compressed_state()?;
        let _ = self.engines(state);
        let _ = self.f64_engines(state);
        Ok(())
    }

    /// Whether algebraic (DAG) compression is armed: when `true`, every
    /// evaluation surface — sweeps, folds, assignments, speedup
    /// measurements — runs the factored shared-subterm programs built by
    /// [`compile_dag`](Self::compile_dag) instead of the flat ones.
    pub fn dag_mode(&self) -> bool {
        self.dag_mode
    }

    /// Arms (or disarms) algebraic compression without requiring a
    /// selection: once armed, engines rewrite into DAG programs (under
    /// the current options) lazily as they are first built — the way a
    /// service prepares a session before any bound is chosen.
    /// [`compile_dag`](Self::compile_dag) additionally forces the
    /// rewrite of the current selection and reports its accounting.
    /// Disarming flips evaluation back to the (still cached) flat
    /// engines; nothing is rebuilt in either direction.
    pub fn set_dag_mode(&mut self, enable: bool) {
        self.dag_mode = enable;
    }

    /// Rewrites both compiled engines of the current selection — full and
    /// compressed — into shared-subterm DAG programs with the default
    /// [`AlgebraicDag`] optimizer, and arms them for every subsequent
    /// evaluation.
    ///
    /// Algebraic compression composes with — it does not replace —
    /// cut-based abstraction: [`compress`](Self::compress) (or
    /// [`select_bound`](Self::select_bound)) shrinks the *provenance*,
    /// `compile_dag` then shrinks the *arithmetic* needed to evaluate it,
    /// by factoring repeated power products, shared monomial pairs and
    /// common-variable groups into slot rows evaluated once per scenario.
    /// Exact results are bit-identical to the flat programs'; `f64`
    /// sweeps carry slot-aware rounding certificates.
    ///
    /// ```
    /// use cobra_core::CobraSession;
    ///
    /// let mut session = CobraSession::from_text(
    ///     "P1 = 208.8*p1*m1 + 240*p1*m3 + 42*v*m1 + 24.2*v*m3\n\
    ///      P2 = 208.8*p1*m1 + 42*v*m1 + 24.2*v*m3",
    /// )
    /// .unwrap();
    /// session.add_tree_text("Plans(Standard(p1, p2), v)").unwrap();
    /// session.set_bound(4);
    /// session.compress().unwrap();
    /// let report = session.compile_dag().unwrap();
    /// assert!(session.dag_mode());
    /// // Factoring never adds multiplies, and on shared-structure
    /// // workloads it removes many.
    /// assert!(report.op_ratio() >= 1.0);
    /// ```
    ///
    /// # Errors
    /// `Session` if no compression is selected yet (run
    /// [`compress`](Self::compress) or [`select_bound`](Self::select_bound)
    /// first).
    pub fn compile_dag(&mut self) -> Result<DagReport> {
        self.compile_dag_with(&AlgebraicDag)
    }

    /// [`compile_dag`](Self::compile_dag) with an explicit
    /// [`DagOptimizer`] choosing which rewrite passes run (e.g.
    /// [`ProductCse`](crate::planner::ProductCse) for the CSE-only
    /// baseline the experiments compare against).
    ///
    /// Re-arming with a different optimizer drops every previously built
    /// DAG engine and rebuilds under the new options; the flat engines
    /// are never touched, so the rewrite is always reversible.
    ///
    /// # Errors
    /// `Session` if no compression is selected yet.
    pub fn compile_dag_with(&mut self, optimizer: &dyn DagOptimizer) -> Result<DagReport> {
        self.compressed_state()?;
        // Re-arm: the options may differ from a previous call, so every
        // cached rewrite is stale.
        let _ = self.dag_full_rat.take();
        let _ = self.dag_full_f64.take();
        if let Some(c) = &mut self.compressed {
            c.dag_engines = OnceCell::new();
            c.dag_comp_f64 = OnceCell::new();
            c.dag_err_shadow = OnceCell::new();
        }
        self.dag_opts = optimizer.options();
        self.dag_mode = true;
        let state = self.compressed.as_ref().expect("checked above");
        let engines = self.engines(state);
        let report = DagReport {
            optimizer: optimizer.name(),
            full: Self::dag_stats(self.full_engine().program(), engines.full.program()),
            compressed: Self::dag_stats(
                self.flat_engines(state).compressed.program(),
                engines.compressed.program(),
            ),
        };
        let _ = self.f64_engines(state);
        self.log(move || {
            format!(
                "compiled DAG programs ({}): full {} → {} multiplies ({:.2}×), \
                 compressed {} → {} multiplies",
                report.optimizer,
                report.full.flat_multiply_ops,
                report.full.dag_multiply_ops,
                report.op_ratio(),
                report.compressed.flat_multiply_ops,
                report.compressed.dag_multiply_ops,
            )
        });
        Ok(report)
    }

    /// Rewrite accounting for one side: flat program vs its DAG rewrite.
    fn dag_stats(flat: &EvalProgram<Rat>, dag: &EvalProgram<Rat>) -> DagStats {
        DagStats {
            num_polys: flat.num_polys(),
            num_slots: dag.num_slots(),
            flat_terms: flat.num_terms(),
            dag_terms: dag.num_terms(),
            flat_multiply_ops: flat.multiply_ops(),
            dag_multiply_ops: dag.multiply_ops(),
        }
    }

    /// The compressed polynomials (materialized on first access for
    /// frontier selections).
    pub fn compressed_polynomials(&self) -> Result<&PolySet<Rat>> {
        Ok(&self.applied(self.compressed_state()?).compressed)
    }

    /// The applied abstraction (substitution + meta-variables), with the
    /// compressed polynomials materialized on first access.
    pub fn abstraction(&self) -> Result<&AppliedAbstraction<Rat>> {
        Ok(self.applied(self.compressed_state()?))
    }

    /// The meta-variable screen (paper Fig. 5): every meta-variable with
    /// its grouped originals and the average default.
    pub fn meta_summary(&self) -> Result<Vec<MetaSummaryRow>> {
        let state = self.compressed_state()?;
        let fallback = self
            .base_valuation
            .default_value()
            .copied()
            .unwrap_or(Rat::ONE);
        Ok(state
            .meta_vars
            .iter()
            .map(|meta: &MetaVar| {
                let leaves: Vec<(String, Rat)> = meta
                    .leaves
                    .iter()
                    .map(|&l| {
                        (
                            self.reg.name(l).to_owned(),
                            self.base_valuation.get(l).unwrap_or(fallback),
                        )
                    })
                    .collect();
                let sum: Rat = leaves.iter().map(|(_, v)| *v).sum();
                MetaSummaryRow {
                    name: meta.name.clone(),
                    default_value: sum / Rat::int(leaves.len() as i64),
                    leaves,
                }
            })
            .collect())
    }

    /// Evaluates a single **leaf-level** scenario on both the full and the
    /// compressed provenance (the scenario is projected onto the
    /// meta-variables by group averaging) and returns the side-by-side
    /// results. Accepts anything convertible to a one-scenario
    /// [`ScenarioSet`] — typically `&Valuation<Rat>`.
    ///
    /// # Errors
    /// `Session` if `compress` has not run or the set does not contain
    /// exactly one scenario (use [`sweep`](Self::sweep) for families).
    pub fn assign(&self, scenario: impl Into<ScenarioSet>) -> Result<ResultComparison> {
        // A one-scenario sweep: the single-assignment screen runs through
        // the same compiled engine as the batched explorer.
        let set = scenario.into();
        if set.len() != 1 {
            return Err(CoreError::Session(format!(
                "assign takes exactly one scenario, got {}; use sweep for families",
                set.len()
            )));
        }
        Ok(self.sweep(set)?.comparison(0))
    }

    /// Evaluates a whole family of **leaf-level** scenarios in one
    /// compiled pass over both the full and the compressed provenance (the
    /// interactive explorer's bulk what-if screen). Accepts anything
    /// convertible to a [`ScenarioSet`]: grids and perturbation families
    /// stream straight into the batch kernels without materializing
    /// per-scenario valuations, flat `&[Valuation]` slices keep working.
    /// Results are exact and ordered like the set's enumeration.
    ///
    /// This **materializes** the O(scenarios × polys) result matrix. For
    /// families too large to hold (10⁶–10⁷-scenario grids), aggregate
    /// through [`sweep_fold`](Self::sweep_fold) instead, or trade
    /// exactness for lane-kernel speed with [`sweep_f64`](Self::sweep_f64).
    pub fn sweep(&self, scenarios: impl Into<ScenarioSet>) -> Result<ScenarioSweep> {
        let state = self.compressed_state()?;
        let set = scenarios.into();
        catch_exact_overflow(|| {
            Ok(self
                .engines(state)
                .sweep(&state.meta_vars, &self.base_valuation, &set))
        })
    }

    /// Streams a scenario family through both compiled engines and folds
    /// each scenario's **exact** results into an accumulator, without
    /// ever materializing the result matrix: the aggregate hypothetical
    /// questions the paper motivates — worst-case abstraction error,
    /// argmax impact, outcome histograms — run over 10⁷-scenario grids in
    /// O(1) output memory ([`folds`](crate::folds) ships the common
    /// aggregates). `f` receives each scenario as a [`FoldItem`] in
    /// enumeration order; the rows it borrows are reused block buffers,
    /// so copy out whatever must outlive the call.
    ///
    /// Results are identical to [`sweep`](Self::sweep) — `sweep` *is*
    /// this fold with an appending accumulator.
    ///
    /// ```
    /// use cobra_core::{folds, CobraSession, ScenarioSet};
    /// use cobra_core::folds::MaxAbsError;
    /// use cobra_util::Rat;
    ///
    /// let mut session = CobraSession::from_text(
    ///     "P1 = 208.8*p1*m1 + 240*p1*m3 + 42*v*m1 + 24.2*v*m3",
    /// ).unwrap();
    /// session.add_tree_text("Plans(Standard(p1,p2), v)").unwrap();
    /// session.set_bound(2);
    /// session.compress().unwrap();
    /// let m3 = session.registry_mut().var("m3");
    /// let rat = |s: &str| Rat::parse(s).unwrap();
    /// let grid = ScenarioSet::grid()
    ///     .axis([m3], [rat("0.8"), rat("1"), rat("1.2")])
    ///     .build()
    ///     .unwrap();
    ///
    /// // Count the lossless scenarios with a plain closure fold…
    /// let exact_points = session
    ///     .sweep_fold(&grid, 0usize, |n, item| {
    ///         n + usize::from(item.full == item.compressed)
    ///     })
    ///     .unwrap();
    /// assert_eq!(exact_points, 3); // m3 is outside the tree: all exact
    ///
    /// // …or plug in a built-in aggregate via `folds::step`.
    /// let worst = session
    ///     .sweep_fold(&grid, MaxAbsError::new(), folds::step)
    ///     .unwrap();
    /// assert_eq!(worst.max_rel_error, 0.0);
    /// ```
    ///
    /// # Errors
    /// `Session` if `compress` has not run.
    pub fn sweep_fold<A>(
        &self,
        scenarios: impl Into<ScenarioSet>,
        init: A,
        f: impl FnMut(A, FoldItem<'_, Rat>) -> A,
    ) -> Result<A> {
        let state = self.compressed_state()?;
        let set = scenarios.into();
        catch_exact_overflow(move || {
            Ok(self
                .engines(state)
                .sweep_fold(&state.meta_vars, &self.base_valuation, &set, init, f))
        })
    }

    /// [`sweep_fold`](Self::sweep_fold) under a [`SweepBudget`]: the
    /// sweep polls the budget at block granularity, and an exhausted
    /// budget returns [`SweepOutcome::Partial`] whose fold is **exactly**
    /// the sequential fold over the scenario prefix completed — graceful
    /// degradation without approximation.
    ///
    /// ```
    /// use cobra_core::{CobraSession, ScenarioSet, SweepBudget};
    /// use cobra_util::Rat;
    ///
    /// let mut session = CobraSession::from_text(
    ///     "P1 = 208.8*p1*m1 + 240*p1*m3 + 42*v*m1 + 24.2*v*m3",
    /// ).unwrap();
    /// session.add_tree_text("Plans(Standard(p1,p2), v)").unwrap();
    /// session.set_bound(2);
    /// session.compress().unwrap();
    /// let m3 = session.registry_mut().var("m3");
    /// let grid = ScenarioSet::grid()
    ///     .axis([m3], (1..=100i64).map(Rat::int).collect::<Vec<_>>())
    ///     .build()
    ///     .unwrap();
    ///
    /// // Cap the sweep at 40 of the 100 scenarios…
    /// let budget = SweepBudget::unlimited().with_scenario_cap(40);
    /// let outcome = session
    ///     .sweep_fold_budgeted(&grid, budget, 0usize, |n, _| n + 1)
    ///     .unwrap();
    /// // …and get the exact fold over precisely that prefix.
    /// assert_eq!(outcome.scenarios_done(), Some(40));
    /// assert_eq!(*outcome.fold(), 40);
    /// // the session stays fully usable afterwards
    /// assert!(session.sweep_fold(&grid, 0usize, |n, _| n + 1).is_ok());
    /// ```
    ///
    /// # Errors
    /// `Session` if `compress` has not run; `InfeasibleBudget` for a
    /// scenario cap of zero over a non-empty set.
    pub fn sweep_fold_budgeted<A>(
        &self,
        scenarios: impl Into<ScenarioSet>,
        budget: SweepBudget,
        init: A,
        f: impl FnMut(A, FoldItem<'_, Rat>) -> A,
    ) -> Result<SweepOutcome<A>> {
        let state = self.compressed_state()?;
        let set = scenarios.into();
        catch_exact_overflow(move || {
            self.engines(state).sweep_fold_budgeted(
                &state.meta_vars,
                &self.base_valuation,
                &set,
                &budget,
                init,
                f,
            )
        })
    }

    /// [`sweep_fold`](Self::sweep_fold) **fanned across cores**: the
    /// scenario family is split into contiguous per-worker spans, each
    /// worker thread owns its own binder, batch buffers and a replica of
    /// `fold` ([`MergeFold::init`]), and the partial accumulators merge
    /// back in ascending span order ([`MergeFold::merge`]) — so the
    /// result is **bit-identical** to the sequential
    /// `sweep_fold(set, fold, folds::step)` at any thread count
    /// (`COBRA_THREADS`, or
    /// [`par::with_threads`] in tests).
    /// This lifts the fold path's single-thread bind bottleneck: binding
    /// dominated compressed-side sweeps, and it now scales with cores.
    ///
    /// Any [`MergeFold`] plugs in, including tuple compositions:
    ///
    /// ```
    /// use cobra_core::folds::{MaxAbsError, SweepFold, TopK};
    /// use cobra_core::{CobraSession, ScenarioSet};
    /// use cobra_util::Rat;
    ///
    /// let mut session = CobraSession::from_text(
    ///     "P1 = 208.8*p1*m1 + 240*p1*m3 + 42*v*m1 + 24.2*v*m3",
    /// ).unwrap();
    /// session.add_tree_text("Plans(Standard(p1,p2), v)").unwrap();
    /// session.set_bound(2);
    /// session.compress().unwrap();
    /// let m3 = session.registry_mut().var("m3");
    /// let p1 = session.registry_mut().var("p1");
    /// let rat = |s: &str| Rat::parse(s).unwrap();
    /// let grid = ScenarioSet::grid()
    ///     .axis([m3], [rat("0.8"), rat("1"), rat("1.2")])
    ///     .axis([p1], [rat("1"), rat("1.1")])
    ///     .build()
    ///     .unwrap();
    ///
    /// // worst-case error and top-2 revenue scenarios in one parallel pass
    /// let (worst, top) = session
    ///     .sweep_fold_par(&grid, (MaxAbsError::new(), TopK::new(0, 2)))
    ///     .unwrap();
    /// let top = top.finish();
    /// assert!(worst.max_rel_error > 0.0); // p1 moves alone in its group
    /// assert_eq!(top.len(), 2);
    /// // identical to the sequential fold engine, bit for bit
    /// let seq = session
    ///     .sweep_fold(&grid, MaxAbsError::new(), cobra_core::folds::step)
    ///     .unwrap();
    /// assert_eq!(worst.max_rel_error, seq.max_rel_error);
    /// assert_eq!(worst.argmax_rel, seq.argmax_rel);
    /// ```
    ///
    /// # Errors
    /// `Session` if `compress` has not run; `WorkerPanicked` if a worker
    /// thread panicked mid-sweep (faults are isolated at span boundaries:
    /// the panic is caught, sibling workers are cancelled, and the
    /// session remains fully usable).
    pub fn sweep_fold_par<F: MergeFold + Send + Sync>(
        &self,
        scenarios: impl Into<ScenarioSet>,
        fold: F,
    ) -> Result<F> {
        self.sweep_fold_par_budgeted(scenarios, SweepBudget::unlimited(), fold)
            .map(SweepOutcome::into_fold)
    }

    /// [`sweep_fold_par`](Self::sweep_fold_par) under a [`SweepBudget`]:
    /// every worker polls the budget between blocks, and an exhausted
    /// budget returns [`SweepOutcome::Partial`] whose fold is the
    /// in-order merge of completed span prefixes — **bit-identical** to a
    /// sequential fold over the same scenario prefix, at any thread
    /// count (property-pinned in `tests/robustness.rs`).
    ///
    /// # Errors
    /// `Session` if `compress` has not run; `InfeasibleBudget` for a
    /// zero scenario cap over a non-empty set; `WorkerPanicked` if a
    /// worker thread panicked (the session remains usable).
    pub fn sweep_fold_par_budgeted<F: MergeFold + Send + Sync>(
        &self,
        scenarios: impl Into<ScenarioSet>,
        budget: SweepBudget,
        fold: F,
    ) -> Result<SweepOutcome<F>> {
        let state = self.compressed_state()?;
        // Workers already catch their own panics at span boundaries; an
        // exact overflow surfaces as `WorkerPanicked` and is remapped to
        // the typed, recoverable error here.
        self.engines(state)
            .sweep_fold_par_budgeted(
                &state.meta_vars,
                &self.base_valuation,
                &scenarios.into(),
                &budget,
                fold,
            )
            .map_err(overflow_to_typed)
    }

    /// [`sweep_fold`](Self::sweep_fold) on the **approximate `f64` fast
    /// path**: scenarios bind as `f64` rows and every block runs through
    /// the lane-blocked SIMD kernel, making huge grids aggregate at the
    /// `f64` per-scenario cost instead of exact rational arithmetic — the
    /// E10 experiment measures 0.12 µs vs 8.2 µs per scenario (~67×) on
    /// the paper example at 10⁶ grid points.
    ///
    /// The trade-off is floating-point rounding: coefficients, bound
    /// rows and evaluation all round to nearest. The engine therefore
    /// re-evaluates up to 16 evenly spaced scenarios on the exact
    /// engines and returns the largest observed relative deviation as an
    /// [`F64Divergence`] next to the fold output — a measured spot check
    /// (not a proven worst-case bound) that surfaces catastrophic
    /// cancellation if a workload ever triggers it. Exactness-critical
    /// sweeps should use [`sweep_fold`](Self::sweep_fold).
    ///
    /// # Errors
    /// `Session` if `compress` has not run.
    pub fn sweep_fold_f64<A>(
        &self,
        scenarios: impl Into<ScenarioSet>,
        init: A,
        f: impl FnMut(A, FoldItem<'_, f64>) -> A,
    ) -> Result<(A, F64Divergence)> {
        let state = self.compressed_state()?;
        Ok(self.engines(state).sweep_fold_f64(
            self.f64_engines(state),
            &state.meta_vars,
            &self.base_valuation,
            &scenarios.into(),
            init,
            f,
        ))
    }

    /// [`sweep_fold_f64`](Self::sweep_fold_f64) under a [`SweepBudget`]:
    /// block-granular budget polls on the `f64` fast path, exact partial
    /// prefixes on exhaustion. The returned [`F64Divergence`] covers the
    /// probes inside the completed prefix, matching a sequential run over
    /// the same prefix.
    ///
    /// # Errors
    /// `Session` if `compress` has not run; `InfeasibleBudget` for a
    /// zero scenario cap over a non-empty set.
    pub fn sweep_fold_f64_budgeted<A>(
        &self,
        scenarios: impl Into<ScenarioSet>,
        budget: SweepBudget,
        init: A,
        f: impl FnMut(A, FoldItem<'_, f64>) -> A,
    ) -> Result<(SweepOutcome<A>, F64Divergence)> {
        let state = self.compressed_state()?;
        self.engines(state).sweep_fold_f64_budgeted(
            self.f64_engines(state),
            &state.meta_vars,
            &self.base_valuation,
            &scenarios.into(),
            &budget,
            init,
            f,
        )
    }

    /// [`sweep_fold_f64`](Self::sweep_fold_f64) with a **sound
    /// per-scenario error bound** instead of the sampled divergence
    /// probe: a Higham-style running-error accumulator folds a shadow
    /// bound alongside every evaluated value (the |coefficient| program
    /// evaluated at |row| times a per-polynomial γ factor), so the
    /// returned [`F64ErrorBound`] **dominates** the true rounding error
    /// of coefficient conversion plus kernel evaluation for *every*
    /// scenario — not just the 16 probed ones. Costs roughly one extra
    /// kernel pass per side.
    ///
    /// ```
    /// use cobra_core::{CobraSession, ScenarioSet, SweepBudget};
    /// use cobra_util::Rat;
    ///
    /// let mut session = CobraSession::from_text(
    ///     "P1 = 208.8*p1*m1 + 240*p1*m3 + 42*v*m1 + 24.2*v*m3",
    /// ).unwrap();
    /// session.add_tree_text("Plans(Standard(p1,p2), v)").unwrap();
    /// session.set_bound(2);
    /// session.compress().unwrap();
    /// let m3 = session.registry_mut().var("m3");
    /// let rat = |s: &str| Rat::parse(s).unwrap();
    /// let grid = ScenarioSet::grid()
    ///     .axis([m3], [rat("0.8"), rat("1"), rat("1.2")])
    ///     .build()
    ///     .unwrap();
    ///
    /// let (outcome, bound) = session
    ///     .sweep_fold_f64_bounded(&grid, SweepBudget::unlimited(), 0usize, |n, _| n + 1)
    ///     .unwrap();
    /// assert_eq!(outcome.into_fold(), 3);
    /// assert_eq!(bound.scenarios, 3);
    /// // the sound bound is tiny for well-conditioned inputs…
    /// assert!(bound.max_rel_bound < 1e-12);
    /// // …and dominates the measured divergence by construction.
    /// ```
    ///
    /// # Errors
    /// `Session` if `compress` has not run; `InfeasibleBudget` for a
    /// zero scenario cap over a non-empty set.
    pub fn sweep_fold_f64_bounded<A>(
        &self,
        scenarios: impl Into<ScenarioSet>,
        budget: SweepBudget,
        init: A,
        f: impl FnMut(A, FoldItem<'_, f64>) -> A,
    ) -> Result<(SweepOutcome<A>, F64ErrorBound)> {
        let state = self.compressed_state()?;
        self.engines(state).sweep_fold_f64_bounded(
            self.f64_engines(state),
            self.error_shadow(state),
            &state.meta_vars,
            &self.base_valuation,
            &scenarios.into(),
            &budget,
            init,
            f,
        )
    }

    /// [`sweep_fold_f64`](Self::sweep_fold_f64) **fanned across cores**:
    /// the parallel `f64` fast path — per-worker binders, lane-kernel
    /// scratch and fold replicas, merged in ascending span order, with
    /// the divergence probes distributed to the workers whose spans
    /// contain them. Fold output and [`F64Divergence`] are bit-identical
    /// to the sequential engine at any thread count; at 10⁷ scenarios
    /// this is the fastest aggregate surface in the crate.
    ///
    /// ```
    /// use cobra_core::folds::{self, Histogram, SweepFold};
    /// use cobra_core::{CobraSession, ScenarioSet};
    /// use cobra_util::Rat;
    ///
    /// let mut session = CobraSession::from_text(
    ///     "P1 = 208.8*p1*m1 + 240*p1*m3 + 42*v*m1 + 24.2*v*m3",
    /// ).unwrap();
    /// session.add_tree_text("Plans(Standard(p1,p2), v)").unwrap();
    /// session.set_bound(2);
    /// session.compress().unwrap();
    /// let m3 = session.registry_mut().var("m3");
    /// let rat = |s: &str| Rat::parse(s).unwrap();
    /// let grid = ScenarioSet::grid()
    ///     .axis([m3], [rat("0.8"), rat("0.9"), rat("1"), rat("1.1")])
    ///     .build()
    ///     .unwrap();
    ///
    /// let (hist, div) = session
    ///     .sweep_fold_f64_par(&grid, Histogram::new(0, 0.0, 2000.0, 8))
    ///     .unwrap();
    /// assert_eq!(hist.total(), grid.len() as u64);
    /// assert!(div.max_rel_divergence < 1e-12);
    /// // bit-identical to the sequential f64 fold engine
    /// let (seq, _) = session
    ///     .sweep_fold_f64(&grid, Histogram::new(0, 0.0, 2000.0, 8), folds::step)
    ///     .unwrap();
    /// assert_eq!(hist.counts, seq.counts);
    /// ```
    ///
    /// # Errors
    /// `Session` if `compress` has not run; `WorkerPanicked` if a worker
    /// thread panicked mid-sweep (faults are isolated at span boundaries
    /// and the session remains fully usable).
    pub fn sweep_fold_f64_par<F: MergeFold + Send + Sync>(
        &self,
        scenarios: impl Into<ScenarioSet>,
        fold: F,
    ) -> Result<(F, F64Divergence)> {
        let (outcome, divergence) =
            self.sweep_fold_f64_par_budgeted(scenarios, SweepBudget::unlimited(), fold)?;
        Ok((outcome.into_fold(), divergence))
    }

    /// [`sweep_fold_f64_par`](Self::sweep_fold_f64_par) under a
    /// [`SweepBudget`]: the fastest aggregate surface in the crate, now
    /// interruptible — workers poll the budget between lane-kernel
    /// blocks, and partial results are the exact in-order merge of the
    /// completed span prefixes, bit-identical to a sequential budgeted
    /// run over the same prefix.
    ///
    /// # Errors
    /// `Session` if `compress` has not run; `InfeasibleBudget` for a
    /// zero scenario cap over a non-empty set; `WorkerPanicked` if a
    /// worker thread panicked (the session remains usable).
    pub fn sweep_fold_f64_par_budgeted<F: MergeFold + Send + Sync>(
        &self,
        scenarios: impl Into<ScenarioSet>,
        budget: SweepBudget,
        fold: F,
    ) -> Result<(SweepOutcome<F>, F64Divergence)> {
        let state = self.compressed_state()?;
        self.engines(state).sweep_fold_f64_par_budgeted(
            self.f64_engines(state),
            &state.meta_vars,
            &self.base_valuation,
            &scenarios.into(),
            &budget,
            fold,
        )
    }

    /// [`sweep_fold_f64_bounded`](Self::sweep_fold_f64_bounded) **fanned
    /// across cores**: the parallel `f64` fast path with the sound
    /// Higham running-error bound folded per worker and merged in span
    /// order — the [`F64ErrorBound`] is bit-identical to the sequential
    /// bounded sweep at any thread count.
    ///
    /// # Errors
    /// `Session` if `compress` has not run; `InfeasibleBudget` for a
    /// zero scenario cap over a non-empty set; `WorkerPanicked` if a
    /// worker thread panicked (the session remains usable).
    pub fn sweep_fold_f64_bounded_par<F: MergeFold + Send + Sync>(
        &self,
        scenarios: impl Into<ScenarioSet>,
        budget: SweepBudget,
        fold: F,
    ) -> Result<(SweepOutcome<F>, F64ErrorBound)> {
        let state = self.compressed_state()?;
        self.engines(state).sweep_fold_f64_bounded_par(
            self.f64_engines(state),
            self.error_shadow(state),
            &state.meta_vars,
            &self.base_valuation,
            &scenarios.into(),
            &budget,
            fold,
        )
    }

    /// Evaluates a scenario family approximately (`f64` lane kernel on
    /// both sides) and materializes the result matrix — the interactive
    /// default for large grids where exact rationals are too slow but
    /// per-scenario results are still wanted. Built on
    /// [`sweep_fold_f64`](Self::sweep_fold_f64) with an appending fold;
    /// the returned [`F64ScenarioSweep`] carries the measured
    /// exact-vs-approximate [`F64Divergence`] of the run.
    ///
    /// ```
    /// use cobra_core::{CobraSession, ScenarioSet};
    /// use cobra_util::Rat;
    ///
    /// let mut session = CobraSession::from_text(
    ///     "P1 = 208.8*p1*m1 + 240*p1*m3 + 42*v*m1 + 24.2*v*m3",
    /// ).unwrap();
    /// session.add_tree_text("Plans(Standard(p1,p2), v)").unwrap();
    /// session.set_bound(2);
    /// session.compress().unwrap();
    /// let m3 = session.registry_mut().var("m3");
    /// let rat = |s: &str| Rat::parse(s).unwrap();
    /// let grid = ScenarioSet::grid()
    ///     .axis([m3], [rat("0.8"), rat("1"), rat("1.2")])
    ///     .build()
    ///     .unwrap();
    ///
    /// let exact = session.sweep(&grid).unwrap();
    /// let approx = session.sweep_f64(&grid).unwrap();
    /// assert_eq!(approx.len(), exact.len());
    /// // the f64 shadow tracks the exact path to rounding error
    /// for i in 0..exact.len() {
    ///     for (e, a) in exact.full_row(i).iter().zip(approx.full_row(i)) {
    ///         assert!((e.to_f64() - a).abs() <= 1e-9 * e.to_f64().abs());
    ///     }
    /// }
    /// assert!(approx.divergence().max_rel_divergence < 1e-12);
    /// ```
    ///
    /// # Errors
    /// `Session` if `compress` has not run.
    pub fn sweep_f64(&self, scenarios: impl Into<ScenarioSet>) -> Result<F64ScenarioSweep> {
        let state = self.compressed_state()?;
        let set = scenarios.into();
        let n = set.len();
        let np = self.engines(state).full.program().num_polys();
        let init = (Vec::with_capacity(n * np), Vec::with_capacity(n * np));
        let ((full, compressed), divergence) =
            self.sweep_fold_f64(set, init, |(mut f, mut c), item| {
                f.extend_from_slice(item.full);
                c.extend_from_slice(item.compressed);
                (f, c)
            })?;
        Ok(F64ScenarioSweep {
            labels: self.engines(state).full.program().labels().to_vec(),
            num_scenarios: n,
            full,
            compressed,
            divergence,
        })
    }

    /// The full-provenance results under the session's base valuation
    /// (one `f64` per result tuple, label order) — the reference row
    /// impact folds compare against
    /// ([`folds::ArgmaxImpact::against`](crate::folds::ArgmaxImpact::against)).
    ///
    /// # Errors
    /// `Session` if `compress` has not run.
    pub fn baseline_results(&self) -> Result<Vec<f64>> {
        let state = self.compressed_state()?;
        let prog = self.engines(state).full.program();
        let row = prog
            .bind(&self.base_valuation)
            .expect("base valuation must be total");
        Ok(prog.eval_scenario(&row).iter().map(|r| r.to_f64()).collect())
    }

    /// Evaluates a single **meta-level** assignment directly (the user
    /// typed values into the Fig. 5 screen). The full provenance is
    /// evaluated under the expansion of the meta values to their leaves,
    /// so the comparison isolates compression loss (zero here by
    /// construction). Scenario-set levels resolve against the default
    /// meta-valuation (group averages over the base).
    ///
    /// # Errors
    /// `Session` if `compress` has not run or the set does not contain
    /// exactly one scenario.
    pub fn assign_meta(&self, meta_scenario: impl Into<ScenarioSet>) -> Result<ResultComparison> {
        let state = self.compressed_state()?;
        let set = meta_scenario.into();
        if set.len() != 1 {
            return Err(CoreError::Session(format!(
                "assign_meta takes exactly one scenario, got {}",
                set.len()
            )));
        }
        catch_exact_overflow(|| {
            let defaults =
                assign::default_meta_valuation(&state.meta_vars, &self.base_valuation);
            let meta_base = self.base_valuation.overridden_by(&defaults);
            let meta_val = meta_base.overridden_by(&set.scenario_valuation(0, &meta_base));
            let leaf_val = self
                .base_valuation
                .overridden_by(&assign::expand_to_leaves(&state.meta_vars, &meta_val));
            let engines = self.engines(state);
            let full_row = engines
                .full
                .program()
                .bind(&leaf_val)
                .expect("leaf valuation must be total");
            let meta_row = engines
                .compressed
                .program()
                .bind(&meta_val)
                .expect("meta valuation must be total");
            let full = engines.full.program().eval_scenario(&full_row);
            let compressed = engines.compressed.program().eval_scenario(&meta_row);
            Ok(crate::scenario::compare_rows(
                engines.full.program().labels(),
                full,
                compressed,
            ))
        })
    }

    /// Measures the assignment speedup (paper §4) on the `f64` fast path —
    /// a one-scenario batch through the compiled engines.
    pub fn measure_speedup(
        &self,
        scenario: &Valuation<Rat>,
        warmup: usize,
        runs: usize,
    ) -> Result<SpeedupMeasurement> {
        self.measure_batch_speedup(scenario, warmup, runs)
    }

    /// Measures the assignment speedup over a whole scenario family: both
    /// sides are evaluated by the same compiled batch engine, so the
    /// full-vs-compressed comparison isolates provenance size (the paper's
    /// variable) from evaluation machinery. Accepts anything convertible
    /// to a [`ScenarioSet`]; rows are bound once up front (timing covers
    /// evaluation only).
    pub fn measure_batch_speedup(
        &self,
        scenarios: impl Into<ScenarioSet>,
        warmup: usize,
        runs: usize,
    ) -> Result<SpeedupMeasurement> {
        let state = self.compressed_state()?;
        let (full_f64, compressed_f64) = self.f64_engines(state);
        let set = scenarios.into();
        // Exact projection, f64 rows: the shadow programs share the exact
        // programs' variable numbering.
        let (full_rows, comp_rows) = self.engines(state).bind_rows(
            &state.meta_vars,
            &self.base_valuation,
            &set,
            |r| r.to_f64(),
        );
        Ok(measure_sweep_speedup(
            full_f64,
            compressed_f64,
            &full_rows,
            &comp_rows,
            warmup,
            runs,
        ))
    }

    /// A full report, optionally including a speedup measurement.
    pub fn report(&self, speedup: Option<SpeedupMeasurement>) -> Result<CompressionReport> {
        let state = self.compressed_state()?;
        Ok(CompressionReport {
            bound: self.bound.unwrap_or(0),
            original_size: state.original_size as u64,
            compressed_size: state.compressed_size as u64,
            original_vars: self.polynomials().distinct_vars().len(),
            compressed_vars: state.compressed_vars,
            cuts: state.cuts_display.clone(),
            speedup,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    const PAPER_POLYS: &str = "\
P1 = 208.8*p1*m1 + 240*p1*m3 + 127.4*f1*m1 + 114.45*f1*m3 \
   + 75.9*y1*m1 + 72.5*y1*m3 + 42*v*m1 + 24.2*v*m3
P2 = 77.9*b1*m1 + 80.5*b1*m3 + 52.2*e*m1 + 56.5*e*m3 + 69.7*b2*m1 + 100.65*b2*m3";

    const FIG2_TREE: &str =
        "Plans(Standard(p1,p2), Special(Y(y1,y2,y3), F(f1,f2), v), Business(SB(b1,b2), e))";

    fn rat(s: &str) -> Rat {
        Rat::parse(s).unwrap()
    }

    fn session_with_bound(bound: u64) -> CobraSession {
        let mut s = CobraSession::from_text(PAPER_POLYS).unwrap();
        s.add_tree_text(FIG2_TREE).unwrap();
        s.set_bound(bound);
        s
    }

    #[test]
    fn pipeline_end_to_end() {
        let mut s = session_with_bound(6);
        s.enable_trace();
        let report = s.compress().unwrap();
        assert_eq!(report.original_size, 14);
        assert_eq!(report.compressed_size, 6);
        assert!(report.cuts[0].contains("Business"));
        assert!(!s.trace().is_empty());
        // meta screen: 4 rows ({p1, p2, Special, Business} — the optimal
        // size-6 cut), Business groups b1,b2,e with default 1
        let metas = s.meta_summary().unwrap();
        assert_eq!(metas.len(), 4);
        let business = metas.iter().find(|m| m.name == "Business").unwrap();
        assert_eq!(business.leaves.len(), 3);
        assert_eq!(business.default_value, Rat::ONE);
    }

    #[test]
    fn missing_inputs_are_session_errors() {
        let mut s = CobraSession::from_text(PAPER_POLYS).unwrap();
        assert!(matches!(s.compress(), Err(CoreError::Session(_))));
        s.set_bound(6);
        assert!(matches!(s.compress(), Err(CoreError::Session(_))));
        assert!(matches!(s.meta_summary(), Err(CoreError::Session(_))));
    }

    #[test]
    fn assign_reports_march_discount() {
        // the paper's first hypothetical: price of all plans −20% in March
        let mut s = session_with_bound(6);
        s.compress().unwrap();
        let m3 = s.registry_mut().var("m3");
        let scenario = Valuation::with_default(Rat::ONE).bind(m3, rat("0.8"));
        let cmp = s.assign(&scenario).unwrap();
        // month variables are outside the tree → compression is lossless
        assert!(cmp.is_exact());
        // P1 = m1-part + 0.8 × m3-part = 454.1 + 0.8·451.15
        assert_eq!(cmp.rows[0].full, rat("454.1") + rat("0.8") * rat("451.15"));
    }

    #[test]
    fn assign_meta_is_always_internally_consistent() {
        let mut s = session_with_bound(6);
        s.compress().unwrap();
        let business = s.registry_mut().var("Business");
        let scenario = Valuation::new().bind(business, rat("1.1"));
        let cmp = s.assign_meta(&scenario).unwrap();
        // meta-level assignment has no projection loss by construction
        assert!(cmp.is_exact());
        assert_eq!(
            cmp.rows[1].full,
            (rat("77.9") + rat("52.2") + rat("69.7")) * rat("1.1")
                + (rat("80.5") + rat("56.5") + rat("100.65")) * rat("1.1")
        );
    }

    #[test]
    fn speedup_measurement_runs() {
        let mut s = session_with_bound(4);
        s.compress().unwrap();
        let m = s
            .measure_speedup(&Valuation::with_default(Rat::ONE), 1, 3)
            .unwrap();
        assert_eq!(m.full_size, 14);
        assert_eq!(m.compressed_size, 4);
    }

    #[test]
    fn sweep_batches_many_scenarios_exactly() {
        let mut s = session_with_bound(6);
        s.compress().unwrap();
        let m3 = s.registry_mut().var("m3");
        let b1 = s.registry_mut().var("b1");
        let scenarios: Vec<Valuation<Rat>> = (0..20)
            .map(|i: i128| {
                Valuation::with_default(Rat::ONE)
                    .bind(m3, Rat::ONE - Rat::new(i, 100))
                    .bind(b1, Rat::ONE + Rat::new(i, 50))
            })
            .collect();
        let sweep = s.sweep(&scenarios).unwrap();
        assert_eq!(sweep.len(), 20);
        // every batched row equals the single-assignment path
        for (scenario, cmp) in scenarios.iter().zip(sweep.comparisons()) {
            let single = s.assign(scenario).unwrap();
            assert_eq!(single.rows, cmp.rows);
        }
        // scenario 0 leaves b1 at 1 → aligned, exact; later ones perturb
        // b1 alone inside the Business group → lossy
        assert!(sweep.comparison(0).is_exact());
        assert!(!sweep.comparison(10).is_exact());
    }

    #[test]
    fn grid_sweep_through_session_matches_assign() {
        let mut s = session_with_bound(6);
        s.compress().unwrap();
        let m3 = s.registry_mut().var("m3");
        let b1 = s.registry_mut().var("b1");
        let grid = ScenarioSet::grid()
            .axis([m3], (0..5).map(|i| Rat::ONE - Rat::new(i, 20)).collect::<Vec<_>>())
            .axis([b1], [rat("1"), rat("1.1")])
            .build()
            .unwrap();
        let sweep = s.sweep(&grid).unwrap();
        assert_eq!(sweep.len(), 10);
        for i in 0..grid.len() {
            let materialized = grid.scenario_valuation(i, s.base_valuation());
            let single = s.assign(&materialized).unwrap();
            assert_eq!(single.rows, sweep.comparison(i).rows, "scenario {i}");
        }
        // grids feed the timing path too
        let m = s.measure_batch_speedup(&grid, 0, 1).unwrap();
        assert_eq!(m.full_size, 14);
    }

    #[test]
    fn sweep_fold_aggregates_without_materializing() {
        let mut s = session_with_bound(6);
        s.compress().unwrap();
        let m3 = s.registry_mut().var("m3");
        let b1 = s.registry_mut().var("b1");
        let grid = ScenarioSet::grid()
            .axis([m3], (0..5).map(|i| Rat::ONE - Rat::new(i, 20)).collect::<Vec<_>>())
            .axis([b1], [rat("1"), rat("1.1")])
            .build()
            .unwrap();
        let sweep = s.sweep(&grid).unwrap();
        // a max-rel-error fold over the stream equals the matrix statistic
        let max_rel = s
            .sweep_fold(&grid, 0.0f64, |acc: f64, item| {
                item.full
                    .iter()
                    .zip(item.compressed)
                    .map(|(f, c)| {
                        if f.is_zero() {
                            0.0
                        } else {
                            ((*f - *c).abs() / f.abs()).to_f64()
                        }
                    })
                    .fold(acc, f64::max)
            })
            .unwrap();
        assert_eq!(max_rel, sweep.max_rel_error());
        // built-in folds plug in through folds::step (MaxAbsError
        // aggregates in f64, so it matches the exact statistic to rounding)
        let worst = s
            .sweep_fold(&grid, crate::folds::MaxAbsError::new(), crate::folds::step)
            .unwrap();
        assert!((worst.max_rel_error - sweep.max_rel_error()).abs() < 1e-12);
        assert_eq!(worst.argmax_rel, Some(9));
        let impacts = s
            .sweep_fold(
                &grid,
                crate::folds::ArgmaxImpact::against(s.baseline_results().unwrap()),
                crate::folds::step,
            )
            .unwrap()
            .best();
        // the largest move is the deepest discount with b1 still at 1
        // (scenario 8): bumping b1 offsets part of the March discount
        assert_eq!(impacts.map(|(i, _)| i), Some(8));
    }

    #[test]
    fn sweep_f64_matches_exact_sweep_to_rounding() {
        let mut s = session_with_bound(6);
        s.compress().unwrap();
        let m3 = s.registry_mut().var("m3");
        let b1 = s.registry_mut().var("b1");
        let grid = ScenarioSet::grid()
            .axis([m3], (0..5).map(|i| Rat::ONE - Rat::new(i, 20)).collect::<Vec<_>>())
            .axis([b1], [rat("1"), rat("1.1")])
            .build()
            .unwrap();
        let exact = s.sweep(&grid).unwrap();
        let approx = s.sweep_f64(&grid).unwrap();
        assert_eq!(approx.len(), exact.len());
        assert_eq!(approx.num_polys(), exact.num_polys());
        assert_eq!(approx.labels(), exact.labels());
        for i in 0..exact.len() {
            for (e, a) in exact.full_row(i).iter().zip(approx.full_row(i)) {
                assert!((e.to_f64() - a).abs() <= 1e-9 * e.to_f64().abs().max(1.0));
            }
            for (e, a) in exact.compressed_row(i).iter().zip(approx.compressed_row(i)) {
                assert!((e.to_f64() - a).abs() <= 1e-9 * e.to_f64().abs().max(1.0));
            }
        }
        let div = approx.divergence();
        assert!(div.probed > 0);
        assert!(div.max_rel_divergence < 1e-12, "divergence {div:?}");
        // the lossy grid points show the same error signature in f64
        assert!((approx.max_rel_error() - exact.max_rel_error()).abs() < 1e-9);
        // streaming f64 fold agrees with the materialized f64 sweep
        let (count, div2) = s
            .sweep_fold_f64(&grid, 0usize, |n, item| {
                assert_eq!(item.full, approx.full_row(item.scenario));
                n + 1
            })
            .unwrap();
        assert_eq!(count, grid.len());
        assert_eq!(div2.probed, div.probed);
    }

    #[test]
    fn baseline_results_evaluate_the_base_valuation() {
        let mut s = session_with_bound(6);
        s.compress().unwrap();
        let base = s.baseline_results().unwrap();
        // all-ones base: P1 = 454.1 + 451.15, P2 = 199.8 + 237.65
        assert_eq!(base.len(), 2);
        assert!((base[0] - 905.25).abs() < 1e-9);
        assert!((base[1] - 437.45).abs() < 1e-9);
    }

    #[test]
    fn fold_surfaces_require_compression() {
        let s = CobraSession::from_text(PAPER_POLYS).unwrap();
        let scenario = Valuation::with_default(Rat::ONE);
        assert!(matches!(
            s.sweep_fold(&scenario, (), |(), _| ()),
            Err(CoreError::Session(_))
        ));
        assert!(matches!(
            s.sweep_fold_f64(&scenario, (), |(), _| ()),
            Err(CoreError::Session(_))
        ));
        assert!(matches!(s.sweep_f64(&scenario), Err(CoreError::Session(_))));
        assert!(matches!(s.baseline_results(), Err(CoreError::Session(_))));
    }

    #[test]
    fn assign_rejects_multi_scenario_sets() {
        let mut s = session_with_bound(6);
        s.compress().unwrap();
        let scenarios =
            [Valuation::with_default(Rat::ONE), Valuation::with_default(Rat::ONE)];
        assert!(matches!(s.assign(&scenarios[..]), Err(CoreError::Session(_))));
        assert!(matches!(
            s.assign_meta(&scenarios[..]),
            Err(CoreError::Session(_))
        ));
    }

    #[test]
    fn recompression_reuses_the_full_side_program() {
        let mut s = session_with_bound(6);
        s.compress().unwrap();
        let first = s.abstraction().unwrap().compressed.clone();
        s.baseline_results().unwrap(); // force the lazy engine build
        let full_before: *const _ =
            s.engines(s.compressed.as_ref().unwrap()).full.program();
        s.set_bound(4);
        s.compress().unwrap();
        // engines are lazy now: nothing is compiled until evaluation…
        assert!(s.compressed.as_ref().unwrap().engines.get().is_none());
        s.baseline_results().unwrap();
        let full_after: *const _ =
            s.engines(s.compressed.as_ref().unwrap()).full.program();
        // …and the full side is the same Arc'd program, not a recompilation
        assert_eq!(full_before, full_after);
        assert_ne!(first.total_monomials(), s.abstraction().unwrap().compressed.total_monomials());
    }

    #[test]
    fn batch_speedup_measurement_runs() {
        let mut s = session_with_bound(4);
        s.compress().unwrap();
        let scenarios: Vec<Valuation<Rat>> =
            (0..8).map(|_| Valuation::with_default(Rat::ONE)).collect();
        let m = s.measure_batch_speedup(&scenarios, 1, 3).unwrap();
        assert_eq!(m.full_size, 14);
        assert_eq!(m.compressed_size, 4);
        assert!(m.full_time > Duration::ZERO);
    }

    #[test]
    fn frontier_selection_matches_fresh_compress() {
        let mut s = CobraSession::from_text(PAPER_POLYS).unwrap();
        s.add_tree_text(FIG2_TREE).unwrap();
        let frontier = s.compress_frontier().unwrap();
        assert_eq!(frontier.points().first().unwrap().size, 4);
        assert_eq!(frontier.points().last().unwrap().size, 14);
        for bound in 4..=14u64 {
            let selected = s.select_bound(bound).unwrap();
            let mut fresh = session_with_bound(bound);
            let compressed = fresh.compress().unwrap();
            assert_eq!(selected.bound, compressed.bound, "bound {bound}");
            assert_eq!(selected.original_size, compressed.original_size);
            assert_eq!(selected.compressed_size, compressed.compressed_size);
            assert_eq!(selected.original_vars, compressed.original_vars);
            assert_eq!(selected.compressed_vars, compressed.compressed_vars);
            assert_eq!(selected.cuts, compressed.cuts, "bound {bound}");
        }
    }

    #[test]
    fn select_bound_reuses_state_for_the_same_point() {
        let mut s = CobraSession::from_text(PAPER_POLYS).unwrap();
        s.add_tree_text(FIG2_TREE).unwrap();
        s.compress_frontier().unwrap();
        s.select_bound(6).unwrap();
        s.baseline_results().unwrap(); // force engine build
        let engines_before: *const _ = s.engines(s.compressed.as_ref().unwrap());
        // bound 7 selects the same frontier point (sizes 6 and 8 bracket it)
        let report = s.select_bound(7).unwrap();
        assert_eq!(report.bound, 7);
        assert_eq!(report.compressed_size, 6);
        let engines_after: *const _ = s.engines(s.compressed.as_ref().unwrap());
        assert_eq!(engines_before, engines_after, "same point ⇒ no rebuild");
        // a genuinely different point rebuilds
        s.select_bound(14).unwrap();
        assert!(s.compressed.as_ref().unwrap().engines.get().is_none());
    }

    #[test]
    fn frontier_errors_are_session_errors() {
        let mut s = CobraSession::from_text(PAPER_POLYS).unwrap();
        // no tree yet
        assert!(matches!(s.compress_frontier(), Err(CoreError::Session(_))));
        assert!(matches!(s.frontier(), Err(CoreError::Session(_))));
        assert!(matches!(s.select_bound(6), Err(CoreError::Session(_))));
        s.add_tree_text(FIG2_TREE).unwrap();
        s.add_tree_text("Months(m1,m3)").unwrap();
        // forests are not frontier-plannable
        assert!(matches!(s.compress_frontier(), Err(CoreError::Session(_))));
        // single tree: infeasible bounds report the frontier minimum
        let mut s = CobraSession::from_text(PAPER_POLYS).unwrap();
        s.add_tree_text(FIG2_TREE).unwrap();
        s.compress_frontier().unwrap();
        assert!(matches!(
            s.select_bound(3),
            Err(CoreError::InfeasibleBound { min_achievable: 4 })
        ));
    }

    #[test]
    fn selected_session_sweeps_and_assigns() {
        let mut s = CobraSession::from_text(PAPER_POLYS).unwrap();
        s.add_tree_text(FIG2_TREE).unwrap();
        s.compress_frontier().unwrap();
        s.select_bound(6).unwrap();
        let m3 = s.registry_mut().var("m3");
        let scenario = Valuation::with_default(Rat::ONE).bind(m3, rat("0.8"));
        let cmp = s.assign(&scenario).unwrap();
        assert!(cmp.is_exact());
        assert_eq!(cmp.rows[0].full, rat("454.1") + rat("0.8") * rat("451.15"));
        // re-selection under a different bound changes the outcome
        s.select_bound(4).unwrap();
        assert_eq!(s.meta_summary().unwrap().len(), 1); // {Plans}
    }

    #[test]
    fn multi_tree_session() {
        let mut s = CobraSession::from_text(PAPER_POLYS).unwrap();
        s.add_tree_text(FIG2_TREE).unwrap();
        s.add_tree_text("Months(m1,m3)").unwrap();
        s.set_bound(2);
        let report = s.compress().unwrap();
        assert_eq!(report.compressed_size, 2);
        assert_eq!(report.cuts.len(), 2);
    }

    #[test]
    fn forest_frontier_selection_matches_one_shot_compress() {
        let mut s = CobraSession::from_text(PAPER_POLYS).unwrap();
        s.add_tree_text(FIG2_TREE).unwrap();
        // needs a forest
        assert!(matches!(
            s.compress_forest_frontier(),
            Err(CoreError::Session(_))
        ));
        s.add_tree_text("Months(m1,m3)").unwrap();
        let sizes: Vec<u64> = s
            .compress_forest_frontier()
            .unwrap()
            .points()
            .iter()
            .map(|p| p.size)
            .collect();
        assert!(!sizes.is_empty());
        let min_size = s.forest_frontier().unwrap().min_size();
        assert!(matches!(
            s.select_bound(min_size - 1),
            Err(CoreError::InfeasibleBound { min_achievable }) if min_achievable == min_size
        ));
        for &bound in &sizes {
            let selected = s.select_bound(bound).unwrap();
            // the one-shot path must agree with the staircase selection
            let mut one_shot = CobraSession::from_text(PAPER_POLYS).unwrap();
            one_shot.add_tree_text(FIG2_TREE).unwrap();
            one_shot.add_tree_text("Months(m1,m3)").unwrap();
            one_shot.set_bound(bound);
            let compressed = one_shot.compress().unwrap();
            assert_eq!(selected.compressed_size, compressed.compressed_size);
            assert_eq!(selected.compressed_vars, compressed.compressed_vars);
            assert_eq!(selected.cuts.len(), 2);
        }
        // re-selecting the current point is a no-op
        let last = *sizes.last().unwrap();
        s.select_bound(last).unwrap();
        let before = s.compressed.as_ref().unwrap() as *const Compressed;
        s.select_bound(last).unwrap();
        assert!(std::ptr::eq(
            before,
            s.compressed.as_ref().unwrap() as *const Compressed
        ));
        // selected sessions sweep and assign like any other
        let m3 = s.registry_mut().var("m3");
        let scenario = Valuation::with_default(Rat::ONE).bind(m3, rat("0.8"));
        assert!(s.assign(&scenario).unwrap().is_exact());
    }

    #[test]
    fn warm_reselection_is_bit_identical_and_skips_recompilation() {
        let mut s = session_with_bound(14);
        s.compress_frontier().unwrap();
        let m3 = s.registry_mut().var("m3");
        let scenario = Valuation::with_default(Rat::ONE).bind(m3, rat("0.8"));

        s.select_bound(6).unwrap();
        let first = s.assign(&scenario).unwrap();
        // hop away (engines get built there too), then hop back
        s.select_bound(4).unwrap();
        let _ = s.assign(&scenario).unwrap();
        s.select_bound(6).unwrap();
        // warm re-selection pre-installed the stashed engines
        assert!(s.compressed.as_ref().unwrap().engines.get().is_some());
        let again = s.assign(&scenario).unwrap();
        assert_eq!(first.rows[0].full, again.rows[0].full);
        assert_eq!(first.rows[0].compressed, again.rows[0].compressed);
    }

    #[test]
    fn recompression_after_bound_change() {
        let mut s = session_with_bound(14);
        let r1 = s.compress().unwrap();
        assert_eq!(r1.compressed_size, 14); // leaf cut, no loss
        s.set_bound(4);
        let r2 = s.compress().unwrap();
        assert_eq!(r2.compressed_size, 4);
    }

    use cobra_provenance::Monomial;

    fn planned_paper_session() -> CobraSession {
        let mut s = CobraSession::from_text(PAPER_POLYS).unwrap();
        s.add_tree_text(FIG2_TREE).unwrap();
        s.compress_frontier().unwrap();
        s
    }

    /// Rebuilds a session from scratch over `s`'s *current* polynomials —
    /// the reference every delta-patched session must match bit for bit.
    fn fresh_rebuild(s: &CobraSession, bound: u64) -> CobraSession {
        let mut fresh = CobraSession::new(s.registry().clone(), s.polynomials().clone());
        fresh.add_tree_text(FIG2_TREE).unwrap();
        fresh.compress_frontier().unwrap();
        fresh.select_bound(bound).unwrap();
        fresh
    }

    #[test]
    fn user_vars_interned_after_planning_never_alias_meta_vars() {
        // Regression: a variable interned through `registry_mut` *after*
        // planning, sharing a cut node's name, used to become that node's
        // meta-variable — so sweeping over the user's variable silently
        // perturbed the compressed side only and returned wrong rows.
        let mut s = planned_paper_session();
        let user_var = s.registry_mut().var("Business");
        s.select_bound(6).unwrap();
        let metas: Vec<Var> = s
            .compressed
            .as_ref()
            .unwrap()
            .meta_vars
            .iter()
            .map(|m| m.var)
            .collect();
        assert!(!metas.contains(&user_var), "meta-variable aliases a user variable");
        // Binding the user's variable moves neither side: identical to a
        // session that never interned it.
        let scenario = Valuation::with_default(Rat::ONE).bind(user_var, rat("17"));
        let cmp = s.assign(&scenario).unwrap();
        let mut clean = planned_paper_session();
        clean.select_bound(6).unwrap();
        let clean_cmp = clean.assign(Valuation::with_default(Rat::ONE)).unwrap();
        assert_eq!(cmp.rows, clean_cmp.rows);
    }

    #[test]
    fn meta_vars_stay_addressable_by_name_after_selection() {
        // The fix must not break name-addressing: interning a cut node's
        // name *after* selection resolves to the meta-variable itself.
        let mut s = planned_paper_session();
        s.select_bound(6).unwrap();
        let meta = s.registry_mut().var("Business");
        assert!(s
            .compressed
            .as_ref()
            .unwrap()
            .meta_vars
            .iter()
            .any(|m| m.var == meta));
        // …and assign_meta through that name stays internally consistent.
        let scenario = Valuation::new().bind(meta, rat("1.1"));
        assert!(s.assign_meta(&scenario).unwrap().is_exact());
    }

    #[test]
    fn reselection_with_reserved_name_keeps_meta_identities_stable() {
        // With "Business" reserved (user-interned), every selection of the
        // same frontier point must reuse the same fresh-named
        // meta-variable — otherwise warm engines compiled against the
        // first identities could never be rebound.
        let mut s = planned_paper_session();
        let _user = s.registry_mut().var("Business");
        s.select_bound(6).unwrap();
        let metas1: Vec<Var> = s.compressed.as_ref().unwrap().meta_vars.iter().map(|m| m.var).collect();
        let m3 = s.registry_mut().var("m3");
        let scenario = Valuation::with_default(Rat::ONE).bind(m3, rat("0.8"));
        let first = s.assign(&scenario).unwrap();
        s.select_bound(4).unwrap();
        let _ = s.assign(&scenario).unwrap();
        s.select_bound(6).unwrap();
        let metas2: Vec<Var> = s.compressed.as_ref().unwrap().meta_vars.iter().map(|m| m.var).collect();
        assert_eq!(metas1, metas2);
        // the warm path reinstalled the stashed engines and answers match
        assert!(s.compressed.as_ref().unwrap().engines.get().is_some());
        assert_eq!(first.rows, s.assign(&scenario).unwrap().rows);
    }

    #[test]
    fn coeff_only_delta_patches_in_place_and_matches_fresh_rebuild() {
        let mut s = planned_paper_session();
        s.select_bound(6).unwrap();
        s.baseline_results().unwrap(); // force engines so the patch path runs
        let (p1v, m3) = {
            let reg = s.registry_mut();
            (reg.var("p1"), reg.var("m3"))
        };
        let idx = s.polynomials().index_of("P1").unwrap();
        let mut delta = PolyDelta::new();
        delta.set(idx, Monomial::from_pairs([(p1v, 1), (m3, 1)]), rat("250"));
        let report = s.apply_delta(&delta).unwrap();
        assert!(!report.is_structural());
        // selection metadata survived; only compiled caches were dropped
        let state = s.compressed.as_ref().unwrap();
        assert!(state.engines.get().is_none());
        assert_eq!(state.compressed_size, 6);
        assert!(s.frontier.as_ref().unwrap().selected.is_some());
        let fresh = fresh_rebuild(&s, 6);
        let b1 = s.registry_mut().var("b1");
        let scenarios: Vec<Valuation<Rat>> = (0..8)
            .map(|i: i128| {
                Valuation::with_default(Rat::ONE)
                    .bind(m3, Rat::ONE - Rat::new(i, 100))
                    .bind(b1, Rat::ONE + Rat::new(i, 50))
            })
            .collect();
        let patched = s.sweep(&scenarios).unwrap();
        let rebuilt = fresh.sweep(&scenarios).unwrap();
        for i in 0..scenarios.len() {
            assert_eq!(patched.comparison(i).rows, rebuilt.comparison(i).rows, "scenario {i}");
        }
    }

    #[test]
    fn structural_delta_replans_incrementally_and_matches_fresh_rebuild() {
        let mut s = planned_paper_session();
        s.select_bound(6).unwrap();
        let (b1, e, m1, m9) = {
            let reg = s.registry_mut();
            (reg.var("b1"), reg.var("e"), reg.var("m1"), reg.var("m9"))
        };
        let idx = s.polynomials().index_of("P2").unwrap();
        let mut delta = PolyDelta::new();
        // a September tuple appears (brand-new month variable)…
        delta.add(idx, Monomial::from_pairs([(b1, 1), (m9, 1)]), rat("3"));
        // …and a January tuple is deleted upstream
        delta.remove(idx, Monomial::from_pairs([(e, 1), (m1, 1)]));
        let report = s.apply_delta(&delta).unwrap();
        assert!(report.is_structural());
        // the session re-selected its bound against the refreshed frontier
        assert!(s.compressed.is_some());
        let fresh = fresh_rebuild(&s, 6);
        let curve: Vec<(usize, u64)> = s
            .frontier()
            .unwrap()
            .points()
            .iter()
            .map(|p| (p.variables, p.size))
            .collect();
        let fresh_curve: Vec<(usize, u64)> = fresh
            .frontier()
            .unwrap()
            .points()
            .iter()
            .map(|p| (p.variables, p.size))
            .collect();
        assert_eq!(curve, fresh_curve);
        let m3 = s.registry_mut().var("m3");
        let scenarios: Vec<Valuation<Rat>> = (0..8)
            .map(|i: i128| {
                Valuation::with_default(Rat::ONE)
                    .bind(m3, Rat::ONE - Rat::new(i, 100))
                    .bind(b1, Rat::ONE + Rat::new(i, 50))
                    .bind(m9, Rat::ONE + Rat::new(i, 25))
            })
            .collect();
        let patched = s.sweep(&scenarios).unwrap();
        let rebuilt = fresh.sweep(&scenarios).unwrap();
        for i in 0..scenarios.len() {
            assert_eq!(patched.comparison(i).rows, rebuilt.comparison(i).rows, "scenario {i}");
        }
    }

    #[test]
    fn one_shot_compress_state_recompresses_after_delta() {
        let mut s = session_with_bound(6);
        s.compress().unwrap();
        let (p1v, m3) = {
            let reg = s.registry_mut();
            (reg.var("p1"), reg.var("m3"))
        };
        let idx = s.polynomials().index_of("P1").unwrap();
        let mut delta = PolyDelta::new();
        delta.set(idx, Monomial::from_pairs([(p1v, 1), (m3, 1)]), rat("250"));
        s.apply_delta(&delta).unwrap();
        // the one-shot state was re-derived against the updated set
        let mut fresh = CobraSession::new(s.registry().clone(), s.polynomials().clone());
        fresh.add_tree_text(FIG2_TREE).unwrap();
        fresh.set_bound(6);
        fresh.compress().unwrap();
        let scenario = Valuation::with_default(Rat::ONE).bind(m3, rat("0.8"));
        assert_eq!(
            s.assign(&scenario).unwrap().rows,
            fresh.assign(&scenario).unwrap().rows
        );
    }

    #[test]
    fn invalid_delta_is_rejected_atomically() {
        let mut s = planned_paper_session();
        s.select_bound(6).unwrap();
        let before = s.polynomials().clone();
        let v = s.registry_mut().var("p1");
        let mut delta = PolyDelta::new();
        delta.add(0, Monomial::var(v), rat("1"));
        delta.add(99, Monomial::var(v), rat("1")); // no such polynomial
        assert!(matches!(s.apply_delta(&delta), Err(CoreError::Delta(_))));
        assert_eq!(
            s.polynomials().total_monomials(),
            before.total_monomials()
        );
        // the selection is untouched and the session still answers
        assert!(s.assign(Valuation::with_default(Rat::ONE)).unwrap().is_exact());
    }

    #[test]
    fn exact_overflow_is_typed_and_survivable() {
        // 2^126: one addition away from leaving i128.
        const BIG: &str = "85070591730234615865843651857942052864";
        let mut s =
            CobraSession::from_text(&format!("P = {BIG}*a + {BIG}*b")).unwrap();
        s.add_tree_text("T(a,b)").unwrap();
        s.set_bound(2);
        s.compress().unwrap();
        let all_ones = [Valuation::with_default(Rat::ONE)];
        // the sequential exact surfaces surface the typed error…
        assert!(matches!(
            s.sweep(&all_ones[..]),
            Err(CoreError::ExactOverflow(_))
        ));
        assert!(matches!(
            s.sweep_fold(&all_ones[..], (), |(), _| ()),
            Err(CoreError::ExactOverflow(_))
        ));
        // …and so does the fanned-out engine (worker panic remapped)
        assert!(matches!(
            s.sweep_fold_par(&all_ones[..], crate::folds::MaxAbsError::new()),
            Err(CoreError::ExactOverflow(_))
        ));
        // the session stays fully usable on non-overflowing scenarios
        let a = s.registry_mut().var("a");
        let safe = Valuation::with_default(Rat::ONE).bind(a, Rat::int(0));
        assert!(s.assign(&safe).unwrap().is_exact());
    }

    #[test]
    fn compile_dag_requires_a_selection() {
        let mut s = session_with_bound(6);
        assert!(matches!(s.compile_dag(), Err(CoreError::Session(_))));
        assert!(!s.dag_mode());
    }

    #[test]
    fn compile_dag_is_bit_identical_to_flat() {
        let mut s = session_with_bound(6);
        s.compress().unwrap();
        let m3 = s.registry_mut().var("m3");
        let b1 = s.registry_mut().var("b1");
        let scenarios: Vec<Valuation<Rat>> = (0..12)
            .map(|i: i128| {
                Valuation::with_default(Rat::ONE)
                    .bind(m3, Rat::ONE - Rat::new(i, 100))
                    .bind(b1, Rat::ONE + Rat::new(i, 50))
            })
            .collect();
        let flat_rows: Vec<_> = {
            let sweep = s.sweep(&scenarios).unwrap();
            sweep.comparisons().map(|c| c.rows.clone()).collect()
        };

        let report = s.compile_dag().unwrap();
        assert!(s.dag_mode());
        assert_eq!(report.optimizer, "algebraic-dag");
        // Factoring never adds multiplies.
        assert!(report.full.dag_multiply_ops <= report.full.flat_multiply_ops);
        assert!(report.compressed.dag_multiply_ops <= report.compressed.flat_multiply_ops);

        let dag_rows: Vec<_> = {
            let sweep = s.sweep(&scenarios).unwrap();
            sweep.comparisons().map(|c| c.rows.clone()).collect()
        };
        assert_eq!(flat_rows, dag_rows);
        // …and so are the single-assignment and meta paths.
        let scenario = Valuation::with_default(Rat::ONE).bind(m3, rat("0.8"));
        assert_eq!(
            s.assign(&scenario).unwrap().rows[0].full,
            rat("454.1") + rat("0.8") * rat("451.15")
        );
        let info = s.info();
        assert!(info.dag);
        assert!(info.dag_slots.is_some());
    }

    #[test]
    fn compile_dag_survives_reselection_and_disables_cleanly() {
        let mut s = session_with_bound(14);
        s.compress_frontier().unwrap();
        s.select_bound(6).unwrap();
        s.compile_dag().unwrap();
        let m3 = s.registry_mut().var("m3");
        let scenario = Valuation::with_default(Rat::ONE).bind(m3, rat("0.8"));
        // a bound hop builds a fresh Compressed: its DAG engines rebuild
        // against the new selection, never reusing stale slots
        s.select_bound(4).unwrap();
        assert!(s.dag_mode());
        let hopped = s.assign(&scenario).unwrap();
        let mut fresh = session_with_bound(4);
        fresh.compress().unwrap();
        assert_eq!(hopped.rows, fresh.assign(&scenario).unwrap().rows);
    }

    #[test]
    fn forest_staircase_reuses_warm_selections() {
        let mut s = CobraSession::from_text(PAPER_POLYS).unwrap();
        s.add_tree_text(FIG2_TREE).unwrap();
        s.add_tree_text("Months(m1,m3)").unwrap();
        let sizes: Vec<u64> = s
            .compress_forest_frontier()
            .unwrap()
            .points()
            .iter()
            .map(|p| p.size)
            .collect();
        assert!(sizes.len() >= 2, "staircase too small to hop");
        let (lo, hi) = (sizes[0], *sizes.last().unwrap());
        let all_ones = Valuation::with_default(Rat::ONE);

        let first = s.select_bound(hi).unwrap();
        let first_rows = s.assign(&all_ones).unwrap().rows;
        s.select_bound(lo).unwrap();
        // the outgoing selection was stashed, not dropped
        assert_eq!(s.info().warm_engines, 1);
        let again = s.select_bound(hi).unwrap();
        // hopping back reinstalls the stash: identical report and engines
        assert_eq!(format!("{first:?}"), format!("{again:?}"));
        assert_eq!(s.assign(&all_ones).unwrap().rows, first_rows);
        // the low point is now the stashed one
        assert_eq!(s.info().warm_engines, 1);
    }
}
