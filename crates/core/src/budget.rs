//! Sweep budgets and exact partial results.
//!
//! A 10⁸-scenario sweep is seconds of blocking work — too long for a
//! shared session answering concurrent requests to be uninterruptible.
//! [`SweepBudget`] bounds a sweep three ways (wall-clock deadline,
//! scenario cap, cooperative [`CancelToken`]), and every budgeted fold
//! entry point checks it at **block granularity**: the streamed sweep
//! loops (sequential and per-worker alike) poll the budget between
//! blocks of at most [`stream_block`](crate::scenario) scenarios, so an
//! exhausted budget stops the sweep within one block's work.
//!
//! The key property — enabled by the [`MergeFold`](crate::folds::MergeFold)
//! monoid structure from the fold engine — is that an interrupted sweep
//! is not best-effort garbage: it returns
//! [`SweepOutcome::Partial`] whose fold is the in-order merge of the
//! completed span prefixes, **bit-identical to a sequential fold over the
//! same scenario prefix**. Graceful degradation is exact by construction.

use crate::error::{CoreError, Result};
use cobra_util::CancelToken;
use std::time::{Duration, Instant};

/// Limits on one sweep: any combination of a wall-clock deadline, a
/// scenario cap, and a cooperative cancellation token. The default
/// ([`SweepBudget::unlimited`]) imposes nothing and compiles down to one
/// boolean check per streamed block on the hot path.
///
/// ```
/// use cobra_core::budget::SweepBudget;
/// use cobra_util::CancelToken;
/// use std::time::Duration;
///
/// let token = CancelToken::new();
/// let budget = SweepBudget::unlimited()
///     .with_deadline(Duration::from_millis(250))
///     .with_scenario_cap(1_000_000)
///     .with_cancel_token(token.clone());
/// assert!(!budget.is_unlimited());
/// assert!(budget.stop_reason().is_none()); // nothing tripped yet
/// token.cancel();
/// assert!(budget.stop_reason().is_some());
/// ```
#[derive(Clone, Debug, Default)]
pub struct SweepBudget {
    deadline: Option<Instant>,
    scenario_cap: Option<usize>,
    cancel: Option<CancelToken>,
}

impl SweepBudget {
    /// A budget that imposes no limits — what the unbudgeted sweep
    /// surfaces thread through internally.
    pub fn unlimited() -> SweepBudget {
        SweepBudget::default()
    }

    /// Adds a wall-clock deadline `d` from now. Checked at block
    /// granularity: the sweep stops within one block of the deadline
    /// passing, returning the exact fold over the scenarios completed.
    pub fn with_deadline(self, d: Duration) -> SweepBudget {
        self.with_deadline_at(Instant::now() + d)
    }

    /// Adds an absolute wall-clock deadline (e.g. a server request's
    /// arrival time plus its SLA).
    pub fn with_deadline_at(self, at: Instant) -> SweepBudget {
        SweepBudget {
            deadline: Some(self.deadline.map_or(at, |d| d.min(at))),
            ..self
        }
    }

    /// Caps the number of scenarios processed. Unlike the deadline and
    /// the token this is **deterministic**: a capped sweep folds exactly
    /// the first `cap` scenarios of the set's enumeration order, on any
    /// thread count. A cap of zero is rejected as
    /// [`CoreError::InfeasibleBudget`] at the sweep entry.
    pub fn with_scenario_cap(self, cap: usize) -> SweepBudget {
        SweepBudget {
            scenario_cap: Some(self.scenario_cap.map_or(cap, |c| c.min(cap))),
            ..self
        }
    }

    /// Attaches a cooperative cancellation token; tripping any clone of
    /// it stops the sweep at the next block boundary.
    pub fn with_cancel_token(self, token: CancelToken) -> SweepBudget {
        SweepBudget {
            cancel: Some(token),
            ..self
        }
    }

    /// True when no limit is set — lets hot loops skip the per-block
    /// deadline/token polls entirely.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.scenario_cap.is_none() && self.cancel.is_none()
    }

    /// The scenario cap, if any.
    pub fn scenario_cap(&self) -> Option<usize> {
        self.scenario_cap
    }

    /// Polls the *dynamic* limits (token, then deadline) — the per-block
    /// check the sweep loops run. The scenario cap is not polled here; it
    /// is applied deterministically by clamping the scenario range up
    /// front.
    pub fn stop_reason(&self) -> Option<StopReason> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Some(StopReason::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some(StopReason::Deadline);
            }
        }
        None
    }

    /// True when the budget has limits that must be *polled* per block
    /// (deadline or token) — a cap-only budget is applied by clamping the
    /// scenario range up front and needs no polls at all.
    pub(crate) fn has_dynamic_limits(&self) -> bool {
        self.deadline.is_some() || self.cancel.is_some()
    }

    /// Rejects statically unsatisfiable budgets (currently: a scenario
    /// cap of zero over a non-empty set). Every budgeted entry point
    /// calls this first.
    pub(crate) fn validate(&self, scenarios: usize) -> Result<()> {
        if self.scenario_cap == Some(0) && scenarios > 0 {
            return Err(CoreError::InfeasibleBudget(
                "scenario cap is 0: no sweep over a non-empty set can make progress; \
                 use a positive cap or drop the cap"
                    .into(),
            ));
        }
        Ok(())
    }
}

/// Why a budgeted sweep stopped early.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// The wall-clock deadline passed.
    Deadline,
    /// The [`CancelToken`] was tripped.
    Cancelled,
    /// The scenario cap was reached (a deliberate truncation, so capped
    /// partial results are deterministic and bit-identical across thread
    /// counts).
    ScenarioCap,
}

/// Result of a budgeted sweep: either the complete fold, or the **exact**
/// fold over the scenario prefix completed before the budget ran out.
///
/// A `Partial` fold is not an approximation: it is the in-order merge of
/// completed worker-span prefixes and equals, bit for bit, a sequential
/// fold over scenarios `0..scenarios_done` (property-pinned in
/// `tests/robustness.rs` across thread counts).
///
/// ```
/// use cobra_core::budget::{StopReason, SweepOutcome};
///
/// let outcome = SweepOutcome::Partial {
///     fold: 41,
///     scenarios_done: 41,
///     reason: StopReason::ScenarioCap,
/// };
/// assert_eq!(outcome.scenarios_done(), Some(41));
/// // keep the exact partial value…
/// assert_eq!(*outcome.fold(), 41);
/// // …or insist on completeness and turn the truncation into an error
/// assert!(outcome.into_complete().is_err());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SweepOutcome<T> {
    /// Every scenario was folded.
    Complete(T),
    /// The budget ran out; `fold` covers exactly the first
    /// `scenarios_done` scenarios.
    Partial {
        /// The exact fold over scenarios `0..scenarios_done`.
        fold: T,
        /// How many scenarios (a prefix of the enumeration order) were
        /// folded before the sweep stopped.
        scenarios_done: usize,
        /// Which budget limit stopped the sweep.
        reason: StopReason,
    },
}

impl<T> SweepOutcome<T> {
    /// True for [`SweepOutcome::Complete`].
    pub fn is_complete(&self) -> bool {
        matches!(self, SweepOutcome::Complete(_))
    }

    /// The fold value, complete or partial.
    pub fn fold(&self) -> &T {
        match self {
            SweepOutcome::Complete(f) => f,
            SweepOutcome::Partial { fold, .. } => fold,
        }
    }

    /// Consumes the outcome, returning the fold value either way —
    /// callers that treat a partial prefix as good enough.
    pub fn into_fold(self) -> T {
        match self {
            SweepOutcome::Complete(f) => f,
            SweepOutcome::Partial { fold, .. } => fold,
        }
    }

    /// How many scenarios the partial fold covers (`None` when complete).
    pub fn scenarios_done(&self) -> Option<usize> {
        match self {
            SweepOutcome::Complete(_) => None,
            SweepOutcome::Partial { scenarios_done, .. } => Some(*scenarios_done),
        }
    }

    /// The stop reason, if the sweep was interrupted.
    pub fn stop_reason(&self) -> Option<StopReason> {
        match self {
            SweepOutcome::Complete(_) => None,
            SweepOutcome::Partial { reason, .. } => Some(*reason),
        }
    }

    /// Demands a complete sweep: `Complete` unwraps, `Partial` becomes
    /// the matching typed error ([`CoreError::DeadlineExceeded`],
    /// [`CoreError::Cancelled`]; a reached scenario cap also maps to
    /// `Cancelled` — a cap is a caller-requested truncation, so callers
    /// that set one usually want to match on `Partial` instead).
    pub fn into_complete(self) -> Result<T> {
        match self {
            SweepOutcome::Complete(f) => Ok(f),
            SweepOutcome::Partial { reason, .. } => Err(match reason {
                StopReason::Deadline => CoreError::DeadlineExceeded,
                StopReason::Cancelled | StopReason::ScenarioCap => CoreError::Cancelled,
            }),
        }
    }

    /// Maps the fold value, preserving the outcome shape.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> SweepOutcome<U> {
        match self {
            SweepOutcome::Complete(v) => SweepOutcome::Complete(f(v)),
            SweepOutcome::Partial {
                fold,
                scenarios_done,
                reason,
            } => SweepOutcome::Partial {
                fold: f(fold),
                scenarios_done,
                reason,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_stops() {
        let b = SweepBudget::unlimited();
        assert!(b.is_unlimited());
        assert!(b.stop_reason().is_none());
        assert!(b.validate(1_000_000).is_ok());
    }

    #[test]
    fn tightest_limit_wins() {
        let b = SweepBudget::unlimited()
            .with_scenario_cap(100)
            .with_scenario_cap(7)
            .with_scenario_cap(50);
        assert_eq!(b.scenario_cap(), Some(7));
        let early = Instant::now();
        let b = SweepBudget::unlimited()
            .with_deadline_at(early + Duration::from_secs(60))
            .with_deadline_at(early);
        assert_eq!(b.stop_reason(), Some(StopReason::Deadline));
    }

    #[test]
    fn cancel_beats_deadline_in_poll_order() {
        let token = CancelToken::new();
        token.cancel();
        let b = SweepBudget::unlimited()
            .with_cancel_token(token)
            .with_deadline(Duration::ZERO);
        assert_eq!(b.stop_reason(), Some(StopReason::Cancelled));
    }

    #[test]
    fn zero_cap_is_infeasible_for_nonempty_sets() {
        let b = SweepBudget::unlimited().with_scenario_cap(0);
        assert!(matches!(
            b.validate(10),
            Err(CoreError::InfeasibleBudget(_))
        ));
        // an empty set has nothing to cap
        assert!(b.validate(0).is_ok());
    }

    #[test]
    fn outcome_accessors() {
        let c: SweepOutcome<i32> = SweepOutcome::Complete(5);
        assert!(c.is_complete());
        assert_eq!(c.scenarios_done(), None);
        assert_eq!(c.stop_reason(), None);
        assert_eq!(c.into_complete().unwrap(), 5);

        let p = SweepOutcome::Partial {
            fold: 3,
            scenarios_done: 9,
            reason: StopReason::Deadline,
        };
        assert_eq!(*p.fold(), 3);
        assert_eq!(p.scenarios_done(), Some(9));
        assert_eq!(p.map(|v| v * 2).into_fold(), 6);
        assert!(matches!(
            p.into_complete(),
            Err(CoreError::DeadlineExceeded)
        ));
        let cancelled = SweepOutcome::Partial {
            fold: (),
            scenarios_done: 0,
            reason: StopReason::Cancelled,
        };
        assert!(matches!(
            cancelled.into_complete(),
            Err(CoreError::Cancelled)
        ));
    }
}
