//! Cuts of an abstraction tree (paper §2, Example 4).
//!
//! "An abstraction is … represented by a cut in the tree separating the
//! root from all leaves": an antichain of nodes such that every leaf has
//! exactly one ancestor-or-self in the set. Applying the cut replaces each
//! leaf by the meta-variable of its covering node.

use crate::error::{CoreError, Result};
use crate::tree::{AbstractionTree, NodeId};
use cobra_provenance::{Var, VarRegistry};
use cobra_util::{FxHashMap, FxHashSet};

/// A validated cut: a set of node ids (sorted for canonical equality).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cut {
    nodes: Vec<NodeId>,
}

impl Cut {
    /// Builds a cut from node ids, validating against the tree.
    pub fn new(tree: &AbstractionTree, mut nodes: Vec<NodeId>) -> Result<Cut> {
        nodes.sort_unstable();
        nodes.dedup();
        // Every leaf must be covered exactly once. Count covering nodes per
        // leaf position via each cut node's leaf range.
        let mut cover = vec![0u32; tree.num_leaves()];
        for &n in &nodes {
            for c in &mut cover[tree.leaf_range(n)] {
                *c += 1;
            }
        }
        if let Some(pos) = cover.iter().position(|&c| c != 1) {
            let leaf = tree.leaves()[pos];
            let kind = if cover[pos] == 0 { "uncovered" } else { "covered more than once" };
            return Err(CoreError::InvalidCut(format!(
                "leaf #{pos} (Var({})) is {kind}",
                leaf.0
            )));
        }
        Ok(Cut { nodes })
    }

    /// Builds a cut from node names, e.g. the paper's
    /// `S1 = {Business, Special, Standard}`.
    pub fn from_names(tree: &AbstractionTree, names: &[&str]) -> Result<Cut> {
        let nodes = names
            .iter()
            .map(|n| tree.node_by_name(n))
            .collect::<Result<Vec<_>>>()?;
        Cut::new(tree, nodes)
    }

    /// The cut at the root: everything collapses to one meta-variable
    /// (paper's `S5 = {Plans}`) — the coarsest abstraction.
    pub fn root(tree: &AbstractionTree) -> Cut {
        Cut {
            nodes: vec![tree.root()],
        }
    }

    /// The cut at the leaves: the identity abstraction (no compression).
    pub fn leaves(tree: &AbstractionTree) -> Cut {
        let mut nodes: Vec<NodeId> = tree
            .node_ids()
            .filter(|&id| tree.is_leaf(id))
            .collect();
        nodes.sort_unstable();
        Cut { nodes }
    }

    /// The cut's nodes (sorted).
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Number of nodes — the expressiveness contribution of this tree
    /// ("the number of distinct variable names it defines").
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True iff the cut has no nodes (never valid for a non-empty tree).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Human-readable node-name set, e.g. `{Business, Special, Standard}`.
    pub fn display(&self, tree: &AbstractionTree) -> String {
        let names: Vec<&str> = self.nodes.iter().map(|&n| tree.node_name(n)).collect();
        format!("{{{}}}", names.join(", "))
    }

    /// The leaf → meta-variable substitution this cut induces.
    ///
    /// Cutting at a leaf keeps its variable. Inner nodes get a variable
    /// named after the node; if that name is already used by a variable in
    /// `reserved` (variables occurring in the polynomials or as tree
    /// leaves), a fresh suffixed name is chosen instead to avoid accidental
    /// merges with pre-existing variables.
    ///
    /// Returns `(substitution, meta info per cut node)`.
    pub fn substitution(
        &self,
        tree: &AbstractionTree,
        reg: &mut VarRegistry,
        reserved: &FxHashSet<Var>,
    ) -> (FxHashMap<Var, Var>, Vec<MetaVar>) {
        let mut subst = FxHashMap::default();
        let mut metas = Vec::with_capacity(self.nodes.len());
        for &node in &self.nodes {
            let leaves = tree.leaves_under(node);
            let var = match tree.leaf_var(node) {
                Some(v) => v, // cut at a leaf: identity
                None => {
                    let name = tree.node_name(node).to_owned();
                    let candidate = reg.var(&name);
                    if reserved.contains(&candidate) || tree.contains_var(candidate) {
                        reg.fresh(&name)
                    } else {
                        candidate
                    }
                }
            };
            for &leaf in leaves {
                if leaf != var {
                    subst.insert(leaf, var);
                }
            }
            metas.push(MetaVar {
                node,
                var,
                name: reg.name(var).to_owned(),
                leaves: leaves.to_vec(),
            });
        }
        (subst, metas)
    }
}

/// One meta-variable introduced by a cut, with the leaves it abstracts —
/// the information shown on the paper's meta-variable assignment screen
/// (Fig. 5).
#[derive(Clone, Debug, PartialEq)]
pub struct MetaVar {
    /// The cut node.
    pub node: NodeId,
    /// The meta-variable (for leaf cuts: the leaf's own variable).
    pub var: Var,
    /// The meta-variable's name.
    pub name: String,
    /// The variables this meta-variable groups (itself for leaf cuts).
    pub leaves: Vec<Var>,
}

/// Enumerates **all** cuts of the tree (for the brute-force oracle).
///
/// The number of cuts can be exponential in the tree size; enumeration
/// aborts with [`CoreError::TooManyCuts`] beyond `limit`.
pub fn enumerate_cuts(tree: &AbstractionTree, limit: usize) -> Result<Vec<Cut>> {
    fn rec(
        tree: &AbstractionTree,
        node: NodeId,
        limit: usize,
    ) -> Result<Vec<Vec<NodeId>>> {
        let mut out = vec![vec![node]];
        if !tree.is_leaf(node) {
            // cartesian product of child cuts
            let mut product: Vec<Vec<NodeId>> = vec![Vec::new()];
            for &c in tree.children(node) {
                let child_cuts = rec(tree, c, limit)?;
                let mut next = Vec::new();
                for base in &product {
                    for cc in &child_cuts {
                        let mut v = base.clone();
                        v.extend_from_slice(cc);
                        next.push(v);
                        if next.len() + out.len() > limit {
                            return Err(CoreError::TooManyCuts { limit });
                        }
                    }
                }
                product = next;
            }
            out.extend(product);
        }
        Ok(out)
    }
    let raw = rec(tree, tree.root(), limit)?;
    raw.into_iter()
        .map(|nodes| Cut::new(tree, nodes))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::paper_plans_tree;

    #[test]
    fn paper_cuts_validate() {
        let mut reg = VarRegistry::new();
        let t = paper_plans_tree(&mut reg);
        for (names, k) in [
            (vec!["Business", "Special", "Standard"], 3), // S1
            (vec!["SB", "e", "f1", "f2", "Y", "v", "Standard"], 7), // S2
            (vec!["b1", "b2", "e", "Special", "Standard"], 5), // S3
            (vec!["SB", "e", "F", "Y", "v", "p1", "p2"], 7), // S4
            (vec!["Plans"], 1),                           // S5
        ] {
            let cut = Cut::from_names(&t, &names).unwrap();
            assert_eq!(cut.len(), k, "{names:?}");
        }
    }

    #[test]
    fn invalid_cuts_rejected() {
        let mut reg = VarRegistry::new();
        let t = paper_plans_tree(&mut reg);
        // missing coverage of Standard's leaves
        assert!(matches!(
            Cut::from_names(&t, &["Business", "Special"]),
            Err(CoreError::InvalidCut(_))
        ));
        // double coverage: Business covers e
        assert!(matches!(
            Cut::from_names(&t, &["Business", "e", "Special", "Standard"]),
            Err(CoreError::InvalidCut(_))
        ));
        // overlapping ancestor pair
        assert!(matches!(
            Cut::from_names(&t, &["Plans", "Business"]),
            Err(CoreError::InvalidCut(_))
        ));
        assert!(matches!(
            Cut::from_names(&t, &["Nope"]),
            Err(CoreError::UnknownNode(_))
        ));
    }

    #[test]
    fn root_and_leaf_cuts() {
        let mut reg = VarRegistry::new();
        let t = paper_plans_tree(&mut reg);
        assert_eq!(Cut::root(&t).len(), 1);
        let leaves = Cut::leaves(&t);
        assert_eq!(leaves.len(), 11);
        // both are valid cuts
        Cut::new(&t, Cut::root(&t).nodes().to_vec()).unwrap();
        Cut::new(&t, leaves.nodes().to_vec()).unwrap();
    }

    #[test]
    fn substitution_maps_leaves_to_meta() {
        let mut reg = VarRegistry::new();
        let t = paper_plans_tree(&mut reg);
        let cut = Cut::from_names(&t, &["Business", "Special", "Standard"]).unwrap();
        let (subst, metas) = cut.substitution(&t, &mut reg, &FxHashSet::default());
        assert_eq!(metas.len(), 3);
        // all 11 leaves are substituted (no cut node is a leaf)
        assert_eq!(subst.len(), 11);
        let business = reg.lookup("Business").unwrap();
        let b1 = reg.lookup("b1").unwrap();
        let e = reg.lookup("e").unwrap();
        assert_eq!(subst[&b1], business);
        assert_eq!(subst[&e], business);
        // meta info lists grouped leaves
        let m = metas.iter().find(|m| m.name == "Business").unwrap();
        assert_eq!(m.leaves.len(), 3);
    }

    #[test]
    fn substitution_keeps_leaf_cut_identity() {
        let mut reg = VarRegistry::new();
        let t = paper_plans_tree(&mut reg);
        let cut = Cut::from_names(&t, &["SB", "e", "F", "Y", "v", "p1", "p2"]).unwrap(); // S4
        let (subst, metas) = cut.substitution(&t, &mut reg, &FxHashSet::default());
        let v = reg.lookup("v").unwrap();
        assert!(!subst.contains_key(&v), "leaf cut keeps its variable");
        assert_eq!(metas.iter().filter(|m| m.leaves.len() == 1).count(), 4); // e, v, p1, p2
    }

    #[test]
    fn substitution_avoids_reserved_collision() {
        let mut reg = VarRegistry::new();
        // a polynomial variable already named "Business"
        let existing = reg.var("Business");
        let t = paper_plans_tree(&mut reg);
        let cut = Cut::from_names(&t, &["Business", "Special", "Standard"]).unwrap();
        let reserved: FxHashSet<Var> = [existing].into_iter().collect();
        let (_, metas) = cut.substitution(&t, &mut reg, &reserved);
        let m = metas.iter().find(|m| m.node == t.node_by_name("Business").unwrap()).unwrap();
        assert_ne!(m.var, existing);
        assert_eq!(m.name, "Business#1");
    }

    #[test]
    fn enumerate_counts_fig2_cuts() {
        let mut reg = VarRegistry::new();
        let t = paper_plans_tree(&mut reg);
        let cuts = enumerate_cuts(&t, 10_000).unwrap();
        // #cuts(v) = 1 + Π #cuts(children):
        // Standard: 1+1=2; Y: 2; F: 2; SB: 2; Special: 1+2·2·1=5;
        // Business: 1+2·1=3; Plans: 1+2·5·3=31.
        assert_eq!(cuts.len(), 31);
        // all distinct and valid
        let mut seen = std::collections::HashSet::new();
        for c in &cuts {
            assert!(seen.insert(c.nodes().to_vec()));
        }
    }

    #[test]
    fn enumerate_respects_limit() {
        let mut reg = VarRegistry::new();
        let t = paper_plans_tree(&mut reg);
        assert!(matches!(
            enumerate_cuts(&t, 10),
            Err(CoreError::TooManyCuts { limit: 10 })
        ));
    }
}
