//! The unified compression planner: one optimizer core behind every
//! compression entry point.
//!
//! Before this module, the `brute`, `dp` and `greedy` optimizers each
//! re-derived per-node statistics from a [`GroupAnalysis`] and exposed
//! their own entry points; `CobraSession::compress` recomputed everything
//! whenever the bound changed. The planner collapses them behind two
//! abstractions:
//!
//! * [`PlanContext`] — the **shared cut statistics**: per-node subtree
//!   statistics ([`NodeStats`]: group weight, leaf counts, member-monomial
//!   counts, merge savings) computed **once** from a [`GroupAnalysis`],
//!   plus the memoized tree-knapsack DP tables every exact query reuses.
//! * [`CutPlanner`] — the planning interface: [`plan`](CutPlanner::plan)
//!   answers one bound, [`plan_frontier`](CutPlanner::plan_frontier)
//!   produces the **entire expressiveness/size Pareto curve** in one pass
//!   as a [`CutFrontier`], whose [`select`](CutFrontier::select) resolves
//!   any later bound in `O(log |frontier|)` — the engine behind
//!   `CobraSession::{compress_frontier, select_bound}` and the paper's
//!   interactive bound sweep (the companion demo plots the whole
//!   trade-off curve, not a single point).
//!
//! Three planners implement the interface:
//!
//! * [`ExactDp`] — the paper's PTIME bottom-up tree knapsack (optimal).
//! * [`Greedy`] — agglomerative coarsening from the leaf cut (baseline).
//! * [`BruteForce`] — exhaustive cut enumeration with candidate scoring
//!   fanned across workers ([`cobra_util::par`]); the in-production
//!   sibling of the application-measured test oracle in [`crate::brute`].
//!
//! ```
//! use cobra_core::planner::{CutPlanner, ExactDp, PlanContext};
//! use cobra_core::{groups::GroupAnalysis, tree::AbstractionTree};
//! use cobra_provenance::{parse_polyset, VarRegistry};
//!
//! let mut reg = VarRegistry::new();
//! let tree = AbstractionTree::parse("T(A(a1,a2), B(b1,b2))", &mut reg).unwrap();
//! let set = parse_polyset("P = 1*c*a1 + 2*c*a2 + 3*c*b1 + 4*c*b2", &mut reg).unwrap();
//! let analysis = GroupAnalysis::analyze(&set, &tree).unwrap();
//! let ctx = PlanContext::new(&tree, &analysis);
//! // the whole trade-off curve in one pass…
//! let frontier = ExactDp.plan_frontier(&ctx).unwrap();
//! assert_eq!(frontier.len(), 4); // k = 1, 2, 3, 4 are all attainable
//! // …then any bound is a lookup
//! let at3 = frontier.select(3).unwrap();
//! assert_eq!((at3.variables, at3.size), (3, 3));
//! assert_eq!(ExactDp.plan(&ctx, 3).unwrap().size, 3);
//! ```

use crate::cut::{enumerate_cuts, Cut};
use crate::error::{CoreError, Result};
use crate::groups::GroupAnalysis;
use crate::tree::{AbstractionTree, NodeId};
use cobra_provenance::DagOptions;
use cobra_util::par;
use std::cell::OnceCell;
use std::sync::Arc;

const INF: u64 = u64::MAX;

/// Per-node subtree statistics, derived once per [`PlanContext`] and
/// shared by every planner (indexed by [`NodeId`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeStats {
    /// `w(v)`: groups touching the subtree — the node's additive
    /// contribution to any cut containing it ([`crate::groups`]).
    pub weight: u64,
    /// Leaves under the subtree — the maximal cut cardinality within it.
    pub leaves: u32,
    /// Σ `w(child)` over the node's children (0 for leaves).
    pub child_weight_sum: u64,
    /// Monomials saved by cutting here instead of at the children:
    /// `child_weight_sum − weight` (≥ 0 by subadditivity; 0 for leaves).
    pub saving: u64,
    /// Group-member monomials whose leaf lies under the subtree.
    pub members: u64,
}

impl NodeStats {
    /// Monomials merged away when the subtree collapses to one
    /// meta-variable relative to keeping all its leaves — the node's
    /// error-mass contribution (merged monomials are where compression
    /// loss can appear).
    pub fn merged(&self) -> u64 {
        self.members - self.weight
    }
}

/// Per-node DP table of the tree knapsack: `cost[k-1]` = minimal Σw for a
/// cut of this subtree with exactly `k` nodes (`INF` if unattainable),
/// plus backpointers for reconstruction.
struct NodeTable {
    cost: Vec<u64>,
    /// For each feasible `k`: `None` = cut at this node (only for k=1);
    /// `Some(splits)` = per-child cardinalities.
    choice: Vec<Option<Vec<usize>>>,
}

/// The shared planning state for one `(tree, analysis)` pair: memoized
/// per-node [`NodeStats`] plus the lazily built knapsack tables. Build it
/// once, hand it to any number of [`CutPlanner`] calls.
pub struct PlanContext<'a> {
    tree: &'a AbstractionTree,
    analysis: &'a GroupAnalysis,
    stats: Vec<NodeStats>,
    tables: OnceCell<Vec<Arc<NodeTable>>>,
}

/// An owned snapshot of a [`PlanContext`]'s derived state — the per-node
/// statistics plus the (Arc-shared) knapsack tables — detached from the
/// context's borrows so a session can keep it across delta updates.
/// [`PlanContext::new_incremental`] rebuilds tables only for subtrees
/// whose group weight actually changed, reusing every clean subtree's
/// table by pointer.
#[derive(Clone)]
pub struct PlanSnapshot {
    stats: Vec<NodeStats>,
    tables: Vec<Arc<NodeTable>>,
}

impl<'a> PlanContext<'a> {
    /// Derives the shared statistics (one `O(members + nodes)` pass).
    pub fn new(tree: &'a AbstractionTree, analysis: &'a GroupAnalysis) -> PlanContext<'a> {
        assert_eq!(
            analysis.node_weight.len(),
            tree.num_nodes(),
            "analysis must come from this tree"
        );
        // members per leaf position, then accumulate up in post order
        let mut leaf_members = vec![0u64; tree.num_leaves()];
        for group in &analysis.groups {
            for &pos in &group.leaf_positions {
                leaf_members[pos as usize] += 1;
            }
        }
        let mut stats: Vec<NodeStats> = tree
            .node_ids()
            .map(|id| NodeStats {
                weight: analysis.node_weight[id.index()],
                leaves: tree.leaf_range(id).len() as u32,
                child_weight_sum: 0,
                saving: 0,
                members: 0,
            })
            .collect();
        for node in tree.post_order() {
            let i = node.index();
            if tree.is_leaf(node) {
                stats[i].members = leaf_members[tree.leaf_range(node).start];
            } else {
                let (mut cws, mut members) = (0u64, 0u64);
                for &child in tree.children(node) {
                    cws += stats[child.index()].weight;
                    members += stats[child.index()].members;
                }
                stats[i].child_weight_sum = cws;
                stats[i].saving = cws - stats[i].weight;
                stats[i].members = members;
            }
        }
        PlanContext {
            tree,
            analysis,
            stats,
            tables: OnceCell::new(),
        }
    }

    /// The abstraction tree being planned over.
    pub fn tree(&self) -> &'a AbstractionTree {
        self.tree
    }

    /// The underlying group analysis.
    pub fn analysis(&self) -> &'a GroupAnalysis {
        self.analysis
    }

    /// The memoized per-node statistics (indexed by [`NodeId`]).
    pub fn stats(&self) -> &[NodeStats] {
        &self.stats
    }

    /// The statistics of one node.
    pub fn stat(&self, node: NodeId) -> &NodeStats {
        &self.stats[node.index()]
    }

    /// Compressed size of an arbitrary cut, via the additive formula.
    pub fn cut_size(&self, nodes: &[NodeId]) -> u64 {
        self.analysis.compressed_size(nodes)
    }

    /// The memoized DP tables (built on first exact query, shared by
    /// every subsequent `plan`/`plan_frontier`/cardinality call).
    fn tables(&self) -> &[Arc<NodeTable>] {
        self.tables.get_or_init(|| build_tables(self.tree, &self.stats))
    }

    /// Captures the derived statistics and DP tables (forcing the table
    /// build if it has not happened yet) for later reuse by
    /// [`new_incremental`](Self::new_incremental). Tables are Arc-shared,
    /// so a snapshot costs `O(nodes)` pointer clones.
    pub fn snapshot(&self) -> PlanSnapshot {
        PlanSnapshot {
            stats: self.stats.clone(),
            tables: self.tables().to_vec(),
        }
    }

    /// Builds a context for `(tree, analysis)` reusing a previous
    /// snapshot's knapsack tables wherever they are still valid. A node's
    /// table depends only on the **weights** inside its subtree
    /// (the table builder reads nothing else from the statistics), so
    /// after a delta the tables along unaffected root-to-leaf paths are
    /// reused by pointer and only the dirty paths re-run the knapsack
    /// convolution. Falls back to plain [`new`](Self::new) semantics
    /// (everything lazily rebuilt) if the snapshot came from a different
    /// tree shape.
    pub fn new_incremental(
        tree: &'a AbstractionTree,
        analysis: &'a GroupAnalysis,
        prev: &PlanSnapshot,
    ) -> PlanContext<'a> {
        let ctx = PlanContext::new(tree, analysis);
        if prev.stats.len() != ctx.stats.len() {
            return ctx;
        }
        let mut tables: Vec<Option<Arc<NodeTable>>> =
            (0..tree.num_nodes()).map(|_| None).collect();
        let mut dirty = vec![false; tree.num_nodes()];
        for node in tree.post_order() {
            let i = node.index();
            dirty[i] = ctx.stats[i].weight != prev.stats[i].weight
                || tree.children(node).iter().any(|c| dirty[c.index()]);
            tables[i] = Some(if dirty[i] {
                Arc::new(build_node_table(
                    tree,
                    node,
                    ctx.stats[i].weight,
                    &tables,
                ))
            } else {
                Arc::clone(&prev.tables[i])
            });
        }
        let tables: Vec<Arc<NodeTable>> =
            tables.into_iter().map(|t| t.expect("all filled")).collect();
        let _ = ctx.tables.set(tables);
        ctx
    }
}

/// A planned compression for one bound: the chosen cut with its
/// expressiveness (`variables = |cut|`) and compressed size.
#[derive(Clone, Debug)]
pub struct PlannedCut {
    /// The chosen cut.
    pub cut: Cut,
    /// `|cut|` — the expressiveness achieved on this tree.
    pub variables: usize,
    /// Compressed provenance size under the cut (monomials, incl. base).
    pub size: u64,
}

/// A point of the expressiveness/size trade-off curve (sizes only; the
/// [`CutFrontier`] carries the witness cuts).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParetoPoint {
    /// Cut cardinality (number of meta-variables for this tree).
    pub variables: usize,
    /// Total compressed provenance size (monomials, including base).
    pub size: u64,
}

/// One point of a [`CutFrontier`]: an attainable expressiveness with the
/// minimal size the planner found for it, and a witness cut achieving it.
#[derive(Clone, Debug)]
pub struct FrontierPoint {
    /// Cut cardinality.
    pub variables: usize,
    /// Compressed provenance size (monomials, including base).
    pub size: u64,
    /// A cut achieving `(variables, size)`.
    pub cut: Cut,
}

/// The full expressiveness/size Pareto curve of one planning pass:
/// points in strictly increasing `variables` **and** strictly increasing
/// `size`, each carrying its witness cut. Any later bound resolves
/// against the frontier in `O(log n)` ([`select`](CutFrontier::select))
/// — no re-planning.
///
/// Dominated candidates are dropped at construction: with free (weight-0)
/// leaves a *more* expressive cut can be no larger than a less expressive
/// one, and since planning always prefers more variables at equal size,
/// such dominated points can never be selected by any bound. (The raw
/// per-cardinality curve, dominated points included, remains available
/// through [`ExactDp::frontier_sizes`].)
#[derive(Clone, Debug)]
pub struct CutFrontier {
    points: Vec<FrontierPoint>,
}

impl CutFrontier {
    /// Builds the frontier from candidates in ascending `variables`
    /// order, dropping dominated points: a later (more expressive) point
    /// with `size ≤` an earlier one makes the earlier point unselectable
    /// for every bound under the max-variables / min-size objective.
    pub(crate) fn from_points(mut raw: Vec<FrontierPoint>) -> CutFrontier {
        debug_assert!(!raw.is_empty(), "a frontier has at least the root cut");
        debug_assert!(raw.windows(2).all(|w| w[0].variables < w[1].variables));
        let mut points: Vec<FrontierPoint> = Vec::with_capacity(raw.len());
        for point in raw.drain(..) {
            while points.last().is_some_and(|last| last.size >= point.size) {
                points.pop();
            }
            points.push(point);
        }
        debug_assert!(points
            .windows(2)
            .all(|w| w[0].variables < w[1].variables && w[0].size < w[1].size));
        CutFrontier { points }
    }

    /// Number of frontier points (attainable cut cardinalities).
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True iff the frontier has no points (never, for a valid plan).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The points in ascending `variables` order.
    pub fn points(&self) -> &[FrontierPoint] {
        &self.points
    }

    /// The sizes-only view of the curve (the paper's E5 table).
    pub fn pareto_points(&self) -> Vec<ParetoPoint> {
        self.points
            .iter()
            .map(|p| ParetoPoint {
                variables: p.variables,
                size: p.size,
            })
            .collect()
    }

    /// The most expressive point whose size fits `bound` — the same
    /// maximal-cardinality/minimal-size selection `plan` makes, as a
    /// binary search over the monotone curve. `None` if even the coarsest
    /// point exceeds the bound.
    pub fn select(&self, bound: u64) -> Option<&FrontierPoint> {
        self.select_index(bound).map(|i| &self.points[i])
    }

    /// [`select`](Self::select), returning the point's index.
    pub fn select_index(&self, bound: u64) -> Option<usize> {
        let feasible = self.points.partition_point(|p| p.size <= bound);
        feasible.checked_sub(1)
    }

    /// The smallest size on the curve — the minimum achievable compressed
    /// size (reported when a bound is infeasible).
    pub fn min_size(&self) -> u64 {
        self.points.first().map_or(0, |p| p.size)
    }
}

/// The planning interface every optimizer implements: answer one bound
/// ([`plan`](Self::plan)) or produce the whole trade-off curve in one
/// pass ([`plan_frontier`](Self::plan_frontier)).
pub trait CutPlanner {
    /// A short human-readable planner name (reports, benches).
    fn name(&self) -> &'static str;

    /// The full Pareto frontier of this planner's attainable cuts.
    ///
    /// # Errors
    /// Planner-specific (e.g. [`CoreError::TooManyCuts`] for the
    /// exhaustive planner); the exact DP cannot fail.
    fn plan_frontier(&self, ctx: &PlanContext<'_>) -> Result<CutFrontier>;

    /// The maximal-cardinality cut whose compressed size fits `bound`
    /// (ties broken by smaller size). The default selects from
    /// [`plan_frontier`](Self::plan_frontier); planners override it when
    /// a single bound can be answered more cheaply.
    ///
    /// # Errors
    /// [`CoreError::InfeasibleBound`] if no attainable cut fits.
    fn plan(&self, ctx: &PlanContext<'_>, bound: u64) -> Result<PlannedCut> {
        let frontier = self.plan_frontier(ctx)?;
        match frontier.select(bound) {
            Some(point) => Ok(PlannedCut {
                cut: point.cut.clone(),
                variables: point.variables,
                size: point.size,
            }),
            None => Err(CoreError::InfeasibleBound {
                min_achievable: frontier.min_size(),
            }),
        }
    }
}

/// The exact PTIME planner: bottom-up tree-knapsack dynamic programming
/// (paper §2). Optimal for every bound; `plan_frontier` reads the entire
/// curve out of one table build, with cut reconstruction fanned across
/// workers.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExactDp;

impl ExactDp {
    /// The minimal-size cut for an exact cardinality `k`, if attainable —
    /// used by the ablation experiments to pin expressiveness while
    /// varying cost.
    pub fn plan_cardinality(&self, ctx: &PlanContext<'_>, k: usize) -> Option<PlannedCut> {
        let tables = ctx.tables();
        let root = &tables[ctx.tree.root().index()];
        if k == 0 || k > root.cost.len() || root.cost[k - 1] == INF {
            return None;
        }
        let cut = reconstruct_cut(ctx.tree, tables, k);
        Some(PlannedCut {
            variables: k,
            size: ctx.analysis.base_monomials + root.cost[k - 1],
            cut,
        })
    }

    /// The raw per-cardinality curve (no cut reconstruction, dominated
    /// points included): for every attainable `k`, the minimal size —
    /// cheaper than [`plan_frontier`](CutPlanner::plan_frontier) when
    /// only the shape of the trade-off is needed, and the historical
    /// content of [`crate::dp::pareto_frontier`].
    pub fn frontier_sizes(&self, ctx: &PlanContext<'_>) -> Vec<ParetoPoint> {
        let tables = ctx.tables();
        let root = &tables[ctx.tree.root().index()];
        (1..=root.cost.len())
            .filter(|&k| root.cost[k - 1] != INF)
            .map(|k| ParetoPoint {
                variables: k,
                size: ctx.analysis.base_monomials + root.cost[k - 1],
            })
            .collect()
    }
}

impl CutPlanner for ExactDp {
    fn name(&self) -> &'static str {
        "exact-dp"
    }

    fn plan(&self, ctx: &PlanContext<'_>, bound: u64) -> Result<PlannedCut> {
        let tables = ctx.tables();
        let root = &tables[ctx.tree.root().index()];
        let budget = bound.saturating_sub(ctx.analysis.base_monomials);
        if ctx.analysis.base_monomials > bound || root.cost[0] > budget {
            return Err(CoreError::InfeasibleBound {
                min_achievable: ctx.analysis.base_monomials + root.cost[0],
            });
        }
        let mut best_k = 1usize;
        for k in 1..=root.cost.len() {
            let c = root.cost[k - 1];
            if c != INF && c <= budget {
                best_k = k; // larger k always preferred; cost for fixed k is minimal
            }
        }
        let cut = reconstruct_cut(ctx.tree, tables, best_k);
        let size = ctx.analysis.base_monomials + root.cost[best_k - 1];
        debug_assert_eq!(size, ctx.cut_size(cut.nodes()));
        Ok(PlannedCut {
            variables: best_k,
            size,
            cut,
        })
    }

    fn plan_frontier(&self, ctx: &PlanContext<'_>) -> Result<CutFrontier> {
        let tables = ctx.tables();
        let root = &tables[ctx.tree.root().index()];
        let base = ctx.analysis.base_monomials;
        // Dominance-filter on the raw (k, size) pairs first, so witness
        // cuts are only reconstructed for selectable points.
        let mut kept: Vec<(usize, u64)> = Vec::new();
        for k in 1..=root.cost.len() {
            if root.cost[k - 1] == INF {
                continue;
            }
            let size = base + root.cost[k - 1];
            while kept.last().is_some_and(|&(_, s)| s >= size) {
                kept.pop();
            }
            kept.push((k, size));
        }
        // Reconstruction of the witness cuts is independent per point:
        // fan it across workers (ordered by construction). Only the
        // resolved tables and the tree cross the thread boundary — the
        // context itself holds a OnceCell and stays on this thread.
        let tree = ctx.tree;
        let points = par::par_map(&kept, |_, &(k, size)| FrontierPoint {
            variables: k,
            size,
            cut: reconstruct_cut(tree, tables, k),
        });
        Ok(CutFrontier::from_points(points))
    }
}

/// The greedy agglomerative planner — the natural baseline against the
/// exact DP (ablation A1). Starts from the identity (leaf) cut and
/// repeatedly coarsens the sibling group with the best size reduction per
/// variable lost; `plan_frontier` records the whole coarsening trajectory
/// down to the root. Feasible but can be strictly suboptimal (a witnessed
/// gap lives in `tests/greedy_vs_dp.rs`).
#[derive(Clone, Copy, Debug, Default)]
pub struct Greedy;

/// One greedy coarsening state: `in_cut` flags plus the current size.
struct GreedyState {
    in_cut: Vec<bool>,
    size: u64,
    variables: usize,
}

impl GreedyState {
    fn leaf_cut(ctx: &PlanContext<'_>) -> GreedyState {
        let tree = ctx.tree();
        let mut in_cut = vec![false; tree.num_nodes()];
        let mut cost = 0u64;
        let mut variables = 0usize;
        for id in tree.node_ids() {
            if tree.is_leaf(id) {
                in_cut[id.index()] = true;
                cost += ctx.stat(id).weight;
                variables += 1;
            }
        }
        GreedyState {
            in_cut,
            size: ctx.analysis().base_monomials + cost,
            variables,
        }
    }

    /// Applies the best coarsening move (shared statistics: the saving is
    /// `ctx.stat(node).saving`, valid because candidates have all children
    /// in the cut). Returns `false` when the cut is already `{root}`.
    fn coarsen(&mut self, ctx: &PlanContext<'_>) -> bool {
        let tree = ctx.tree();
        let mut best: Option<(NodeId, u64, usize, f64)> = None; // (node, Δsize, Δvars, ratio)
        for id in tree.node_ids() {
            if tree.is_leaf(id) || self.in_cut[id.index()] {
                continue;
            }
            let children = tree.children(id);
            if !children.iter().all(|c| self.in_cut[c.index()]) {
                continue;
            }
            let saved = ctx.stat(id).saving; // ≥ 0 by subadditivity
            let lost = children.len() - 1;
            // unary chains lose no variables: always worth collapsing
            let ratio = if lost == 0 {
                f64::INFINITY
            } else {
                saved as f64 / lost as f64
            };
            let better = match best {
                None => true,
                Some((_, best_saved, _, best_ratio)) => {
                    ratio > best_ratio || (ratio == best_ratio && saved > best_saved)
                }
            };
            if better {
                best = Some((id, saved, lost, ratio));
            }
        }
        let Some((node, saved, lost, _)) = best else {
            return false;
        };
        for &c in tree.children(node) {
            self.in_cut[c.index()] = false;
        }
        self.in_cut[node.index()] = true;
        self.size -= saved;
        self.variables -= lost;
        true
    }

    fn cut(&self, ctx: &PlanContext<'_>) -> Cut {
        let nodes: Vec<NodeId> = ctx
            .tree()
            .node_ids()
            .filter(|&id| self.in_cut[id.index()])
            .collect();
        Cut::new(ctx.tree(), nodes).expect("coarsening preserves cut validity")
    }
}

impl CutPlanner for Greedy {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn plan(&self, ctx: &PlanContext<'_>, bound: u64) -> Result<PlannedCut> {
        let mut state = GreedyState::leaf_cut(ctx);
        while state.size > bound {
            if !state.coarsen(ctx) {
                // cut is already {root}
                return Err(CoreError::InfeasibleBound {
                    min_achievable: state.size,
                });
            }
        }
        let cut = state.cut(ctx);
        debug_assert_eq!(cut.len(), state.variables);
        Ok(PlannedCut {
            variables: state.variables,
            size: state.size,
            cut,
        })
    }

    fn plan_frontier(&self, ctx: &PlanContext<'_>) -> Result<CutFrontier> {
        // Record the whole coarsening trajectory; keep the best (= last,
        // smallest-size) state per cardinality, then reverse into
        // ascending-variables order.
        let mut state = GreedyState::leaf_cut(ctx);
        let mut trajectory: Vec<FrontierPoint> = vec![FrontierPoint {
            variables: state.variables,
            size: state.size,
            cut: state.cut(ctx),
        }];
        while state.coarsen(ctx) {
            let point = FrontierPoint {
                variables: state.variables,
                size: state.size,
                cut: state.cut(ctx),
            };
            match trajectory.last_mut() {
                Some(last) if last.variables == point.variables => *last = point,
                _ => trajectory.push(point),
            }
        }
        trajectory.reverse();
        Ok(CutFrontier::from_points(trajectory))
    }
}

/// The exhaustive planner: enumerates every cut (bounded by `limit`) and
/// scores candidates **in parallel** over the shared statistics — the
/// production sibling of the application-measured oracle in
/// [`crate::brute`] (which stays independent precisely so tests can pin
/// this planner against it).
#[derive(Clone, Copy, Debug)]
pub struct BruteForce {
    /// Maximum number of cuts to enumerate before giving up with
    /// [`CoreError::TooManyCuts`].
    pub limit: usize,
}

impl BruteForce {
    /// A planner enumerating at most `limit` cuts.
    pub fn new(limit: usize) -> BruteForce {
        BruteForce { limit }
    }
}

impl Default for BruteForce {
    fn default() -> Self {
        BruteForce::new(100_000)
    }
}

impl CutPlanner for BruteForce {
    fn name(&self) -> &'static str {
        "brute-force"
    }

    fn plan_frontier(&self, ctx: &PlanContext<'_>) -> Result<CutFrontier> {
        let cuts = enumerate_cuts(ctx.tree, self.limit)?;
        let max_k = ctx.tree.num_leaves();
        // Candidate scoring fanned across workers: each span reduces to a
        // per-cardinality (size, cut index) minimum; partials merge in
        // ascending span order, ties prefer the lower cut index, so the
        // result is independent of the thread count. (The analysis — not
        // the OnceCell-carrying context — crosses the thread boundary.)
        let analysis = ctx.analysis;
        let best_per_k = par::par_map_reduce(
            cuts.len(),
            64,
            |range| {
                let mut best: Vec<Option<(u64, usize)>> = vec![None; max_k + 1];
                for i in range {
                    let cut = &cuts[i];
                    let size = analysis.compressed_size(cut.nodes());
                    let slot = &mut best[cut.len()];
                    if slot.is_none_or(|(s, _)| size < s) {
                        *slot = Some((size, i));
                    }
                }
                best
            },
            |mut a, b| {
                for (sa, sb) in a.iter_mut().zip(b) {
                    if let Some((size_b, idx_b)) = sb {
                        if sa.is_none_or(|(size_a, _)| size_b < size_a) {
                            *sa = Some((size_b, idx_b));
                        }
                    }
                }
                a
            },
        )
        .expect("enumerate_cuts yields at least the root cut");
        let points: Vec<FrontierPoint> = best_per_k
            .into_iter()
            .enumerate()
            .filter_map(|(k, slot)| {
                slot.map(|(size, idx)| FrontierPoint {
                    variables: k,
                    size,
                    cut: cuts[idx].clone(),
                })
            })
            .collect();
        Ok(CutFrontier::from_points(points))
    }
}

/// The **algebraic** optimizer interface — the DAG sibling of
/// [`CutPlanner`]. Cut planners shrink the provenance itself by merging
/// variables; a `DagOptimizer` leaves the polynomials untouched and
/// instead factors their *evaluation* into a shared-subterm DAG program
/// ([`cobra_provenance::dag`]), cutting the multiplies each scenario
/// costs. The two axes compose:
/// [`CobraSession::compile_dag_with`](crate::CobraSession::compile_dag_with)
/// rewrites whatever programs the current cut selection evaluates.
pub trait DagOptimizer {
    /// A short human-readable optimizer name (reports, benches).
    fn name(&self) -> &'static str;

    /// The rewrite configuration handed to
    /// [`cobra_provenance::dag::rewrite`].
    fn options(&self) -> DagOptions;
}

/// The full three-pass algebraic pipeline — power-product CSE, shared-pair
/// mining and Horner restructuring at the default bounds
/// ([`DagOptions::default`]). The optimizer behind
/// [`CobraSession::compile_dag`](crate::CobraSession::compile_dag).
#[derive(Clone, Copy, Debug, Default)]
pub struct AlgebraicDag;

impl DagOptimizer for AlgebraicDag {
    fn name(&self) -> &'static str {
        "algebraic-dag"
    }

    fn options(&self) -> DagOptions {
        DagOptions::default()
    }
}

/// Power-product CSE alone (pair mining and Horner disabled) — the
/// ablation baseline isolating what plain hash-consing of complete power
/// products buys ([`DagOptions::cse_only`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct ProductCse;

impl DagOptimizer for ProductCse {
    fn name(&self) -> &'static str {
        "product-cse"
    }

    fn options(&self) -> DagOptions {
        DagOptions::cse_only()
    }
}

/// Builds one node's knapsack table from its children's (already filled)
/// tables — the shared body of the full bottom-up build and the
/// dirty-path rebuild in [`PlanContext::new_incremental`]. Depends only
/// on the node's own weight `w` and the children's tables.
fn build_node_table(
    tree: &AbstractionTree,
    node: NodeId,
    w: u64,
    tables: &[Option<Arc<NodeTable>>],
) -> NodeTable {
    if tree.is_leaf(node) {
        return NodeTable {
            cost: vec![w],
            choice: vec![None],
        };
    }
    // Knapsack convolution over children: `acc_cost[k]` is the
    // minimal Σw over cuts of the already-folded children using
    // exactly `k` nodes; `acc_split[k]` records each child's share.
    let mut acc_cost: Vec<u64> = vec![0];
    let mut acc_split: Vec<Vec<usize>> = vec![Vec::new()];
    for &child in tree.children(node) {
        let ct = tables[child.index()]
            .as_deref()
            .expect("post-order fills children first");
        let new_len = acc_cost.len() + ct.cost.len();
        let mut new_cost = vec![INF; new_len];
        let mut new_split: Vec<Vec<usize>> = vec![Vec::new(); new_len];
        for (i, &ca) in acc_cost.iter().enumerate() {
            if ca == INF {
                continue;
            }
            for (j, &cb) in ct.cost.iter().enumerate() {
                if cb == INF {
                    continue;
                }
                let k = i + j + 1; // this child contributes j+1 nodes
                let total = ca + cb;
                if total < new_cost[k] {
                    new_cost[k] = total;
                    let mut s = acc_split[i].clone();
                    s.push(j + 1);
                    new_split[k] = s;
                }
            }
        }
        acc_cost = new_cost;
        acc_split = new_split;
    }
    // Shift to 1-based cardinalities; k ranges up to #leaves(node).
    let max_k = acc_cost.len() - 1;
    let mut cost = vec![INF; max_k];
    let mut choice: Vec<Option<Vec<usize>>> = vec![None; max_k];
    for k in 1..=max_k {
        if acc_cost[k] != INF {
            cost[k - 1] = acc_cost[k];
            choice[k - 1] = Some(std::mem::take(&mut acc_split[k]));
        }
    }
    // Option: cut at this node itself (k = 1).
    if w < cost[0] {
        cost[0] = w;
        choice[0] = None;
    }
    NodeTable { cost, choice }
}

fn build_tables(tree: &AbstractionTree, stats: &[NodeStats]) -> Vec<Arc<NodeTable>> {
    let mut tables: Vec<Option<Arc<NodeTable>>> = (0..tree.num_nodes()).map(|_| None).collect();
    for node in tree.post_order() {
        let table = build_node_table(tree, node, stats[node.index()].weight, &tables);
        tables[node.index()] = Some(Arc::new(table));
    }
    tables.into_iter().map(|t| t.expect("all filled")).collect()
}

/// Recovers the minimal cut of cardinality `k` through the backpointers.
fn reconstruct_cut(tree: &AbstractionTree, tables: &[Arc<NodeTable>], k: usize) -> Cut {
    let mut nodes = Vec::with_capacity(k);
    reconstruct(tree, tables, tree.root(), k, &mut nodes);
    Cut::new(tree, nodes).expect("DP reconstruction yields a valid cut")
}

fn reconstruct(
    tree: &AbstractionTree,
    tables: &[Arc<NodeTable>],
    node: NodeId,
    k: usize,
    out: &mut Vec<NodeId>,
) {
    match &tables[node.index()].choice[k - 1] {
        None => out.push(node),
        Some(splits) => {
            debug_assert_eq!(splits.len(), tree.children(node).len());
            for (&child, &ck) in tree.children(node).iter().zip(splits) {
                reconstruct(tree, tables, child, ck, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::paper_plans_tree;
    use cobra_provenance::{parse_polyset, PolySet, VarRegistry};
    use cobra_util::Rat;

    fn paper_setup() -> (VarRegistry, AbstractionTree, GroupAnalysis) {
        let mut reg = VarRegistry::new();
        let tree = paper_plans_tree(&mut reg);
        let src = "\
P1 = 208.8*p1*m1 + 240*p1*m3 + 127.4*f1*m1 + 114.45*f1*m3 \
   + 75.9*y1*m1 + 72.5*y1*m3 + 42*v*m1 + 24.2*v*m3
P2 = 77.9*b1*m1 + 80.5*b1*m3 + 52.2*e*m1 + 56.5*e*m3 + 69.7*b2*m1 + 100.65*b2*m3";
        let set: PolySet<Rat> = parse_polyset(src, &mut reg).unwrap();
        let analysis = GroupAnalysis::analyze(&set, &tree).unwrap();
        (reg, tree, analysis)
    }

    #[test]
    fn node_stats_are_consistent() {
        let (_, tree, analysis) = paper_setup();
        let ctx = PlanContext::new(&tree, &analysis);
        let root = ctx.stat(tree.root());
        assert_eq!(root.leaves, 11);
        assert_eq!(root.weight, 4); // every group touches the root
        assert_eq!(root.members, 14); // all monomials carry a tree leaf
        assert_eq!(root.merged(), 10);
        for id in tree.node_ids() {
            let s = ctx.stat(id);
            if tree.is_leaf(id) {
                assert_eq!(s.saving, 0);
                assert_eq!(s.child_weight_sum, 0);
                assert_eq!(s.members, s.weight, "a leaf's members are its groups");
            } else {
                assert_eq!(s.saving, s.child_weight_sum - s.weight);
                assert_eq!(
                    s.leaves as usize,
                    tree.children(id)
                        .iter()
                        .map(|&c| ctx.stat(c).leaves as usize)
                        .sum::<usize>()
                );
            }
            assert!(s.members >= s.weight, "each group has ≥1 member per subtree");
        }
    }

    #[test]
    fn dp_frontier_points_carry_valid_witness_cuts() {
        let (_, tree, analysis) = paper_setup();
        let ctx = PlanContext::new(&tree, &analysis);
        let frontier = ExactDp.plan_frontier(&ctx).unwrap();
        let raw = ExactDp.frontier_sizes(&ctx);
        assert!(frontier.len() <= raw.len());
        for point in frontier.points() {
            assert_eq!(point.cut.len(), point.variables);
            assert_eq!(ctx.cut_size(point.cut.nodes()), point.size);
            // every frontier point is a point of the raw curve
            assert!(raw
                .iter()
                .any(|r| r.variables == point.variables && r.size == point.size));
        }
        // frontier selection == direct planning for every bound
        for bound in 0..=16u64 {
            match (ExactDp.plan(&ctx, bound), frontier.select(bound)) {
                (Ok(plan), Some(point)) => {
                    assert_eq!(plan.variables, point.variables, "bound {bound}");
                    assert_eq!(plan.size, point.size, "bound {bound}");
                    assert_eq!(plan.cut, point.cut, "bound {bound}");
                }
                (Err(CoreError::InfeasibleBound { min_achievable }), None) => {
                    assert_eq!(min_achievable, frontier.min_size());
                }
                (plan, point) => panic!("bound {bound}: {plan:?} vs {point:?}"),
            }
        }
    }

    #[test]
    fn incremental_context_reuses_clean_subtree_tables() {
        use cobra_provenance::{parse_polyset, Monomial, PolyDelta};
        let mut reg = VarRegistry::new();
        let tree = paper_plans_tree(&mut reg);
        let src = "\
P1 = 208.8*p1*m1 + 240*p1*m3 + 127.4*f1*m1 + 114.45*f1*m3 \
   + 75.9*y1*m1 + 72.5*y1*m3 + 42*v*m1 + 24.2*v*m3
P2 = 77.9*b1*m1 + 80.5*b1*m3 + 52.2*e*m1 + 56.5*e*m3 + 69.7*b2*m1 + 100.65*b2*m3";
        let mut set: PolySet<Rat> = parse_polyset(src, &mut reg).unwrap();
        let analysis = GroupAnalysis::analyze(&set, &tree).unwrap();
        let ctx = PlanContext::new(&tree, &analysis);
        ExactDp.plan_frontier(&ctx).unwrap(); // force the tables
        let snap = ctx.snapshot();

        // A delta confined to P2 under Business: a new group touching b1.
        let b1 = reg.lookup("b1").unwrap();
        let m9 = reg.var("m9");
        let mut delta = PolyDelta::new();
        delta.add(1, Monomial::from_pairs([(b1, 1), (m9, 1)]), Rat::parse("3").unwrap());
        let report = set.apply_delta(&delta).unwrap();
        let analysis2 = analysis
            .reanalyze_polys(&set, &tree, &report.touched())
            .unwrap();

        let inc = PlanContext::new_incremental(&tree, &analysis2, &snap);
        let fresh = PlanContext::new(&tree, &analysis2);
        let f_inc = ExactDp.plan_frontier(&inc).unwrap();
        let f_fresh = ExactDp.plan_frontier(&fresh).unwrap();
        assert_eq!(f_inc.len(), f_fresh.len());
        for (a, b) in f_inc.points().iter().zip(f_fresh.points()) {
            assert_eq!((a.variables, a.size, &a.cut), (b.variables, b.size, &b.cut));
        }

        // Weight changed only along b1 → SB → Business → root: the
        // Standard and Special subtrees reuse their snapshot tables by
        // pointer, the dirty path is rebuilt.
        let tables = inc.tables();
        for (name, reused) in [
            ("Standard", true),
            ("Special", true),
            ("Business", false),
            ("SB", false),
        ] {
            let node = tree.node_by_name(name).unwrap();
            assert_eq!(
                Arc::ptr_eq(&tables[node.index()], &snap.tables[node.index()]),
                reused,
                "table reuse for {name}"
            );
        }
        let root = tree.root().index();
        assert!(!Arc::ptr_eq(&tables[root], &snap.tables[root]));
    }

    #[test]
    fn frontier_is_identical_at_any_thread_count() {
        let (_, tree, analysis) = paper_setup();
        let ctx = PlanContext::new(&tree, &analysis);
        let reference = ExactDp.plan_frontier(&ctx).unwrap();
        let brute_ref = BruteForce::default().plan_frontier(&ctx).unwrap();
        for threads in [1usize, 2, 8] {
            let (dp_t, brute_t) = par::with_threads(threads, || {
                (
                    ExactDp.plan_frontier(&ctx).unwrap(),
                    BruteForce::default().plan_frontier(&ctx).unwrap(),
                )
            });
            for (a, b) in reference.points().iter().zip(dp_t.points()) {
                assert_eq!((a.variables, a.size, &a.cut), (b.variables, b.size, &b.cut));
            }
            for (a, b) in brute_ref.points().iter().zip(brute_t.points()) {
                assert_eq!((a.variables, a.size, &a.cut), (b.variables, b.size, &b.cut));
            }
        }
    }

    #[test]
    fn brute_force_frontier_matches_dp_sizes() {
        let (_, tree, analysis) = paper_setup();
        let ctx = PlanContext::new(&tree, &analysis);
        let dp = ExactDp.plan_frontier(&ctx).unwrap();
        let brute = BruteForce::default().plan_frontier(&ctx).unwrap();
        assert_eq!(dp.len(), brute.len());
        for (a, b) in dp.points().iter().zip(brute.points()) {
            assert_eq!(a.variables, b.variables);
            assert_eq!(a.size, b.size);
        }
    }

    #[test]
    fn brute_force_respects_limit() {
        let (_, tree, analysis) = paper_setup();
        let ctx = PlanContext::new(&tree, &analysis);
        assert!(matches!(
            BruteForce::new(10).plan_frontier(&ctx),
            Err(CoreError::TooManyCuts { limit: 10 })
        ));
    }

    #[test]
    fn greedy_frontier_is_monotone_and_never_beats_dp() {
        let (_, tree, analysis) = paper_setup();
        let ctx = PlanContext::new(&tree, &analysis);
        let dp = ExactDp.plan_frontier(&ctx).unwrap();
        let greedy = Greedy.plan_frontier(&ctx).unwrap();
        for point in greedy.points() {
            assert_eq!(point.cut.len(), point.variables);
            assert_eq!(ctx.cut_size(point.cut.nodes()), point.size);
            // the DP's minimal size for this cardinality is a lower bound
            if let Some(exact) = dp.points().iter().find(|p| p.variables == point.variables) {
                assert!(exact.size <= point.size);
            }
        }
        // greedy plan == greedy frontier selection on this input
        for bound in 4..=14u64 {
            let plan = Greedy.plan(&ctx, bound).unwrap();
            let point = greedy.select(bound).unwrap();
            assert_eq!(plan.variables, point.variables, "bound {bound}");
            assert_eq!(plan.size, point.size, "bound {bound}");
        }
    }

    #[test]
    fn planner_names() {
        assert_eq!(ExactDp.name(), "exact-dp");
        assert_eq!(Greedy.name(), "greedy");
        assert_eq!(BruteForce::default().name(), "brute-force");
    }

    #[test]
    fn dag_optimizers_resolve_to_their_rewrite_options() {
        assert_eq!(AlgebraicDag.name(), "algebraic-dag");
        assert_eq!(ProductCse.name(), "product-cse");
        let full = AlgebraicDag.options();
        assert!(full.product_cse && full.pair_mining && full.horner);
        let cse = ProductCse.options();
        assert!(cse.product_cse && !cse.pair_mining && !cse.horner);
    }
}
