//! Applying an abstraction: compressing the provenance.
//!
//! "For every node in the chosen cut, all of its descendant leaves are
//! replaced by a single metavariable … distinct monomials may become
//! identical, in which case they are compactly represented by a single
//! monomial (by summing their coefficients)" (paper §1).

use crate::cut::{Cut, MetaVar};
use crate::groups::GroupAnalysis;
use crate::tree::AbstractionTree;
use cobra_provenance::{Coeff, Monomial, PolySet, Polynomial, Var, VarRegistry};
use cobra_util::{FxHashMap, FxHashSet};

/// The result of applying one cut to a polynomial set.
#[derive(Clone, Debug)]
pub struct AppliedAbstraction<C: Coeff> {
    /// The compressed polynomials (same labels, merged monomials).
    pub compressed: PolySet<C>,
    /// Leaf → meta-variable substitution (identity entries omitted).
    pub substitution: FxHashMap<Var, Var>,
    /// The introduced meta-variables with their grouped leaves, in cut
    /// order — the content of the paper's Fig. 5 screen.
    pub meta_vars: Vec<MetaVar>,
    /// Monomial count before compression.
    pub original_size: usize,
    /// Monomial count after compression.
    pub compressed_size: usize,
}

impl<C: Coeff> AppliedAbstraction<C> {
    /// Size reduction ratio `compressed / original` (1.0 = no reduction).
    pub fn compression_ratio(&self) -> f64 {
        if self.original_size == 0 {
            1.0
        } else {
            self.compressed_size as f64 / self.original_size as f64
        }
    }

    /// Number of distinct variables in the compressed provenance — the
    /// paper's expressiveness measure over the *result* (meta-variables
    /// plus untouched variables that still occur).
    pub fn distinct_vars(&self) -> usize {
        self.compressed.distinct_vars().len()
    }
}

/// Applies `cut` to `set`: renames leaves to meta-variables and merges.
///
/// Meta-variable names are taken from the cut nodes, avoiding collisions
/// with any variable occurring in `set` or in the tree.
///
/// ```
/// use cobra_core::{apply_cut, Cut, tree::AbstractionTree};
/// use cobra_provenance::{parse_polyset, VarRegistry};
///
/// let mut reg = VarRegistry::new();
/// let tree = AbstractionTree::parse("T(a, b)", &mut reg).unwrap();
/// let set = parse_polyset("P = 2*a*x + 3*b*x", &mut reg).unwrap();
/// let out = apply_cut(&set, &tree, &Cut::root(&tree), &mut reg);
/// // a and b merge into T: 2·T·x + 3·T·x = 5·T·x
/// assert_eq!(out.compressed_size, 1);
/// assert_eq!(
///     out.compressed.display(&reg).to_string().trim(),
///     "P = 5*x*T"
/// );
/// ```
pub fn apply_cut<C: Coeff>(
    set: &PolySet<C>,
    tree: &AbstractionTree,
    cut: &Cut,
    reg: &mut VarRegistry,
) -> AppliedAbstraction<C> {
    let reserved = set.distinct_vars();
    let (substitution, meta_vars) = cut.substitution(tree, reg, &reserved);
    let compressed = set.rename_vars(|v| substitution.get(&v).copied().unwrap_or(v));
    AppliedAbstraction {
        original_size: set.total_monomials(),
        compressed_size: compressed.total_monomials(),
        compressed,
        substitution,
        meta_vars,
    }
}

/// Applies `cut` using the shared cut statistics of a [`GroupAnalysis`]
/// instead of re-walking the full polynomial set: each group contributes
/// exactly one output monomial `context · meta^exp` per cut node its
/// leaves fall under, with the member coefficients summed, and base
/// monomials pass through via their recorded term references. This is the
/// planner's fast application path — `O(group members + output)` with no
/// re-hash of the input — and produces a result **equal** to
/// [`apply_cut`] (property-pinned in `tests/planner.rs` and below).
///
/// `reserved` must be the set's distinct variables
/// ([`PolySet::distinct_vars`]); callers that apply many cuts of the same
/// session (the frontier re-selection path) compute it once.
pub fn apply_cut_with_groups<C: Coeff>(
    set: &PolySet<C>,
    tree: &AbstractionTree,
    analysis: &GroupAnalysis,
    cut: &Cut,
    reserved: &FxHashSet<Var>,
    reg: &mut VarRegistry,
) -> AppliedAbstraction<C> {
    let (substitution, meta_vars) = cut.substitution(tree, reg, reserved);
    let compressed = compress_polyset_with_groups(set, tree, analysis, cut, &meta_vars);
    AppliedAbstraction {
        original_size: set.total_monomials(),
        compressed_size: compressed.total_monomials(),
        compressed,
        substitution,
        meta_vars,
    }
}

/// The polynomial-construction half of [`apply_cut_with_groups`]: builds
/// the compressed set from the shared group statistics and an
/// already-computed meta-variable assignment (`meta_vars` must be the
/// output of [`Cut::substitution`] for `cut`, i.e. aligned with
/// `cut.nodes()`). Pure — needs no registry — which is what lets the
/// session defer it until something actually evaluates.
pub(crate) fn compress_polyset_with_groups<C: Coeff>(
    set: &PolySet<C>,
    tree: &AbstractionTree,
    analysis: &GroupAnalysis,
    cut: &Cut,
    meta_vars: &[MetaVar],
) -> PolySet<C> {
    debug_assert_eq!(meta_vars.len(), cut.nodes().len());
    // leaf position → index of the covering cut node (cut validity
    // guarantees exactly one).
    let mut cover = vec![u32::MAX; tree.num_leaves()];
    for (ci, &node) in cut.nodes().iter().enumerate() {
        for slot in &mut cover[tree.leaf_range(node)] {
            *slot = ci as u32;
        }
    }
    let polys: Vec<(&str, &Polynomial<C>)> = set.iter().collect();
    let mut out_terms: Vec<Vec<(Monomial, C)>> = vec![Vec::new(); polys.len()];
    for &(poly, term) in &analysis.base_terms {
        let (m, c) = &polys[poly as usize].1.terms()[term as usize];
        out_terms[poly as usize].push((m.clone(), c.clone()));
    }
    for group in &analysis.groups {
        let src = polys[group.poly as usize].1.terms();
        let out = &mut out_terms[group.poly as usize];
        // Cut nodes cover contiguous leaf ranges and the group's positions
        // are sorted, so members of the same cut node form runs.
        let mut i = 0;
        while i < group.leaf_positions.len() {
            let node_idx = cover[group.leaf_positions[i] as usize] as usize;
            let mut coeff = src[group.term_indices[i] as usize].1.clone();
            let mut j = i + 1;
            while j < group.leaf_positions.len()
                && cover[group.leaf_positions[j] as usize] as usize == node_idx
            {
                coeff = coeff.add(&src[group.term_indices[j] as usize].1);
                j += 1;
            }
            let meta = Monomial::from_pairs([(meta_vars[node_idx].var, group.exponent)]);
            out.push((group.context.mul(&meta), coeff));
            i = j;
        }
    }
    PolySet::from_entries(
        polys
            .iter()
            .zip(out_terms)
            .map(|(&(label, _), terms)| (label.to_owned(), Polynomial::from_terms(terms))),
    )
}

/// Applies several cuts (one per tree of a forest) in sequence.
pub fn apply_cuts<C: Coeff>(
    set: &PolySet<C>,
    cuts: &[(&AbstractionTree, &Cut)],
    reg: &mut VarRegistry,
) -> AppliedAbstraction<C> {
    let original_size = set.total_monomials();
    let mut substitution: FxHashMap<Var, Var> = FxHashMap::default();
    let mut meta_vars = Vec::new();
    let mut reserved = set.distinct_vars();
    for (tree, cut) in cuts {
        let (subst, metas) = cut.substitution(tree, reg, &reserved);
        // meta vars of earlier trees are reserved for later ones
        reserved.extend(metas.iter().map(|m| m.var));
        substitution.extend(subst);
        meta_vars.extend(metas);
    }
    let compressed = set.rename_vars(|v| substitution.get(&v).copied().unwrap_or(v));
    AppliedAbstraction {
        compressed_size: compressed.total_monomials(),
        original_size,
        compressed,
        substitution,
        meta_vars,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::paper_plans_tree;
    use cobra_provenance::{parse_polyset, Monomial};
    use cobra_util::Rat;

    fn rat(s: &str) -> Rat {
        Rat::parse(s).unwrap()
    }

    fn paper_set(reg: &mut VarRegistry) -> PolySet<Rat> {
        let src = "\
P1 = 208.8*p1*m1 + 240*p1*m3 + 127.4*f1*m1 + 114.45*f1*m3 \
   + 75.9*y1*m1 + 72.5*y1*m3 + 42*v*m1 + 24.2*v*m3
P2 = 77.9*b1*m1 + 80.5*b1*m3 + 52.2*e*m1 + 56.5*e*m3 + 69.7*b2*m1 + 100.65*b2*m3";
        parse_polyset(src, reg).unwrap()
    }

    /// Example 4 verbatim: S1 on P1 yields
    /// `208.8·St·m1 + 240·St·m3 + 245.3·Sp·m1 + 211.15·Sp·m3`.
    #[test]
    fn example4_s1_coefficients() {
        let mut reg = VarRegistry::new();
        let tree = paper_plans_tree(&mut reg);
        let set = paper_set(&mut reg);
        let cut = Cut::from_names(&tree, &["Business", "Special", "Standard"]).unwrap();
        let out = apply_cut(&set, &tree, &cut, &mut reg);
        let p1 = out.compressed.get("P1").unwrap();
        assert_eq!(p1.num_terms(), 4);
        let st = reg.lookup("Standard").unwrap();
        let sp = reg.lookup("Special").unwrap();
        let m1 = reg.lookup("m1").unwrap();
        let m3 = reg.lookup("m3").unwrap();
        assert_eq!(
            p1.coeff_of(&Monomial::from_pairs([(st, 1), (m1, 1)])),
            rat("208.8")
        );
        assert_eq!(
            p1.coeff_of(&Monomial::from_pairs([(st, 1), (m3, 1)])),
            rat("240")
        );
        assert_eq!(
            p1.coeff_of(&Monomial::from_pairs([(sp, 1), (m1, 1)])),
            rat("245.3") // 127.4 + 75.9 + 42
        );
        assert_eq!(
            p1.coeff_of(&Monomial::from_pairs([(sp, 1), (m3, 1)])),
            rat("211.15") // 114.45 + 72.5 + 24.2
        );
        // "four different variables": St, Sp, m1, m3
        assert_eq!(p1.vars().len(), 4);
    }

    /// Example 4's S5: P1 compresses to two monomials over three variables.
    /// The paper prints `466.1·Plans·m1` but the Example 2 coefficients sum
    /// to `454.1` (208.8+127.4+75.9+42) — a typo in the paper; the m3
    /// coefficient `451.15` matches exactly.
    #[test]
    fn example4_s5_coefficients() {
        let mut reg = VarRegistry::new();
        let tree = paper_plans_tree(&mut reg);
        let set = paper_set(&mut reg);
        let out = apply_cut(&set, &tree, &Cut::root(&tree), &mut reg);
        let p1 = out.compressed.get("P1").unwrap();
        assert_eq!(p1.num_terms(), 2);
        assert_eq!(p1.vars().len(), 3); // Plans, m1, m3
        let plans = reg.lookup("Plans").unwrap();
        let m1 = reg.lookup("m1").unwrap();
        let m3 = reg.lookup("m3").unwrap();
        assert_eq!(
            p1.coeff_of(&Monomial::from_pairs([(plans, 1), (m1, 1)])),
            rat("454.1")
        );
        assert_eq!(
            p1.coeff_of(&Monomial::from_pairs([(plans, 1), (m3, 1)])),
            rat("451.15")
        );
    }

    #[test]
    fn sizes_match_group_analysis_for_all_cuts() {
        let mut reg = VarRegistry::new();
        let tree = paper_plans_tree(&mut reg);
        let set = paper_set(&mut reg);
        let analysis = crate::groups::GroupAnalysis::analyze(&set, &tree).unwrap();
        for cut in crate::cut::enumerate_cuts(&tree, 1_000).unwrap() {
            let out = apply_cut(&set, &tree, &cut, &mut reg);
            assert_eq!(
                out.compressed_size as u64,
                analysis.compressed_size(cut.nodes()),
                "cut {}",
                cut.display(&tree)
            );
        }
    }

    #[test]
    fn group_apply_equals_rename_apply_for_all_cuts() {
        let mut reg = VarRegistry::new();
        let tree = paper_plans_tree(&mut reg);
        let set = paper_set(&mut reg);
        let analysis = crate::groups::GroupAnalysis::analyze(&set, &tree).unwrap();
        let reserved = set.distinct_vars();
        for cut in crate::cut::enumerate_cuts(&tree, 1_000).unwrap() {
            let mut reg_a = reg.clone();
            let mut reg_b = reg.clone();
            let slow = apply_cut(&set, &tree, &cut, &mut reg_a);
            let fast =
                apply_cut_with_groups(&set, &tree, &analysis, &cut, &reserved, &mut reg_b);
            assert_eq!(fast.compressed, slow.compressed, "cut {}", cut.display(&tree));
            assert_eq!(fast.substitution, slow.substitution);
            assert_eq!(fast.meta_vars, slow.meta_vars);
            assert_eq!(fast.original_size, slow.original_size);
            assert_eq!(fast.compressed_size, slow.compressed_size);
        }
    }

    #[test]
    fn group_apply_passes_base_terms_through() {
        let mut reg = VarRegistry::new();
        let tree = crate::tree::AbstractionTree::parse("T(a,b)", &mut reg).unwrap();
        let set = cobra_provenance::parse_polyset(
            "P = 2*a*x + 3*b*x + 5*x + 7",
            &mut reg,
        )
        .unwrap();
        let analysis = crate::groups::GroupAnalysis::analyze(&set, &tree).unwrap();
        let reserved = set.distinct_vars();
        let cut = Cut::root(&tree);
        let fast =
            apply_cut_with_groups(&set, &tree, &analysis, &cut, &reserved, &mut reg.clone());
        let slow = apply_cut(&set, &tree, &cut, &mut reg);
        // 2aT x + 3bT x merge to 5*x*T; the tree-free 5*x and 7 survive
        assert_eq!(fast.compressed_size, 3);
        assert_eq!(fast.compressed, slow.compressed);
    }

    #[test]
    fn leaf_cut_is_identity() {
        let mut reg = VarRegistry::new();
        let tree = paper_plans_tree(&mut reg);
        let set = paper_set(&mut reg);
        let out = apply_cut(&set, &tree, &Cut::leaves(&tree), &mut reg);
        assert_eq!(out.compressed, set);
        assert!(out.substitution.is_empty());
        assert_eq!(out.compression_ratio(), 1.0);
    }

    #[test]
    fn multi_tree_application() {
        // Second tree grouping the month variables into a quarter.
        let mut reg = VarRegistry::new();
        let plans = paper_plans_tree(&mut reg);
        let set = paper_set(&mut reg);
        let months = crate::tree::AbstractionTree::parse("Q1(m1,m2,m3)", &mut reg).unwrap();
        let pcut = Cut::root(&plans);
        let mcut = Cut::root(&months);
        let out = apply_cuts(&set, &[(&plans, &pcut), (&months, &mcut)], &mut reg);
        // P1: all monomials collapse to Plans·Q1 → 1 monomial; same for P2.
        assert_eq!(out.compressed_size, 2);
        let p1 = out.compressed.get("P1").unwrap();
        let plans_v = reg.lookup("Plans").unwrap();
        let q1 = reg.lookup("Q1").unwrap();
        assert_eq!(
            p1.coeff_of(&Monomial::from_pairs([(plans_v, 1), (q1, 1)])),
            rat("905.25") // 454.1 + 451.15
        );
        assert_eq!(out.meta_vars.len(), 2);
    }
}
