//! Batched scenario sweeps: many hypotheticals in one compiled pass.
//!
//! The interactive loop the paper demonstrates — "what if March prices
//! dropped 20%? what if business plans rose 10%? …" — evaluates the same
//! provenance under many valuations. Instead of re-walking the term lists
//! per scenario, this module compiles the full and compressed polynomial
//! sets once (via [`cobra_provenance::compile`]) and evaluates whole
//! scenario batches through the same engine, so full-vs-compressed numbers
//! are produced under identical evaluation machinery.
//!
//! Scenario *families* arrive as [`ScenarioSet`]s. Grid- and
//! perturbation-shaped sets are bound **allocation-free**: the
//! [`PairBinder`] caches the base scenario row for both programs once,
//! then each scenario is a row `memcpy` plus one write per override —
//! meta-variable group averages are maintained incrementally, so a
//! 10⁶-scenario grid streams through the lane-blocked kernel without ever
//! materializing a `Vec<Valuation>`.

use crate::assign::{self, ResultComparison, ResultRow, SpeedupMeasurement};
use crate::budget::{StopReason, SweepBudget, SweepOutcome};
use crate::cut::MetaVar;
use crate::error::Result;
use crate::folds::MergeFold;
use crate::scenario_set::{base_value, for_each_grid_digit, RowBinder, ScenarioSet};
use cobra_provenance::compile::LANES;
use cobra_provenance::{
    BatchEvaluator, Coeff, EvalProgram, FixedScratch, LaneScratch, PolySet, Valuation, Var,
};
use cobra_util::timing::time_best_of;
use cobra_util::{faults, kernel, par, CancelToken, FxHashMap, FxHashSet, Rat};
use std::panic::resume_unwind;

/// Scenarios bound and evaluated per streamed block: a handful of lane
/// blocks, so peak transient memory stays O(block × row) regardless of the
/// set's cardinality while the batch kernel still gets full lanes.
const STREAM_BLOCK: usize = 16 * LANES;

/// Scenarios per streamed block, capped so the transient buffers stay
/// bounded regardless of program shape: the result buffers
/// (`block × num_polys` values per side) around 64k values, and the
/// scenario-row buffers (`block × num_locals` values per side) around a
/// million values even for 10⁵+-variable programs. Whenever the cap
/// allows it the block is a whole number of `f64` lane groups, so the
/// lane kernel sees no ragged tail inside a sweep.
fn stream_block(num_polys: usize, num_locals: usize) -> usize {
    let by_results = (1usize << 16) / num_polys.max(1);
    let by_rows = (1usize << 20) / num_locals.max(1);
    let block = by_results.min(by_rows).min(STREAM_BLOCK);
    if block >= LANES {
        (block / LANES) * LANES
    } else if block * 2 >= LANES {
        // A ragged block starves the SIMD lane kernels (their register
        // tiles cover only the leading multiple of the tile width, the
        // rest runs lane-at-a-time): at e.g. 1055 polynomials the result
        // cap would yield 62-lane blocks that measure *slower* under
        // AVX2 than the portable kernel. Within 2× of the memory caps,
        // rounding up to one full lane block is the better trade.
        LANES
    } else {
        block.max(1)
    }
}

/// Exact-vs-approximate probe scenarios per `f64` fold-sweep: evenly
/// spaced grid points re-evaluated on the exact engines to measure the
/// divergence of the `f64` fast path (see [`F64Divergence`]).
pub const F64_PROBES: usize = 16;

/// One streamed scenario handed to a fold: the scenario's index in the
/// set's enumeration order plus its full-side and compressed-side result
/// rows (one value per polynomial, in label order). The rows borrow the
/// engine's block buffers — copy out whatever the fold needs to keep.
#[derive(Debug)]
pub struct FoldItem<'a, C> {
    /// Index of the scenario in the [`ScenarioSet`] enumeration order.
    pub scenario: usize,
    /// Full-provenance results, in label order.
    pub full: &'a [C],
    /// Compressed-provenance results, in label order.
    pub compressed: &'a [C],
}

// Manual impls: the derive would demand `C: Copy`, but the fields are
// shared slices — items are freely copyable for any coefficient type
// (tuple folds hand the same item to each component).
impl<C> Clone for FoldItem<'_, C> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<C> Copy for FoldItem<'_, C> {}

/// Measured divergence of an approximate (`f64`) fold-sweep from the
/// exact path: up to [`F64_PROBES`] evenly spaced scenarios are re-bound
/// and re-evaluated on the exact `Rat` engines, and the largest relative
/// deviation over both sides and all result tuples is recorded. This is
/// an *empirical spot check* of floating-point rounding (coefficients,
/// binding and evaluation all round), not a proven worst-case bound —
/// for SPJ-style provenance with well-scaled coefficients it sits at the
/// unit-roundoff scale (≈1e-16, see the `e10` experiment).
#[derive(Clone, Copy, Debug, Default)]
pub struct F64Divergence {
    /// Number of scenarios re-evaluated exactly.
    pub probed: usize,
    /// Largest relative deviation `|approx − exact| / |exact|` observed
    /// over the probes (both sides, every result tuple); 0 when nothing
    /// diverged, ∞ if the exact value was zero but the float was not.
    pub max_rel_divergence: f64,
}

impl F64Divergence {
    fn record(&mut self, exact: &[Rat], approx: &[f64]) {
        for (e, a) in exact.iter().zip(approx) {
            let d = assign::rel_error_f64(e.to_f64(), *a);
            self.max_rel_divergence = self.max_rel_divergence.max(d);
        }
    }

    /// Combines disjoint probe sets (parallel workers probe the scenarios
    /// falling in their own spans): counts add, maxima max — commutative,
    /// so the combined record is independent of the worker partition.
    fn merge(&mut self, other: F64Divergence) {
        self.probed += other.probed;
        self.max_rel_divergence = self.max_rel_divergence.max(other.max_rel_divergence);
    }
}

/// The evenly spaced probe indices of an `n`-scenario `f64` sweep:
/// up to [`F64_PROBES`] indices, deduplicated (`n` may be smaller).
/// Factored out so the sequential and parallel `f64` engines re-evaluate
/// exactly the same scenarios.
fn f64_probe_indices(n: usize) -> Vec<usize> {
    if n == 0 {
        return Vec::new();
    }
    let mut p: Vec<usize> = (0..F64_PROBES.min(n))
        .map(|k| k * (n - 1) / (F64_PROBES.min(n) - 1).max(1))
        .collect();
    p.dedup();
    p
}

/// How far one parallel worker got through its contiguous scenario span
/// before completing it or hitting the budget — the bookkeeping that lets
/// interrupted parallel sweeps report an exact prefix.
#[derive(Clone, Copy, Debug, Default)]
struct SpanProgress {
    start: usize,
    /// First scenario of the span **not** folded (== `end` when the span
    /// completed).
    done: usize,
    end: usize,
    reason: Option<StopReason>,
}

impl SpanProgress {
    fn begin(range: &std::ops::Range<usize>) -> SpanProgress {
        SpanProgress {
            start: range.start,
            done: range.start,
            end: range.end,
            reason: None,
        }
    }
}

/// Merges worker partials in ascending span order while the covered
/// prefix stays contiguous and complete: every fully completed span is
/// absorbed, the first interrupted span contributes its own completed
/// prefix and ends the merge, and everything after it is discarded. The
/// result is exactly the fold state of a sequential pass over
/// `0..returned_done` — the bit-identity contract of
/// [`SweepOutcome::Partial`].
fn merge_span_prefix<T>(
    partials: Vec<(SpanProgress, T)>,
    mut absorb: impl FnMut(T),
) -> (usize, Option<StopReason>) {
    let mut done = 0usize;
    let mut stop = None;
    for (span, payload) in partials {
        if span.start != done {
            break; // unreachable by construction; belt and braces
        }
        absorb(payload);
        done = span.done;
        if span.done < span.end {
            stop = span.reason;
            break;
        }
    }
    (done, stop)
}

/// Classifies a finished sweep: a dynamic stop wins, then a scenario cap
/// (`n_target < n`), otherwise the sweep is complete.
fn outcome_for<T>(
    fold: T,
    done: usize,
    n: usize,
    n_target: usize,
    stop: Option<StopReason>,
) -> SweepOutcome<T> {
    if done < n_target {
        SweepOutcome::Partial {
            fold,
            scenarios_done: done,
            reason: stop.unwrap_or(StopReason::Cancelled),
        }
    } else if n_target < n {
        SweepOutcome::Partial {
            fold,
            scenarios_done: done,
            reason: StopReason::ScenarioCap,
        }
    } else {
        SweepOutcome::Complete(fold)
    }
}

/// A **sound** per-sweep rounding-error certificate for the `f64` fast
/// path, computed by the Higham-style shadow fold of
/// [`CompiledComparison::sweep_fold_f64_bounded`]: alongside each block,
/// the absolute-value shadow programs ([`ErrorShadow`]) are evaluated on
/// the elementwise magnitudes of the same scenario rows, and
/// `γ_k · Σ|c|Π|x|^e` bounds each result's rounding error a priori.
///
/// The contract: for every swept scenario and polynomial, the true value
/// of the compiled polynomial **at the bound `f64` rows** differs from
/// the kernel's computed value by at most the recorded bound (coefficient
/// `Rat → f64` conversion included). Rounding suffered while *binding*
/// scenario rows is outside the certificate — the 16-sample
/// [`F64Divergence`] probe remains as the end-to-end empirical
/// complement. Unlike that probe, this bound covers **every** scenario,
/// not a sample.
#[derive(Clone, Copy, Debug, Default)]
pub struct F64ErrorBound {
    /// Scenarios covered by the certificate.
    pub scenarios: usize,
    /// Largest absolute rounding-error bound over all scenarios, result
    /// tuples and both sides.
    pub max_abs_bound: f64,
    /// Largest *relative* bound (`bound / |computed|`; 0 when both are
    /// zero, ∞ when a bound is positive at a zero computed value).
    pub max_rel_bound: f64,
    /// Earliest scenario index attaining `max_rel_bound`.
    pub argmax_rel: Option<usize>,
}

impl F64ErrorBound {
    fn record_scenario(&mut self, scenario: usize, abs_bound: f64, rel_bound: f64) {
        self.scenarios += 1;
        self.max_abs_bound = self.max_abs_bound.max(abs_bound);
        if self.argmax_rel.is_none() || rel_bound > self.max_rel_bound {
            self.max_rel_bound = rel_bound;
            self.argmax_rel = Some(scenario);
        }
    }

    /// Combines records over disjoint ascending scenario spans (`other`
    /// covers later scenarios): counts add, maxima max, and ties keep the
    /// earlier argmax — so the merged record is identical to sequential
    /// recording.
    fn merge(&mut self, other: F64ErrorBound) {
        self.scenarios += other.scenarios;
        self.max_abs_bound = self.max_abs_bound.max(other.max_abs_bound);
        if other.argmax_rel.is_some()
            && (self.argmax_rel.is_none() || other.max_rel_bound > self.max_rel_bound)
        {
            self.max_rel_bound = other.max_rel_bound;
            self.argmax_rel = other.argmax_rel;
        }
    }
}

/// The effective per-polynomial bound factor: `γ_k = k·u/(1−k·u)`
/// (Higham's a-priori constant, `u = 2⁻⁵³`), inflated once more by
/// `1/(1−γ_k)` because the Σ|c|Π|x| numerator is itself *computed* in
/// `f64` and may under-report by a `(1−γ_k)` factor. Saturates to ∞ when
/// `k·u` approaches 1 (astronomically long polynomials) — the bound is
/// then honest about knowing nothing.
fn gamma_eff(k: u32) -> f64 {
    let u = f64::EPSILON / 2.0;
    let ku = k as f64 * u;
    if ku >= 1.0 {
        return f64::INFINITY;
    }
    let g = ku / (1.0 - ku);
    if g >= 1.0 {
        f64::INFINITY
    } else {
        g / (1.0 - g)
    }
}

/// The Higham shadow of a full/compressed `f64` engine pair: the
/// absolute-coefficient twin programs
/// ([`EvalProgram::to_abs_program`]) plus per-polynomial `γ_k` factors
/// derived from [`EvalProgram::rounding_op_counts`]. Build it once per
/// compression (the session caches it) and pass it to
/// [`CompiledComparison::sweep_fold_f64_bounded`]; evaluating the shadow
/// roughly doubles the per-scenario kernel cost.
#[derive(Clone, Debug)]
pub struct ErrorShadow {
    full_abs: BatchEvaluator<f64>,
    comp_abs: BatchEvaluator<f64>,
    full_gamma: Vec<f64>,
    comp_gamma: Vec<f64>,
}

impl ErrorShadow {
    /// Builds the shadow for the `(full, compressed)` `f64` engines of a
    /// comparison (the same pair handed to the `sweep_fold_f64*`
    /// engines).
    pub fn new(full64: &BatchEvaluator<f64>, comp64: &BatchEvaluator<f64>) -> ErrorShadow {
        let gammas = |prog: &EvalProgram<f64>| -> Vec<f64> {
            prog.rounding_op_counts().into_iter().map(gamma_eff).collect()
        };
        ErrorShadow {
            full_abs: BatchEvaluator::new(full64.program().to_abs_program()),
            comp_abs: BatchEvaluator::new(comp64.program().to_abs_program()),
            full_gamma: gammas(full64.program()),
            comp_gamma: gammas(comp64.program()),
        }
    }

    /// Records one scenario's certificate given both sides' computed
    /// values and the abs-shadow values (all in label order).
    fn record(
        &self,
        bound: &mut F64ErrorBound,
        scenario: usize,
        full: &[f64],
        comp: &[f64],
        full_abs: &[f64],
        comp_abs: &[f64],
    ) {
        let mut abs_max = 0.0f64;
        let mut rel_max = 0.0f64;
        let mut side = |vals: &[f64], abs_vals: &[f64], gamma: &[f64]| {
            for ((&v, &a), &g) in vals.iter().zip(abs_vals).zip(gamma) {
                let b = g * a;
                abs_max = abs_max.max(b);
                let rel = if b == 0.0 {
                    0.0
                } else if v == 0.0 {
                    f64::INFINITY
                } else {
                    b / v.abs()
                };
                rel_max = rel_max.max(rel);
            }
        };
        side(full, full_abs, &self.full_gamma);
        side(comp, comp_abs, &self.comp_gamma);
        bound.record_scenario(scenario, abs_max, rel_max);
    }
}

/// The full-vs-compressed engines for one compression outcome, compiled
/// once and reusable across any number of sweeps. Cloning shares the
/// underlying programs (see [`BatchEvaluator`]), so a session-invariant
/// full-side program can be cached and paired with each new compression.
#[derive(Clone, Debug)]
pub struct CompiledComparison {
    /// Batched evaluator over the full provenance (exact coefficients).
    pub full: BatchEvaluator<Rat>,
    /// Batched evaluator over the compressed provenance.
    pub compressed: BatchEvaluator<Rat>,
    /// Optional exact-value twins the `f64` divergence probes evaluate
    /// instead of `full`/`compressed`. A shared-subterm DAG program
    /// (`num_slots > 0`) never lowers to the fixed-point exact kernel,
    /// so probing it directly pays a plain `Rat` walk per probe — enough
    /// to dwarf the whole `f64` sweep at provenance scale. Its flat twin
    /// produces bit-identical exact values (the DAG rewrite is exact in
    /// the ring) while staying fixed-point eligible, so DAG-mode sessions
    /// arm the flat pair here and the divergence record is unchanged.
    probe: Option<Box<(BatchEvaluator<Rat>, BatchEvaluator<Rat>)>>,
}

impl CompiledComparison {
    /// Compiles both sides.
    pub fn compile(full: &PolySet<Rat>, compressed: &PolySet<Rat>) -> CompiledComparison {
        CompiledComparison {
            full: BatchEvaluator::compile(full),
            compressed: BatchEvaluator::compile(compressed),
            probe: None,
        }
    }

    /// Pairs two already-compiled engines (e.g. a cached full-side program
    /// with a freshly compressed side).
    pub fn from_engines(
        full: BatchEvaluator<Rat>,
        compressed: BatchEvaluator<Rat>,
    ) -> CompiledComparison {
        CompiledComparison {
            full,
            compressed,
            probe: None,
        }
    }

    /// Arms exact probe twins for the `f64` divergence probes: a pair of
    /// engines whose exact values are bit-identical to `full`/`compressed`
    /// but which remain eligible for the fixed-point exact kernel (e.g.
    /// the flat originals of a DAG rewrite). The twins must share each
    /// side's polynomial count and local layout — probes bind the same
    /// scenario rows.
    ///
    /// # Panics
    /// Panics when a twin's shape diverges from the engine it probes for.
    #[must_use]
    pub fn with_probe_twins(
        mut self,
        full: BatchEvaluator<Rat>,
        compressed: BatchEvaluator<Rat>,
    ) -> CompiledComparison {
        assert_eq!(
            full.program().num_polys(),
            self.full.program().num_polys(),
            "probe twin must mirror the full program's outputs"
        );
        assert_eq!(
            full.program().num_locals(),
            self.full.program().num_locals(),
            "probe twin must share the full program's local layout"
        );
        assert_eq!(
            compressed.program().num_polys(),
            self.compressed.program().num_polys(),
            "probe twin must mirror the compressed program's outputs"
        );
        assert_eq!(
            compressed.program().num_locals(),
            self.compressed.program().num_locals(),
            "probe twin must share the compressed program's local layout"
        );
        self.probe = Some(Box::new((full, compressed)));
        self
    }

    /// The exact programs the divergence probes evaluate: the armed probe
    /// twins, or the engines themselves when none are armed.
    fn probe_programs(&self) -> (&EvalProgram<Rat>, &EvalProgram<Rat>) {
        match &self.probe {
            Some(twins) => (twins.0.program(), twins.1.program()),
            None => (self.full.program(), self.compressed.program()),
        }
    }

    /// Evaluates every scenario of `set` on both sides, streaming grid
    /// scenarios straight into the batch kernels in blocks — see
    /// [`sweep_full_vs_compressed`] for the scenario semantics. This is
    /// [`sweep_fold`](Self::sweep_fold) with an appending fold: the only
    /// O(scenarios) memory is the returned result matrix itself.
    pub fn sweep(
        &self,
        metas: &[MetaVar],
        base: &Valuation<Rat>,
        set: &ScenarioSet,
    ) -> ScenarioSweep {
        let n = set.len();
        let np = self.full.program().num_polys();
        let init = (
            Vec::with_capacity(n * np),
            Vec::with_capacity(n * np),
        );
        let (full, compressed) = self.sweep_fold(metas, base, set, init, |(mut f, mut c), item| {
            f.extend_from_slice(item.full);
            c.extend_from_slice(item.compressed);
            (f, c)
        });
        ScenarioSweep {
            labels: self.full.program().labels().to_vec(),
            num_scenarios: n,
            full,
            compressed,
        }
    }

    /// Streams every scenario of `set` through both compiled engines and
    /// folds the per-scenario results into an accumulator — the streaming
    /// heart every sweep surface is built on. Scenarios are bound in
    /// blocks by the allocation-free [`PairBinder`], evaluated through
    /// the batch kernels, and handed to `f` in enumeration order as
    /// [`FoldItem`]s; peak transient memory is O(block × row) regardless
    /// of the set's cardinality, so a 10⁷-scenario grid aggregates in
    /// O(1) output memory.
    ///
    /// # Panics
    /// Panics if the two programs' polynomial counts differ, or under the
    /// [`PairBinder`] totality rules (grids need a total `base`).
    pub fn sweep_fold<A>(
        &self,
        metas: &[MetaVar],
        base: &Valuation<Rat>,
        set: &ScenarioSet,
        init: A,
        f: impl FnMut(A, FoldItem<'_, Rat>) -> A,
    ) -> A {
        match self.sweep_fold_budgeted(metas, base, set, &SweepBudget::unlimited(), init, f) {
            Ok(outcome) => outcome.into_fold(),
            Err(_) => unreachable!("unlimited budgets cannot fail"),
        }
    }

    /// [`sweep_fold`](Self::sweep_fold) under a [`SweepBudget`]: the
    /// budget's dynamic limits (deadline, token) are polled at **block
    /// granularity** and a scenario cap deterministically clamps the swept
    /// range, so an exhausted budget returns
    /// [`SweepOutcome::Partial`] — the exact fold over the scenario
    /// prefix completed, never a torn or approximate state. An unlimited
    /// budget adds one branch per ~10³-scenario block to the hot loop.
    ///
    /// # Errors
    /// [`CoreError::InfeasibleBudget`](crate::error::CoreError::InfeasibleBudget)
    /// when the budget is statically unsatisfiable (scenario cap 0 over a
    /// non-empty set).
    ///
    /// # Panics
    /// Same conditions as [`sweep_fold`](Self::sweep_fold).
    pub fn sweep_fold_budgeted<A>(
        &self,
        metas: &[MetaVar],
        base: &Valuation<Rat>,
        set: &ScenarioSet,
        budget: &SweepBudget,
        init: A,
        mut f: impl FnMut(A, FoldItem<'_, Rat>) -> A,
    ) -> Result<SweepOutcome<A>> {
        let n = set.len();
        budget.validate(n)?;
        let n_target = budget.scenario_cap().map_or(n, |c| c.min(n));
        let np = self.full.program().num_polys();
        assert_eq!(
            np,
            self.compressed.program().num_polys(),
            "polynomial sets must align"
        );
        let mut binder = PairBinder::new(self, metas, base, set);
        let locals = self
            .full
            .program()
            .num_locals()
            .max(self.compressed.program().num_locals());
        let block = stream_block(np, locals).min(n_target.max(1));
        let mut full_rows: Vec<Vec<Rat>> = (0..block)
            .map(|_| vec![Rat::ZERO; self.full.program().num_locals()])
            .collect();
        let mut comp_rows: Vec<Vec<Rat>> = (0..block)
            .map(|_| vec![Rat::ZERO; self.compressed.program().num_locals()])
            .collect();
        let mut full_out = vec![Rat::ZERO; block * np];
        let mut comp_out = vec![Rat::ZERO; block * np];
        let check = budget.has_dynamic_limits();
        let mut acc = init;
        let mut start = 0;
        let mut stop = None;
        while start < n_target {
            faults::point(faults::Site::Block);
            if check {
                if let Some(reason) = budget.stop_reason() {
                    stop = Some(reason);
                    break;
                }
            }
            let width = block.min(n_target - start);
            for k in 0..width {
                let (frow, crow) = (&mut full_rows[k], &mut comp_rows[k]);
                // split borrows: binder needs &mut self for its scratch
                binder.bind_pair_into(start + k, frow, crow);
            }
            self.full
                .eval_batch_exact_into(&full_rows[..width], &mut full_out[..width * np]);
            self.compressed
                .eval_batch_exact_into(&comp_rows[..width], &mut comp_out[..width * np]);
            for k in 0..width {
                acc = f(
                    acc,
                    FoldItem {
                        scenario: start + k,
                        full: &full_out[k * np..(k + 1) * np],
                        compressed: &comp_out[k * np..(k + 1) * np],
                    },
                );
            }
            start += width;
        }
        Ok(outcome_for(acc, start, n, n_target, stop))
    }

    /// [`sweep_fold`](Self::sweep_fold) with **binding and evaluation
    /// fanned across cores**: the scenario range is split into contiguous
    /// per-worker spans ([`cobra_util::par::par_owned_spans`]), each
    /// worker owns its own [`PairBinder`], batch buffers and a fold
    /// replica ([`MergeFold::init`]), and the partial accumulators merge
    /// back in ascending span order ([`MergeFold::merge`]). The sequential
    /// fold engine streams blocks one at a time — only each block's
    /// *evaluation* used the cores, while binding (the dominant cost for
    /// compressed programs) ran on one thread; here whole spans bind and
    /// evaluate concurrently, lifting that bottleneck at 10⁷⁺ scenarios.
    ///
    /// Results are **bit-identical** to
    /// [`sweep_fold`](Self::sweep_fold)`(…, fold, folds::step)` at any
    /// thread count (`COBRA_THREADS` or
    /// [`cobra_util::par::with_threads`]): workers
    /// accept disjoint ascending spans, evaluation is per-scenario
    /// deterministic, and the [`MergeFold`] laws make the ordered merge
    /// equal to one sequential pass.
    ///
    /// # Panics
    /// Same conditions as [`sweep_fold`](Self::sweep_fold).
    pub fn sweep_fold_par<F: MergeFold + Send + Sync>(
        &self,
        metas: &[MetaVar],
        base: &Valuation<Rat>,
        set: &ScenarioSet,
        fold: F,
    ) -> F {
        match self.sweep_fold_par_impl(metas, base, set, &SweepBudget::unlimited(), fold) {
            Ok(outcome) => outcome.into_fold(),
            Err(payload) => resume_unwind(payload),
        }
    }

    /// [`sweep_fold_par`](Self::sweep_fold_par) under a [`SweepBudget`],
    /// with worker faults isolated: every worker polls the budget at
    /// block granularity, an interrupted sweep merges the completed span
    /// prefixes into a [`SweepOutcome::Partial`] **bit-identical to a
    /// sequential fold over the same prefix**, and a panicking worker is
    /// caught at its span boundary (sibling workers are cancelled) and
    /// surfaced as
    /// [`CoreError::WorkerPanicked`](crate::error::CoreError::WorkerPanicked)
    /// instead of aborting the process.
    ///
    /// # Errors
    /// [`CoreError::InfeasibleBudget`](crate::error::CoreError::InfeasibleBudget)
    /// for statically unsatisfiable budgets;
    /// [`CoreError::WorkerPanicked`](crate::error::CoreError::WorkerPanicked)
    /// when a worker panicked (the process and the engines stay usable).
    ///
    /// # Panics
    /// Same binder/shape conditions as [`sweep_fold`](Self::sweep_fold).
    pub fn sweep_fold_par_budgeted<F: MergeFold + Send + Sync>(
        &self,
        metas: &[MetaVar],
        base: &Valuation<Rat>,
        set: &ScenarioSet,
        budget: &SweepBudget,
        fold: F,
    ) -> Result<SweepOutcome<F>> {
        budget.validate(set.len())?;
        self.sweep_fold_par_impl(metas, base, set, budget, fold)
            .map_err(|payload| crate::error::CoreError::WorkerPanicked(par::panic_message(&payload)))
    }

    fn sweep_fold_par_impl<F: MergeFold + Send + Sync>(
        &self,
        metas: &[MetaVar],
        base: &Valuation<Rat>,
        set: &ScenarioSet,
        budget: &SweepBudget,
        fold: F,
    ) -> std::result::Result<SweepOutcome<F>, par::WorkerPanic> {
        let n = set.len();
        let n_target = budget.scenario_cap().map_or(n, |c| c.min(n));
        let np = self.full.program().num_polys();
        assert_eq!(
            np,
            self.compressed.program().num_polys(),
            "polynomial sets must align"
        );
        if n_target == 0 {
            return Ok(outcome_for(fold, 0, n, n_target, None));
        }
        let locals = self
            .full
            .program()
            .num_locals()
            .max(self.compressed.program().num_locals());
        let block = stream_block(np, locals).min(n_target);
        let check = budget.has_dynamic_limits();
        // Kernel overrides are thread-local: resolve the exact-path choice
        // here on the calling thread and hand it to every worker.
        let use_fixed = kernel::exact_fixed_enabled();
        let abort = CancelToken::new();
        let partials = par::try_par_owned_spans(
            n_target,
            1,
            &abort,
            || {
                let full_rows: Vec<Vec<Rat>> = (0..block)
                    .map(|_| vec![Rat::ZERO; self.full.program().num_locals()])
                    .collect();
                let comp_rows: Vec<Vec<Rat>> = (0..block)
                    .map(|_| vec![Rat::ZERO; self.compressed.program().num_locals()])
                    .collect();
                (
                    PairBinder::new(self, metas, base, set),
                    full_rows,
                    comp_rows,
                    vec![Rat::ZERO; block * np],
                    vec![Rat::ZERO; block * np],
                    fold.init(),
                    SpanProgress::default(),
                    FixedScratch::new(),
                )
            },
            |state, range| {
                let (binder, full_rows, comp_rows, full_out, comp_out, f, span, scratch) = state;
                *span = SpanProgress::begin(&range);
                let mut start = range.start;
                while start < range.end {
                    faults::point(faults::Site::Block);
                    if abort.is_cancelled() {
                        span.reason = Some(StopReason::Cancelled);
                        break;
                    }
                    if check {
                        if let Some(reason) = budget.stop_reason() {
                            span.reason = Some(reason);
                            break;
                        }
                    }
                    let width = block.min(range.end - start);
                    for k in 0..width {
                        binder.bind_pair_into(start + k, &mut full_rows[k], &mut comp_rows[k]);
                    }
                    self.full.eval_batch_exact_serial_with(
                        use_fixed,
                        &full_rows[..width],
                        &mut full_out[..width * np],
                        scratch,
                    );
                    self.compressed.eval_batch_exact_serial_with(
                        use_fixed,
                        &comp_rows[..width],
                        &mut comp_out[..width * np],
                        scratch,
                    );
                    for k in 0..width {
                        f.accept(FoldItem {
                            scenario: start + k,
                            full: &full_out[k * np..(k + 1) * np],
                            compressed: &comp_out[k * np..(k + 1) * np],
                        });
                    }
                    start += width;
                    span.done = start;
                }
            },
        )?;
        let mut fold = fold;
        let (done, stop) = merge_span_prefix(
            partials.into_iter().map(|p| (p.6, p.5)).collect(),
            |partial| fold.merge(partial),
        );
        Ok(outcome_for(fold, done, n, n_target, stop))
    }

    /// [`sweep_fold`](Self::sweep_fold) on the approximate `f64` fast
    /// path: scenarios are bound directly as `f64` rows
    /// ([`PairBinder::bind_pair_into_f64`]) and each block is evaluated
    /// through the lane kernel
    /// ([`BatchEvaluator::eval_batch_fast_into`]), so large grids
    /// aggregate at the lane-kernel per-scenario cost instead of exact
    /// `Rat` arithmetic. Up to [`F64_PROBES`] evenly spaced scenarios are
    /// additionally re-evaluated on the exact engines; the returned
    /// [`F64Divergence`] records the largest observed deviation.
    ///
    /// `shadows` is the `(full, compressed)` pair of `f64` shadow engines
    /// of this comparison's exact programs
    /// ([`EvalProgram::to_f64_program`] preserves the variable numbering,
    /// so the rows bind directly).
    ///
    /// # Panics
    /// Panics if the shadow programs' shapes do not match the exact ones,
    /// or under the [`PairBinder`] totality rules.
    pub fn sweep_fold_f64<A>(
        &self,
        shadows: (&BatchEvaluator<f64>, &BatchEvaluator<f64>),
        metas: &[MetaVar],
        base: &Valuation<Rat>,
        set: &ScenarioSet,
        init: A,
        f: impl FnMut(A, FoldItem<'_, f64>) -> A,
    ) -> (A, F64Divergence) {
        match self.sweep_fold_f64_impl(shadows, None, metas, base, set, &SweepBudget::unlimited(), init, f)
        {
            Ok((outcome, divergence, _)) => (outcome.into_fold(), divergence),
            Err(_) => unreachable!("unlimited budgets cannot fail"),
        }
    }

    /// [`sweep_fold_f64`](Self::sweep_fold_f64) under a [`SweepBudget`]:
    /// the fast path's sibling of
    /// [`sweep_fold_budgeted`](Self::sweep_fold_budgeted). The divergence
    /// record of a [`SweepOutcome::Partial`] covers exactly the probe
    /// scenarios inside the completed prefix.
    ///
    /// # Errors
    /// [`CoreError::InfeasibleBudget`](crate::error::CoreError::InfeasibleBudget)
    /// when the budget is statically unsatisfiable.
    ///
    /// # Panics
    /// Same conditions as [`sweep_fold_f64`](Self::sweep_fold_f64).
    #[allow(clippy::too_many_arguments)] // low-level engine surface; the session wraps it
    pub fn sweep_fold_f64_budgeted<A>(
        &self,
        shadows: (&BatchEvaluator<f64>, &BatchEvaluator<f64>),
        metas: &[MetaVar],
        base: &Valuation<Rat>,
        set: &ScenarioSet,
        budget: &SweepBudget,
        init: A,
        f: impl FnMut(A, FoldItem<'_, f64>) -> A,
    ) -> Result<(SweepOutcome<A>, F64Divergence)> {
        budget.validate(set.len())?;
        let (outcome, divergence, _) =
            self.sweep_fold_f64_impl(shadows, None, metas, base, set, budget, init, f)?;
        Ok((outcome, divergence))
    }

    /// [`sweep_fold_f64_budgeted`](Self::sweep_fold_f64_budgeted) with a
    /// **sound rounding certificate** instead of the sampled divergence
    /// probe: the [`ErrorShadow`]'s absolute-value twin programs are
    /// evaluated alongside every block (≈2× kernel cost) and the returned
    /// [`F64ErrorBound`] bounds the rounding error of *every* folded
    /// scenario a priori — see [`F64ErrorBound`] for the exact contract.
    ///
    /// # Errors
    /// [`CoreError::InfeasibleBudget`](crate::error::CoreError::InfeasibleBudget)
    /// when the budget is statically unsatisfiable.
    ///
    /// # Panics
    /// Same conditions as [`sweep_fold_f64`](Self::sweep_fold_f64), plus
    /// a shape mismatch between `err` and the shadow engines.
    #[allow(clippy::too_many_arguments)] // low-level engine surface; the session wraps it
    pub fn sweep_fold_f64_bounded<A>(
        &self,
        shadows: (&BatchEvaluator<f64>, &BatchEvaluator<f64>),
        err: &ErrorShadow,
        metas: &[MetaVar],
        base: &Valuation<Rat>,
        set: &ScenarioSet,
        budget: &SweepBudget,
        init: A,
        f: impl FnMut(A, FoldItem<'_, f64>) -> A,
    ) -> Result<(SweepOutcome<A>, F64ErrorBound)> {
        budget.validate(set.len())?;
        let (outcome, _, bound) =
            self.sweep_fold_f64_impl(shadows, Some(err), metas, base, set, budget, init, f)?;
        Ok((outcome, bound))
    }

    /// The one sequential `f64` engine behind the plain, budgeted and
    /// bounded surfaces. With an [`ErrorShadow`] the Higham certificate
    /// replaces the divergence probes (and vice versa), so each surface
    /// pays only for what it reports.
    #[allow(clippy::too_many_arguments)]
    fn sweep_fold_f64_impl<A>(
        &self,
        shadows: (&BatchEvaluator<f64>, &BatchEvaluator<f64>),
        err: Option<&ErrorShadow>,
        metas: &[MetaVar],
        base: &Valuation<Rat>,
        set: &ScenarioSet,
        budget: &SweepBudget,
        init: A,
        mut f: impl FnMut(A, FoldItem<'_, f64>) -> A,
    ) -> Result<(SweepOutcome<A>, F64Divergence, F64ErrorBound)> {
        let (full64, comp64) = shadows;
        let n = set.len();
        let n_target = budget.scenario_cap().map_or(n, |c| c.min(n));
        let np = self.full.program().num_polys();
        self.assert_f64_shadows(full64, comp64);
        let mut binder = PairBinder::new(self, metas, base, set);
        let locals = self
            .full
            .program()
            .num_locals()
            .max(self.compressed.program().num_locals());
        let block = stream_block(np, locals).min(n_target.max(1));
        let mut full_rows: Vec<Vec<f64>> = (0..block)
            .map(|_| vec![0.0; self.full.program().num_locals()])
            .collect();
        let mut comp_rows: Vec<Vec<f64>> = (0..block)
            .map(|_| vec![0.0; self.compressed.program().num_locals()])
            .collect();
        let mut full_out = vec![0.0f64; block * np];
        let mut comp_out = vec![0.0f64; block * np];

        // Evenly spaced probe indices, deduplicated (n may be < F64_PROBES);
        // the bounded path certifies every scenario instead of sampling.
        let probes = if err.is_some() {
            Vec::new()
        } else {
            f64_probe_indices(n)
        };
        let mut next_probe = 0usize;
        let mut divergence = F64Divergence::default();
        // Probes evaluate the armed twins (flat originals in DAG mode) so
        // they stay fixed-point eligible — see `probe_programs`.
        let (probe_full, probe_comp) = self.probe_programs();
        let mut probe_full_row = vec![Rat::ZERO; probe_full.num_locals()];
        let mut probe_comp_row = vec![Rat::ZERO; probe_comp.num_locals()];
        let mut probe_out = vec![Rat::ZERO; np];
        // Probes follow the exact-kernel dispatch too: at full provenance
        // scale a plain `Rat` walk per probe would dwarf the whole `f64`
        // sweep it is spot-checking.
        let probe_fixed = kernel::exact_fixed_enabled();
        let mut probe_scratch = FixedScratch::new();

        // Higham-shadow buffers (unused, empty when no shadow is given).
        let mut bound = F64ErrorBound::default();
        let mut abs_rows: Vec<Vec<f64>> = Vec::new();
        let mut abs_comp_rows: Vec<Vec<f64>> = Vec::new();
        let mut abs_full_out = Vec::new();
        let mut abs_comp_out = Vec::new();
        if err.is_some() {
            abs_rows = (0..block)
                .map(|_| vec![0.0; self.full.program().num_locals()])
                .collect();
            abs_comp_rows = (0..block)
                .map(|_| vec![0.0; self.compressed.program().num_locals()])
                .collect();
            abs_full_out = vec![0.0f64; block * np];
            abs_comp_out = vec![0.0f64; block * np];
        }

        let check = budget.has_dynamic_limits();
        let mut acc = init;
        let mut start = 0;
        let mut stop = None;
        while start < n_target {
            faults::point(faults::Site::Block);
            if check {
                if let Some(reason) = budget.stop_reason() {
                    stop = Some(reason);
                    break;
                }
            }
            let width = block.min(n_target - start);
            for k in 0..width {
                let (frow, crow) = (&mut full_rows[k], &mut comp_rows[k]);
                binder.bind_pair_into_f64(start + k, frow, crow);
            }
            full64.eval_batch_fast_into(&full_rows[..width], &mut full_out[..width * np]);
            comp64.eval_batch_fast_into(&comp_rows[..width], &mut comp_out[..width * np]);
            if let Some(err) = err {
                for k in 0..width {
                    for (a, &x) in abs_rows[k].iter_mut().zip(&full_rows[k]) {
                        *a = x.abs();
                    }
                    for (a, &x) in abs_comp_rows[k].iter_mut().zip(&comp_rows[k]) {
                        *a = x.abs();
                    }
                }
                err.full_abs
                    .eval_batch_fast_into(&abs_rows[..width], &mut abs_full_out[..width * np]);
                err.comp_abs
                    .eval_batch_fast_into(&abs_comp_rows[..width], &mut abs_comp_out[..width * np]);
            }
            for k in 0..width {
                let i = start + k;
                let full = &full_out[k * np..(k + 1) * np];
                let compressed = &comp_out[k * np..(k + 1) * np];
                if next_probe < probes.len() && probes[next_probe] == i {
                    next_probe += 1;
                    divergence.probed += 1;
                    binder.bind_pair_into(i, &mut probe_full_row, &mut probe_comp_row);
                    probe_full.eval_scenario_exact_with(
                        probe_fixed,
                        &probe_full_row,
                        &mut probe_out,
                        &mut probe_scratch,
                    );
                    divergence.record(&probe_out, full);
                    probe_comp.eval_scenario_exact_with(
                        probe_fixed,
                        &probe_comp_row,
                        &mut probe_out,
                        &mut probe_scratch,
                    );
                    divergence.record(&probe_out, compressed);
                }
                if let Some(err) = err {
                    err.record(
                        &mut bound,
                        i,
                        full,
                        compressed,
                        &abs_full_out[k * np..(k + 1) * np],
                        &abs_comp_out[k * np..(k + 1) * np],
                    );
                }
                acc = f(
                    acc,
                    FoldItem {
                        scenario: i,
                        full,
                        compressed,
                    },
                );
            }
            start += width;
        }
        Ok((outcome_for(acc, start, n, n_target, stop), divergence, bound))
    }

    /// [`sweep_fold_f64`](Self::sweep_fold_f64) with binding, lane-kernel
    /// evaluation **and** the divergence probes fanned across cores — the
    /// parallel sibling pairing [`sweep_fold_par`](Self::sweep_fold_par)
    /// with the `f64` fast path. Each worker owns a [`PairBinder`], `f64`
    /// row/result buffers, one [`LaneScratch`] (reused across all of its
    /// blocks) and a fold replica; workers re-evaluate exactly the probe
    /// scenarios falling inside their own spans, so the merged
    /// [`F64Divergence`] covers the same probes as the sequential engine.
    ///
    /// Per scenario the lane kernel performs the same multiply/add
    /// sequence regardless of blocking or worker, so the fold output and
    /// the divergence record are bit-identical to
    /// [`sweep_fold_f64`](Self::sweep_fold_f64) at any thread count.
    ///
    /// # Panics
    /// Same conditions as [`sweep_fold_f64`](Self::sweep_fold_f64).
    pub fn sweep_fold_f64_par<F: MergeFold + Send + Sync>(
        &self,
        shadows: (&BatchEvaluator<f64>, &BatchEvaluator<f64>),
        metas: &[MetaVar],
        base: &Valuation<Rat>,
        set: &ScenarioSet,
        fold: F,
    ) -> (F, F64Divergence) {
        match self.sweep_fold_f64_par_impl(shadows, None, metas, base, set, &SweepBudget::unlimited(), fold)
        {
            Ok((outcome, divergence, _)) => (outcome.into_fold(), divergence),
            Err(payload) => resume_unwind(payload),
        }
    }

    /// [`sweep_fold_f64_par`](Self::sweep_fold_f64_par) under a
    /// [`SweepBudget`] with worker faults isolated — the fast path's
    /// sibling of
    /// [`sweep_fold_par_budgeted`](Self::sweep_fold_par_budgeted). A
    /// partial outcome's divergence record covers exactly the probes
    /// inside the completed prefix.
    ///
    /// # Errors
    /// [`CoreError::InfeasibleBudget`](crate::error::CoreError::InfeasibleBudget)
    /// for statically unsatisfiable budgets;
    /// [`CoreError::WorkerPanicked`](crate::error::CoreError::WorkerPanicked)
    /// when a worker panicked (the process and the engines stay usable).
    ///
    /// # Panics
    /// Same conditions as [`sweep_fold_f64`](Self::sweep_fold_f64).
    pub fn sweep_fold_f64_par_budgeted<F: MergeFold + Send + Sync>(
        &self,
        shadows: (&BatchEvaluator<f64>, &BatchEvaluator<f64>),
        metas: &[MetaVar],
        base: &Valuation<Rat>,
        set: &ScenarioSet,
        budget: &SweepBudget,
        fold: F,
    ) -> Result<(SweepOutcome<F>, F64Divergence)> {
        budget.validate(set.len())?;
        let (outcome, divergence, _) = self
            .sweep_fold_f64_par_impl(shadows, None, metas, base, set, budget, fold)
            .map_err(|payload| {
                crate::error::CoreError::WorkerPanicked(par::panic_message(&payload))
            })?;
        Ok((outcome, divergence))
    }

    /// [`sweep_fold_f64_bounded`](Self::sweep_fold_f64_bounded) fanned
    /// across cores: every worker evaluates the [`ErrorShadow`] alongside
    /// its own spans, and the certificates merge in span order, so both
    /// the fold and the [`F64ErrorBound`] are bit-identical to the
    /// sequential bounded engine at any thread count.
    ///
    /// # Errors
    /// [`CoreError::InfeasibleBudget`](crate::error::CoreError::InfeasibleBudget)
    /// for statically unsatisfiable budgets;
    /// [`CoreError::WorkerPanicked`](crate::error::CoreError::WorkerPanicked)
    /// when a worker panicked (the process and the engines stay usable).
    ///
    /// # Panics
    /// Same conditions as [`sweep_fold_f64`](Self::sweep_fold_f64).
    #[allow(clippy::too_many_arguments)]
    pub fn sweep_fold_f64_bounded_par<F: MergeFold + Send + Sync>(
        &self,
        shadows: (&BatchEvaluator<f64>, &BatchEvaluator<f64>),
        err: &ErrorShadow,
        metas: &[MetaVar],
        base: &Valuation<Rat>,
        set: &ScenarioSet,
        budget: &SweepBudget,
        fold: F,
    ) -> Result<(SweepOutcome<F>, F64ErrorBound)> {
        budget.validate(set.len())?;
        let (outcome, _, bound) = self
            .sweep_fold_f64_par_impl(shadows, Some(err), metas, base, set, budget, fold)
            .map_err(|payload| {
                crate::error::CoreError::WorkerPanicked(par::panic_message(&payload))
            })?;
        Ok((outcome, bound))
    }

    /// The one parallel `f64` engine behind the plain, budgeted and
    /// bounded surfaces (see
    /// [`sweep_fold_f64_impl`](Self::sweep_fold_f64_impl) for the
    /// probe-vs-certificate split).
    #[allow(clippy::too_many_arguments)]
    fn sweep_fold_f64_par_impl<F: MergeFold + Send + Sync>(
        &self,
        shadows: (&BatchEvaluator<f64>, &BatchEvaluator<f64>),
        err: Option<&ErrorShadow>,
        metas: &[MetaVar],
        base: &Valuation<Rat>,
        set: &ScenarioSet,
        budget: &SweepBudget,
        fold: F,
    ) -> std::result::Result<(SweepOutcome<F>, F64Divergence, F64ErrorBound), par::WorkerPanic>
    {
        let (full64, comp64) = shadows;
        let n = set.len();
        let n_target = budget.scenario_cap().map_or(n, |c| c.min(n));
        let np = self.full.program().num_polys();
        self.assert_f64_shadows(full64, comp64);
        if n_target == 0 {
            return Ok((
                outcome_for(fold, 0, n, n_target, None),
                F64Divergence::default(),
                F64ErrorBound::default(),
            ));
        }
        let locals = self
            .full
            .program()
            .num_locals()
            .max(self.compressed.program().num_locals());
        let block = stream_block(np, locals).min(n_target);
        let probes = if err.is_some() {
            Vec::new()
        } else {
            f64_probe_indices(n)
        };
        let check = budget.has_dynamic_limits();
        // Kernel overrides are thread-local: resolve the lane-kernel
        // choice (and the exact-kernel choice the divergence probes
        // follow) here on the calling thread and hand it to every worker.
        let kern = kernel::current();
        let probe_fixed = kernel::exact_fixed_enabled();
        // Probes evaluate the armed twins (flat originals in DAG mode) so
        // they stay fixed-point eligible — see `probe_programs`.
        let (probe_full, probe_comp) = self.probe_programs();
        let abort = CancelToken::new();

        struct Worker<'a, F> {
            binder: PairBinder<'a>,
            full_rows: Vec<Vec<f64>>,
            comp_rows: Vec<Vec<f64>>,
            full_out: Vec<f64>,
            comp_out: Vec<f64>,
            scratch: LaneScratch,
            probe_full_row: Vec<Rat>,
            probe_comp_row: Vec<Rat>,
            probe_out: Vec<Rat>,
            probe_scratch: FixedScratch,
            divergence: F64Divergence,
            abs_rows: Vec<Vec<f64>>,
            abs_comp_rows: Vec<Vec<f64>>,
            abs_full_out: Vec<f64>,
            abs_comp_out: Vec<f64>,
            bound: F64ErrorBound,
            fold: F,
            span: SpanProgress,
        }

        let partials = par::try_par_owned_spans(
            n_target,
            1,
            &abort,
            || Worker {
                binder: PairBinder::new(self, metas, base, set),
                full_rows: (0..block)
                    .map(|_| vec![0.0f64; self.full.program().num_locals()])
                    .collect(),
                comp_rows: (0..block)
                    .map(|_| vec![0.0f64; self.compressed.program().num_locals()])
                    .collect(),
                full_out: vec![0.0f64; block * np],
                comp_out: vec![0.0f64; block * np],
                scratch: LaneScratch::new(),
                probe_full_row: vec![Rat::ZERO; probe_full.num_locals()],
                probe_comp_row: vec![Rat::ZERO; probe_comp.num_locals()],
                probe_out: vec![Rat::ZERO; np],
                probe_scratch: FixedScratch::new(),
                divergence: F64Divergence::default(),
                abs_rows: if err.is_some() {
                    (0..block)
                        .map(|_| vec![0.0f64; self.full.program().num_locals()])
                        .collect()
                } else {
                    Vec::new()
                },
                abs_comp_rows: if err.is_some() {
                    (0..block)
                        .map(|_| vec![0.0f64; self.compressed.program().num_locals()])
                        .collect()
                } else {
                    Vec::new()
                },
                abs_full_out: if err.is_some() {
                    vec![0.0f64; block * np]
                } else {
                    Vec::new()
                },
                abs_comp_out: if err.is_some() {
                    vec![0.0f64; block * np]
                } else {
                    Vec::new()
                },
                bound: F64ErrorBound::default(),
                fold: fold.init(),
                span: SpanProgress::default(),
            },
            |w, range| {
                w.span = SpanProgress::begin(&range);
                // First probe index at or past this span's start.
                let mut next_probe = probes.partition_point(|&p| p < range.start);
                let mut start = range.start;
                while start < range.end {
                    faults::point(faults::Site::Block);
                    if abort.is_cancelled() {
                        w.span.reason = Some(StopReason::Cancelled);
                        break;
                    }
                    if check {
                        if let Some(reason) = budget.stop_reason() {
                            w.span.reason = Some(reason);
                            break;
                        }
                    }
                    let width = block.min(range.end - start);
                    for k in 0..width {
                        w.binder.bind_pair_into_f64(
                            start + k,
                            &mut w.full_rows[k],
                            &mut w.comp_rows[k],
                        );
                    }
                    full64.eval_batch_fast_serial_with(
                        kern,
                        &w.full_rows[..width],
                        &mut w.full_out[..width * np],
                        &mut w.scratch,
                    );
                    comp64.eval_batch_fast_serial_with(
                        kern,
                        &w.comp_rows[..width],
                        &mut w.comp_out[..width * np],
                        &mut w.scratch,
                    );
                    if let Some(err) = err {
                        for k in 0..width {
                            for (a, &x) in w.abs_rows[k].iter_mut().zip(&w.full_rows[k]) {
                                *a = x.abs();
                            }
                            for (a, &x) in w.abs_comp_rows[k].iter_mut().zip(&w.comp_rows[k]) {
                                *a = x.abs();
                            }
                        }
                        err.full_abs.eval_batch_fast_serial_with(
                            kern,
                            &w.abs_rows[..width],
                            &mut w.abs_full_out[..width * np],
                            &mut w.scratch,
                        );
                        err.comp_abs.eval_batch_fast_serial_with(
                            kern,
                            &w.abs_comp_rows[..width],
                            &mut w.abs_comp_out[..width * np],
                            &mut w.scratch,
                        );
                    }
                    for k in 0..width {
                        let i = start + k;
                        let full = &w.full_out[k * np..(k + 1) * np];
                        let compressed = &w.comp_out[k * np..(k + 1) * np];
                        if next_probe < probes.len() && probes[next_probe] == i {
                            next_probe += 1;
                            w.divergence.probed += 1;
                            w.binder.bind_pair_into(
                                i,
                                &mut w.probe_full_row,
                                &mut w.probe_comp_row,
                            );
                            probe_full.eval_scenario_exact_with(
                                probe_fixed,
                                &w.probe_full_row,
                                &mut w.probe_out,
                                &mut w.probe_scratch,
                            );
                            w.divergence.record(&w.probe_out, full);
                            probe_comp.eval_scenario_exact_with(
                                probe_fixed,
                                &w.probe_comp_row,
                                &mut w.probe_out,
                                &mut w.probe_scratch,
                            );
                            w.divergence.record(&w.probe_out, compressed);
                        }
                        if let Some(err) = err {
                            err.record(
                                &mut w.bound,
                                i,
                                full,
                                compressed,
                                &w.abs_full_out[k * np..(k + 1) * np],
                                &w.abs_comp_out[k * np..(k + 1) * np],
                            );
                        }
                        w.fold.accept(FoldItem {
                            scenario: i,
                            full,
                            compressed,
                        });
                    }
                    start += width;
                    w.span.done = start;
                }
            },
        )?;
        let mut fold = fold;
        let mut divergence = F64Divergence::default();
        let mut bound = F64ErrorBound::default();
        let (done, stop) = merge_span_prefix(
            partials
                .into_iter()
                .map(|w| (w.span, (w.fold, w.divergence, w.bound)))
                .collect(),
            |(f, d, b)| {
                fold.merge(f);
                divergence.merge(d);
                bound.merge(b);
            },
        );
        Ok((outcome_for(fold, done, n, n_target, stop), divergence, bound))
    }

    /// Shared shape checks for the `f64` shadow engines.
    fn assert_f64_shadows(&self, full64: &BatchEvaluator<f64>, comp64: &BatchEvaluator<f64>) {
        let np = self.full.program().num_polys();
        assert_eq!(
            np,
            self.compressed.program().num_polys(),
            "polynomial sets must align"
        );
        assert_eq!(
            full64.program().num_polys(),
            np,
            "f64 shadow must mirror the exact full program"
        );
        assert_eq!(
            full64.program().num_locals(),
            self.full.program().num_locals(),
            "f64 shadow must share the full program's variable numbering"
        );
        assert_eq!(
            comp64.program().num_polys(),
            np,
            "f64 shadow must mirror the exact compressed program"
        );
        assert_eq!(
            comp64.program().num_locals(),
            self.compressed.program().num_locals(),
            "f64 shadow must share the compressed program's variable numbering"
        );
    }

    /// Projects and binds every scenario of `set` into materialized
    /// full/compressed row pairs, mapping each value through `map` — the
    /// shared project-and-bind loop behind both the exact sweep and the
    /// `f64` timing path
    /// ([`CobraSession::measure_batch_speedup`](crate::session::CobraSession::measure_batch_speedup)).
    /// `map` is typically the identity (exact rows) or `Rat::to_f64`
    /// (timing rows; the `f64` shadow programs share this program's
    /// variable numbering, so the rows bind directly).
    ///
    /// Unlike [`sweep`](Self::sweep), this deliberately materializes
    /// O(set × locals) row memory: timing paths bind once up front so the
    /// measured runs cover evaluation only. Use `sweep` for result
    /// computation over very large grids.
    pub fn bind_rows<C: Coeff>(
        &self,
        metas: &[MetaVar],
        base: &Valuation<Rat>,
        set: &ScenarioSet,
        map: impl Fn(&Rat) -> C,
    ) -> (Vec<Vec<C>>, Vec<Vec<C>>) {
        let mut binder = PairBinder::new(self, metas, base, set);
        let mut frow = vec![Rat::ZERO; self.full.program().num_locals()];
        let mut crow = vec![Rat::ZERO; self.compressed.program().num_locals()];
        let mut full_rows = Vec::with_capacity(set.len());
        let mut comp_rows = Vec::with_capacity(set.len());
        for i in 0..set.len() {
            binder.bind_pair_into(i, &mut frow, &mut crow);
            full_rows.push(frow.iter().map(&map).collect());
            comp_rows.push(crow.iter().map(&map).collect());
        }
        (full_rows, comp_rows)
    }
}

/// Results of a batched scenario sweep, stored flat: the labels once and
/// one `num_polys`-wide row of exact values per scenario per side —
/// O(scenarios × polynomials) memory with no per-scenario `String`s.
#[derive(Clone, Debug, Default)]
pub struct ScenarioSweep {
    labels: Vec<String>,
    num_scenarios: usize,
    /// Scenario-major full-provenance values (`num_scenarios × num_polys`).
    full: Vec<Rat>,
    /// Scenario-major compressed-provenance values.
    compressed: Vec<Rat>,
}

impl ScenarioSweep {
    /// Number of scenarios evaluated.
    pub fn len(&self) -> usize {
        self.num_scenarios
    }

    /// True iff no scenario was evaluated.
    pub fn is_empty(&self) -> bool {
        self.num_scenarios == 0
    }

    /// Number of result tuples per scenario.
    pub fn num_polys(&self) -> usize {
        self.labels.len()
    }

    /// Result-tuple labels, shared by every scenario.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Full-provenance results of one scenario, in label order.
    pub fn full_row(&self, scenario: usize) -> &[Rat] {
        let np = self.labels.len();
        &self.full[scenario * np..(scenario + 1) * np]
    }

    /// Compressed-provenance results of one scenario, in label order.
    pub fn compressed_row(&self, scenario: usize) -> &[Rat] {
        let np = self.labels.len();
        &self.compressed[scenario * np..(scenario + 1) * np]
    }

    /// Materializes the side-by-side comparison of one scenario.
    pub fn comparison(&self, scenario: usize) -> ResultComparison {
        compare_rows(
            &self.labels,
            self.full_row(scenario).to_vec(),
            self.compressed_row(scenario).to_vec(),
        )
    }

    /// Iterates materialized comparisons in scenario order.
    pub fn comparisons(&self) -> impl ExactSizeIterator<Item = ResultComparison> + '_ {
        (0..self.num_scenarios).map(|s| self.comparison(s))
    }

    /// Largest relative error over every scenario and result tuple.
    pub fn max_rel_error(&self) -> f64 {
        self.full
            .iter()
            .zip(&self.compressed)
            .map(|(f, c)| assign::rel_error_value(f, c))
            .fold(0.0, f64::max)
    }

    /// Largest relative error within one scenario.
    pub fn scenario_max_rel_error(&self, scenario: usize) -> f64 {
        self.full_row(scenario)
            .iter()
            .zip(self.compressed_row(scenario))
            .map(|(f, c)| assign::rel_error_value(f, c))
            .fold(0.0, f64::max)
    }

    /// True iff compression introduced no error in any scenario.
    pub fn is_exact(&self) -> bool {
        self.full == self.compressed
    }
}

/// Results of an **approximate** batched sweep
/// ([`CobraSession::sweep_f64`](crate::session::CobraSession::sweep_f64)):
/// the `f64` sibling of [`ScenarioSweep`], stored flat (labels once, one
/// `num_polys`-wide row per scenario per side) with the measured
/// [`F64Divergence`] of the fast path attached.
#[derive(Clone, Debug, Default)]
pub struct F64ScenarioSweep {
    pub(crate) labels: Vec<String>,
    pub(crate) num_scenarios: usize,
    pub(crate) full: Vec<f64>,
    pub(crate) compressed: Vec<f64>,
    pub(crate) divergence: F64Divergence,
}

impl F64ScenarioSweep {
    /// Number of scenarios evaluated.
    pub fn len(&self) -> usize {
        self.num_scenarios
    }

    /// True iff no scenario was evaluated.
    pub fn is_empty(&self) -> bool {
        self.num_scenarios == 0
    }

    /// Number of result tuples per scenario.
    pub fn num_polys(&self) -> usize {
        self.labels.len()
    }

    /// Result-tuple labels, shared by every scenario.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Full-provenance results of one scenario, in label order.
    pub fn full_row(&self, scenario: usize) -> &[f64] {
        let np = self.labels.len();
        &self.full[scenario * np..(scenario + 1) * np]
    }

    /// Compressed-provenance results of one scenario, in label order.
    pub fn compressed_row(&self, scenario: usize) -> &[f64] {
        let np = self.labels.len();
        &self.compressed[scenario * np..(scenario + 1) * np]
    }

    /// The exact-vs-approximate divergence probe of the sweep.
    pub fn divergence(&self) -> F64Divergence {
        self.divergence
    }

    /// Largest relative full-vs-compressed error over every scenario and
    /// result tuple (the abstraction's worst case over the family, in
    /// floating point).
    pub fn max_rel_error(&self) -> f64 {
        self.full
            .iter()
            .zip(&self.compressed)
            .map(|(f, c)| assign::rel_error_f64(*f, *c))
            .fold(0.0, f64::max)
    }
}

/// Evaluates the scenarios of `scenarios` (leaf-level, merged over `base`)
/// on both the full and the compressed provenance through the compiled
/// batch engine. Each scenario is projected onto the meta-variables by
/// group averaging, exactly like
/// [`CobraSession::assign`](crate::session::CobraSession::assign). Accepts
/// anything convertible to a [`ScenarioSet`] — grids stream through the
/// engine without materializing per-scenario valuations.
///
/// # Panics
/// Panics if some scenario (merged over `base`) does not cover a variable —
/// give `base` a default, as assignment screens always do. Grid and
/// perturbation sets additionally require `base` itself to be total.
pub fn sweep_full_vs_compressed(
    engines: &CompiledComparison,
    metas: &[MetaVar],
    base: &Valuation<Rat>,
    scenarios: impl Into<ScenarioSet>,
) -> ScenarioSweep {
    engines.sweep(metas, base, &scenarios.into())
}

/// Streams every scenario of `set` through a **single** compiled exact
/// engine and folds the per-scenario result rows — the one-sided sibling
/// of [`CompiledComparison::sweep_fold`] for consumers that evaluate one
/// polynomial set without a full/compressed pair
/// ([`sensitivity::scenario_impacts`](crate::sensitivity::scenario_impacts)
/// ranks grid points through it). Scenarios are bound allocation-free by
/// [`RowBinder`] and evaluated in blocks; `f` receives
/// `(accumulator, scenario index, results)` in enumeration order, with
/// the result slice borrowing the block buffer.
///
/// # Panics
/// Panics if `base` is not total over the program (give it a default).
pub fn fold_program_sweep<A>(
    evaluator: &BatchEvaluator<Rat>,
    base: &Valuation<Rat>,
    set: &ScenarioSet,
    init: A,
    f: impl FnMut(A, usize, &[Rat]) -> A,
) -> A {
    match fold_program_sweep_budgeted(evaluator, base, set, &SweepBudget::unlimited(), init, f) {
        Ok(outcome) => outcome.into_fold(),
        Err(_) => unreachable!("unlimited budgets cannot fail"),
    }
}

/// [`fold_program_sweep`] under a [`SweepBudget`] — the single-engine
/// sibling of
/// [`CompiledComparison::sweep_fold_budgeted`]: dynamic limits are polled
/// per block, a scenario cap clamps the swept range deterministically,
/// and an exhausted budget returns the exact fold over the completed
/// prefix as [`SweepOutcome::Partial`].
///
/// # Errors
/// [`CoreError::InfeasibleBudget`](crate::error::CoreError::InfeasibleBudget)
/// when the budget is statically unsatisfiable.
///
/// # Panics
/// Panics if `base` is not total over the program (give it a default).
pub fn fold_program_sweep_budgeted<A>(
    evaluator: &BatchEvaluator<Rat>,
    base: &Valuation<Rat>,
    set: &ScenarioSet,
    budget: &SweepBudget,
    init: A,
    mut f: impl FnMut(A, usize, &[Rat]) -> A,
) -> Result<SweepOutcome<A>> {
    let prog = evaluator.program();
    let np = prog.num_polys();
    let n = set.len();
    budget.validate(n)?;
    let n_target = budget.scenario_cap().map_or(n, |c| c.min(n));
    let binder = RowBinder::new(set, prog, base);
    let block = stream_block(np, prog.num_locals()).min(n_target.max(1));
    let mut rows: Vec<Vec<Rat>> = (0..block)
        .map(|_| vec![Rat::ZERO; prog.num_locals()])
        .collect();
    let mut out = vec![Rat::ZERO; block * np];
    let check = budget.has_dynamic_limits();
    let mut acc = init;
    let mut start = 0;
    let mut stop = None;
    while start < n_target {
        faults::point(faults::Site::Block);
        if check {
            if let Some(reason) = budget.stop_reason() {
                stop = Some(reason);
                break;
            }
        }
        let width = block.min(n_target - start);
        for (k, row) in rows[..width].iter_mut().enumerate() {
            binder.bind_into(start + k, row);
        }
        evaluator.eval_batch_exact_into(&rows[..width], &mut out[..width * np]);
        for k in 0..width {
            acc = f(acc, start + k, &out[k * np..(k + 1) * np]);
        }
        start += width;
    }
    Ok(outcome_for(acc, start, n, n_target, stop))
}

/// [`fold_program_sweep`] fanned across cores: contiguous scenario
/// spans are bound and evaluated by worker-owned state (one
/// [`RowBinder`] + batch buffers + a [`MergeFold`] replica per worker)
/// and the partial accumulators merge in ascending span order — the
/// single-engine sibling of
/// [`CompiledComparison::sweep_fold_par`]. Because there is no
/// full/compressed pair here, each scenario reaches the fold as a
/// [`FoldItem`] whose `full` side carries the program's result row and
/// whose `compressed` side is **empty** — full-side folds
/// ([`ArgmaxImpact`](crate::folds::ArgmaxImpact),
/// [`Histogram`](crate::folds::Histogram),
/// [`TopK`](crate::folds::TopK)) run unchanged, while error folds that
/// zip both sides see no pairs and stay at their identity.
///
/// Results are bit-identical to the sequential [`fold_program_sweep`]
/// at any thread count.
///
/// # Panics
/// Panics if `base` is not total over the program (give it a default).
pub fn fold_program_sweep_par<F: MergeFold + Send + Sync>(
    evaluator: &BatchEvaluator<Rat>,
    base: &Valuation<Rat>,
    set: &ScenarioSet,
    fold: F,
) -> F {
    match fold_program_sweep_par_impl(evaluator, base, set, &SweepBudget::unlimited(), fold) {
        Ok(outcome) => outcome.into_fold(),
        Err(payload) => resume_unwind(payload),
    }
}

/// [`fold_program_sweep_par`] under a [`SweepBudget`] with worker faults
/// isolated — the single-engine sibling of
/// [`CompiledComparison::sweep_fold_par_budgeted`], with the same partial
/// bit-identity and panic-surfacing contracts.
///
/// # Errors
/// [`CoreError::InfeasibleBudget`](crate::error::CoreError::InfeasibleBudget)
/// for statically unsatisfiable budgets;
/// [`CoreError::WorkerPanicked`](crate::error::CoreError::WorkerPanicked)
/// when a worker panicked (the process and the evaluator stay usable).
///
/// # Panics
/// Panics if `base` is not total over the program (give it a default).
pub fn fold_program_sweep_par_budgeted<F: MergeFold + Send + Sync>(
    evaluator: &BatchEvaluator<Rat>,
    base: &Valuation<Rat>,
    set: &ScenarioSet,
    budget: &SweepBudget,
    fold: F,
) -> Result<SweepOutcome<F>> {
    budget.validate(set.len())?;
    fold_program_sweep_par_impl(evaluator, base, set, budget, fold)
        .map_err(|payload| crate::error::CoreError::WorkerPanicked(par::panic_message(&payload)))
}

fn fold_program_sweep_par_impl<F: MergeFold + Send + Sync>(
    evaluator: &BatchEvaluator<Rat>,
    base: &Valuation<Rat>,
    set: &ScenarioSet,
    budget: &SweepBudget,
    fold: F,
) -> std::result::Result<SweepOutcome<F>, par::WorkerPanic> {
    let prog = evaluator.program();
    let np = prog.num_polys();
    let n = set.len();
    let n_target = budget.scenario_cap().map_or(n, |c| c.min(n));
    if n_target == 0 {
        return Ok(outcome_for(fold, 0, n, n_target, None));
    }
    let block = stream_block(np, prog.num_locals()).min(n_target);
    let check = budget.has_dynamic_limits();
    // Kernel overrides are thread-local: resolve the exact-path choice
    // here on the calling thread and hand it to every worker.
    let use_fixed = kernel::exact_fixed_enabled();
    let abort = CancelToken::new();
    let partials = par::try_par_owned_spans(
        n_target,
        1,
        &abort,
        || {
            let rows: Vec<Vec<Rat>> = (0..block)
                .map(|_| vec![Rat::ZERO; prog.num_locals()])
                .collect();
            (
                RowBinder::new(set, prog, base),
                rows,
                vec![Rat::ZERO; block * np],
                fold.init(),
                SpanProgress::default(),
                FixedScratch::new(),
            )
        },
        |state, range| {
            let (binder, rows, out, f, span, scratch) = state;
            *span = SpanProgress::begin(&range);
            let mut start = range.start;
            while start < range.end {
                faults::point(faults::Site::Block);
                if abort.is_cancelled() {
                    span.reason = Some(StopReason::Cancelled);
                    break;
                }
                if check {
                    if let Some(reason) = budget.stop_reason() {
                        span.reason = Some(reason);
                        break;
                    }
                }
                let width = block.min(range.end - start);
                for (k, row) in rows[..width].iter_mut().enumerate() {
                    binder.bind_into(start + k, row);
                }
                evaluator.eval_batch_exact_serial_with(
                    use_fixed,
                    &rows[..width],
                    &mut out[..width * np],
                    scratch,
                );
                for k in 0..width {
                    f.accept(FoldItem {
                        scenario: start + k,
                        full: &out[k * np..(k + 1) * np],
                        compressed: &[],
                    });
                }
                start += width;
                span.done = start;
            }
        },
    )?;
    let mut fold = fold;
    let (done, stop) = merge_span_prefix(
        partials.into_iter().map(|p| (p.4, p.3)).collect(),
        |partial| fold.merge(partial),
    );
    Ok(outcome_for(fold, done, n, n_target, stop))
}

/// The canonical leaf/meta valuation pair for one scenario: the scenario
/// merged over the base, and its projection onto the meta-variables by
/// group averaging. Every assignment and timing path shares this rule.
pub(crate) fn project_pair(
    metas: &[MetaVar],
    base: &Valuation<Rat>,
    scenario: &Valuation<Rat>,
) -> (Valuation<Rat>, Valuation<Rat>) {
    let leaf_val = base.overridden_by(scenario);
    let meta_val = leaf_val.overridden_by(&assign::project_scenario(metas, &leaf_val));
    (leaf_val, meta_val)
}

/// Pairs full and compressed result values by position into a
/// [`ResultComparison`].
///
/// # Panics
/// Panics unless both value vectors have exactly one entry per label —
/// the full and compressed polynomial sets must align.
pub(crate) fn compare_rows(
    labels: &[String],
    full: Vec<Rat>,
    compressed: Vec<Rat>,
) -> ResultComparison {
    assert_eq!(labels.len(), full.len(), "polynomial sets must align");
    assert_eq!(labels.len(), compressed.len(), "polynomial sets must align");
    ResultComparison {
        rows: labels
            .iter()
            .zip(full.into_iter().zip(compressed))
            .map(|(label, (full, compressed))| ResultRow {
                label: label.clone(),
                full,
                compressed,
            })
            .collect(),
    }
}

/// Where an override lands on the compressed side.
#[derive(Clone, Copy, Debug)]
enum CompTarget {
    /// The variable survives compression: write its local directly (or
    /// nothing, if the compressed program never mentions it).
    Direct(Option<u32>),
    /// The variable is a grouped leaf: fold its delta into the group
    /// average (index into the binder's group plans).
    Group(u32),
    /// The variable *is* a meta-variable: leaf-level scenarios cannot set
    /// metas directly — the group-average projection always wins, exactly
    /// like the materialized path.
    Ignore,
}

/// One override slot of a grid axis (or perturbation family), resolved
/// against both programs once at binder construction. The `f64` shadow of
/// the base value rides along so the approximate bind path never touches
/// `Rat` arithmetic per scenario.
#[derive(Clone, Copy, Debug)]
struct PairSlot {
    full_local: Option<u32>,
    target: CompTarget,
    base_val: Rat,
    base_val_f64: f64,
}

/// A touched meta-variable group: its compressed-side local plus the
/// base-valuation sum over its leaves, so per-scenario averages are
/// `(base_sum + Σ deltas) / count` — bit-identical to re-averaging.
#[derive(Clone, Copy, Debug)]
struct GroupPlan {
    comp_local: Option<u32>,
    base_sum: Rat,
    base_sum_f64: f64,
    count: usize,
}

/// Binds [`ScenarioSet`] scenarios into full/compressed scenario-row pairs
/// with the meta-variable projection applied — the allocation-free heart
/// of the sweep. Explicit (materialized) sets fall back to the classic
/// merge-project-bind per scenario; grids and perturbations reuse cached
/// base rows and touch only their overrides.
pub struct PairBinder<'a> {
    set: &'a ScenarioSet,
    metas: &'a [MetaVar],
    base: &'a Valuation<Rat>,
    full: &'a EvalProgram<Rat>,
    comp: &'a EvalProgram<Rat>,
    base_full_row: Vec<Rat>,
    base_comp_row: Vec<Rat>,
    /// Override slots per axis (grids) or one flat list (perturbations).
    slots: Vec<Vec<PairSlot>>,
    groups: Vec<GroupPlan>,
    /// Per-scenario group-delta accumulator (zeroed on every bind).
    scratch: Vec<Rat>,
    /// `f64` shadows of the cached base rows and the group scratch, built
    /// lazily on the first [`bind_pair_into_f64`](Self::bind_pair_into_f64)
    /// call — exact-only sweeps never pay for the copies.
    f64_ready: bool,
    base_full_row_f64: Vec<f64>,
    base_comp_row_f64: Vec<f64>,
    scratch_f64: Vec<f64>,
    /// Exact scratch rows for the explicit-set `f64` path (explicit
    /// scenarios are merged and projected exactly, then converted).
    explicit_full_scratch: Vec<Rat>,
    explicit_comp_scratch: Vec<Rat>,
}

impl<'a> PairBinder<'a> {
    /// Prepares a binder for `set` against a compiled engine pair.
    ///
    /// # Panics
    /// For grid/perturbation sets, panics if `base` does not cover every
    /// program variable (explicit sets defer the totality check to each
    /// scenario, matching the materialized path).
    pub fn new(
        engines: &'a CompiledComparison,
        metas: &'a [MetaVar],
        base: &'a Valuation<Rat>,
        set: &'a ScenarioSet,
    ) -> PairBinder<'a> {
        let full = engines.full.program();
        let comp = engines.compressed.program();
        let mut binder = PairBinder {
            set,
            metas,
            base,
            full,
            comp,
            base_full_row: Vec::new(),
            base_comp_row: Vec::new(),
            slots: Vec::new(),
            groups: Vec::new(),
            scratch: Vec::new(),
            f64_ready: false,
            base_full_row_f64: Vec::new(),
            base_comp_row_f64: Vec::new(),
            scratch_f64: Vec::new(),
            explicit_full_scratch: Vec::new(),
            explicit_comp_scratch: Vec::new(),
        };
        if set.explicit().is_some() {
            return binder; // per-scenario merge path needs no plan
        }
        binder.base_full_row = full.bind(base).expect("leaf valuation must be total");
        let base_meta = base.overridden_by(&assign::project_scenario(metas, base));
        binder.base_comp_row = comp
            .bind(&base_meta)
            .expect("meta valuation must be total");

        let meta_vars: FxHashSet<Var> = metas.iter().map(|m| m.var).collect();
        let mut leaf_group: FxHashMap<Var, usize> = FxHashMap::default();
        for (g, meta) in metas.iter().enumerate() {
            for &leaf in &meta.leaves {
                leaf_group.insert(leaf, g);
            }
        }
        let mut group_slot: FxHashMap<usize, u32> = FxHashMap::default();
        let mut plan_slot = |binder: &mut PairBinder<'a>, v: Var| {
            // Grouped-leaf membership wins over meta-var identity: a cut
            // at a leaf keeps the leaf's own variable as its (one-leaf)
            // meta, and the projection then passes overrides through as
            // the trivial average — exactly the materialized semantics.
            let target = if let Some(&g) = leaf_group.get(&v) {
                let slot = *group_slot.entry(g).or_insert_with(|| {
                    let meta = &metas[g];
                    let base_sum: Rat =
                        meta.leaves.iter().map(|&l| base_value(base, l)).sum();
                    binder.groups.push(GroupPlan {
                        comp_local: comp.local_of(meta.var),
                        base_sum,
                        base_sum_f64: base_sum.to_f64(),
                        count: meta.leaves.len(),
                    });
                    (binder.groups.len() - 1) as u32
                });
                CompTarget::Group(slot)
            } else if meta_vars.contains(&v) {
                CompTarget::Ignore
            } else {
                CompTarget::Direct(comp.local_of(v))
            };
            let base_val = base_value(base, v);
            PairSlot {
                full_local: full.local_of(v),
                target,
                base_val,
                base_val_f64: base_val.to_f64(),
            }
        };
        if let Some(axes) = set.axes() {
            let planned: Vec<Vec<PairSlot>> = axes
                .iter()
                .map(|axis| {
                    axis.vars()
                        .iter()
                        .map(|&v| plan_slot(&mut binder, v))
                        .collect()
                })
                .collect();
            binder.slots = planned;
        } else if let Some((vars, _, _)) = set.perturbation() {
            let planned: Vec<PairSlot> = vars.iter().map(|&v| plan_slot(&mut binder, v)).collect();
            binder.slots = vec![planned];
        }
        binder.scratch = vec![Rat::ZERO; binder.groups.len()];
        binder
    }

    /// Binds scenario `i` into the two row buffers.
    ///
    /// # Panics
    /// Panics if `i >= set.len()`, a buffer width mismatches its program,
    /// or (explicit sets) the merged valuation is not total.
    pub fn bind_pair_into(&mut self, i: usize, full_row: &mut [Rat], comp_row: &mut [Rat]) {
        if let Some(scenarios) = self.set.explicit() {
            let (leaf_val, meta_val) = project_pair(self.metas, self.base, &scenarios[i]);
            self.full
                .bind_into(&leaf_val, full_row)
                .expect("leaf valuation must be total");
            self.comp
                .bind_into(&meta_val, comp_row)
                .expect("meta valuation must be total");
            return;
        }
        assert!(i < self.set.len(), "scenario index {i} out of range");
        full_row.copy_from_slice(&self.base_full_row);
        comp_row.copy_from_slice(&self.base_comp_row);
        if let Some(axes) = self.set.axes() {
            for d in &mut self.scratch {
                *d = Rat::ZERO;
            }
            let slots = &self.slots;
            let scratch = &mut self.scratch;
            for_each_grid_digit(axes, i, |j, digit| {
                let axis = &axes[j];
                let level = axis.levels()[digit];
                for s in &slots[j] {
                    let new = axis.op().apply(s.base_val, level);
                    if let Some(fl) = s.full_local {
                        full_row[fl as usize] = new;
                    }
                    match s.target {
                        CompTarget::Direct(Some(cl)) => comp_row[cl as usize] = new,
                        CompTarget::Direct(None) | CompTarget::Ignore => {}
                        CompTarget::Group(g) => scratch[g as usize] += new - s.base_val,
                    }
                }
            });
            for (plan, delta) in self.groups.iter().zip(&self.scratch) {
                if let Some(cl) = plan.comp_local {
                    comp_row[cl as usize] =
                        (plan.base_sum + *delta) / Rat::int(plan.count as i64);
                }
            }
        } else if let Some((_, delta, op)) = self.set.perturbation() {
            let s = self.slots[0][i];
            let new = op.apply(s.base_val, delta);
            if let Some(fl) = s.full_local {
                full_row[fl as usize] = new;
            }
            match s.target {
                CompTarget::Direct(Some(cl)) => comp_row[cl as usize] = new,
                CompTarget::Direct(None) | CompTarget::Ignore => {}
                CompTarget::Group(g) => {
                    let plan = &self.groups[g as usize];
                    if let Some(cl) = plan.comp_local {
                        comp_row[cl as usize] = (plan.base_sum + (new - s.base_val))
                            / Rat::int(plan.count as i64);
                    }
                }
            }
        }
    }

    /// Builds the lazily initialized `f64` shadows of the cached base
    /// rows (grid/perturbation sets) or the exact scratch rows (explicit
    /// sets).
    fn ensure_f64(&mut self) {
        if self.f64_ready {
            return;
        }
        self.f64_ready = true;
        if self.set.explicit().is_some() {
            self.explicit_full_scratch = vec![Rat::ZERO; self.full.num_locals()];
            self.explicit_comp_scratch = vec![Rat::ZERO; self.comp.num_locals()];
        } else {
            self.base_full_row_f64 = self.base_full_row.iter().map(|r| r.to_f64()).collect();
            self.base_comp_row_f64 = self.base_comp_row.iter().map(|r| r.to_f64()).collect();
            self.scratch_f64 = vec![0.0; self.groups.len()];
        }
    }

    /// Binds scenario `i` into two **`f64`** row buffers — the
    /// approximate bind path of [`CompiledComparison::sweep_fold_f64`].
    /// Grid and perturbation overrides are resolved in floating point
    /// against cached `f64` base rows (one write per override, group
    /// averages included), so per-scenario work involves no `Rat`
    /// arithmetic at all; explicit scenarios are merged and projected
    /// exactly, then converted. The rows bind against the `f64` shadow
    /// programs, which share the exact programs' variable numbering.
    ///
    /// # Panics
    /// Same conditions as [`bind_pair_into`](Self::bind_pair_into).
    pub fn bind_pair_into_f64(&mut self, i: usize, full_row: &mut [f64], comp_row: &mut [f64]) {
        self.ensure_f64();
        if self.set.explicit().is_some() {
            let mut frow = std::mem::take(&mut self.explicit_full_scratch);
            let mut crow = std::mem::take(&mut self.explicit_comp_scratch);
            self.bind_pair_into(i, &mut frow, &mut crow);
            for (slot, r) in full_row.iter_mut().zip(&frow) {
                *slot = r.to_f64();
            }
            for (slot, r) in comp_row.iter_mut().zip(&crow) {
                *slot = r.to_f64();
            }
            self.explicit_full_scratch = frow;
            self.explicit_comp_scratch = crow;
            return;
        }
        assert!(i < self.set.len(), "scenario index {i} out of range");
        full_row.copy_from_slice(&self.base_full_row_f64);
        comp_row.copy_from_slice(&self.base_comp_row_f64);
        if let Some(axes) = self.set.axes() {
            for d in &mut self.scratch_f64 {
                *d = 0.0;
            }
            let slots = &self.slots;
            let scratch = &mut self.scratch_f64;
            for_each_grid_digit(axes, i, |j, digit| {
                let axis = &axes[j];
                let level = axis.levels()[digit].to_f64();
                for s in &slots[j] {
                    let new = axis.op().apply_f64(s.base_val_f64, level);
                    if let Some(fl) = s.full_local {
                        full_row[fl as usize] = new;
                    }
                    match s.target {
                        CompTarget::Direct(Some(cl)) => comp_row[cl as usize] = new,
                        CompTarget::Direct(None) | CompTarget::Ignore => {}
                        CompTarget::Group(g) => {
                            scratch[g as usize] += new - s.base_val_f64
                        }
                    }
                }
            });
            for (plan, delta) in self.groups.iter().zip(&self.scratch_f64) {
                if let Some(cl) = plan.comp_local {
                    comp_row[cl as usize] =
                        (plan.base_sum_f64 + *delta) / plan.count as f64;
                }
            }
        } else if let Some((_, delta, op)) = self.set.perturbation() {
            let s = self.slots[0][i];
            let new = op.apply_f64(s.base_val_f64, delta.to_f64());
            if let Some(fl) = s.full_local {
                full_row[fl as usize] = new;
            }
            match s.target {
                CompTarget::Direct(Some(cl)) => comp_row[cl as usize] = new,
                CompTarget::Direct(None) | CompTarget::Ignore => {}
                CompTarget::Group(g) => {
                    let plan = &self.groups[g as usize];
                    if let Some(cl) = plan.comp_local {
                        comp_row[cl as usize] = (plan.base_sum_f64
                            + (new - s.base_val_f64))
                            / plan.count as f64;
                    }
                }
            }
        }
    }
}

/// Times a batched sweep of `scenarios` over the full and the compressed
/// provenance on the `f64` fast path — the batched generalization of
/// [`assign::measure_assignment_speedup`]. Reported durations cover the
/// *whole batch* (binding excluded, evaluation only), best-of-`runs` after
/// `warmup` rounds.
pub fn measure_sweep_speedup(
    full: &BatchEvaluator<f64>,
    compressed: &BatchEvaluator<f64>,
    full_rows: &[Vec<f64>],
    comp_rows: &[Vec<f64>],
    warmup: usize,
    runs: usize,
) -> SpeedupMeasurement {
    let (_, full_time) = time_best_of(warmup, runs, || {
        std::hint::black_box(full.eval_batch_fast(full_rows).num_scenarios())
    });
    let (_, compressed_time) = time_best_of(warmup, runs, || {
        std::hint::black_box(compressed.eval_batch_fast(comp_rows).num_scenarios())
    });
    SpeedupMeasurement {
        full_time,
        compressed_time,
        full_size: full.program().num_terms(),
        compressed_size: compressed.program().num_terms(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply::apply_cut;
    use crate::assign::uniform_scenario;
    use crate::cut::Cut;
    use crate::tree::paper_plans_tree;
    use cobra_provenance::{parse_polyset, VarRegistry};

    fn rat(s: &str) -> Rat {
        Rat::parse(s).unwrap()
    }

    fn setup() -> (
        VarRegistry,
        PolySet<Rat>,
        crate::apply::AppliedAbstraction<Rat>,
    ) {
        let mut reg = VarRegistry::new();
        let tree = paper_plans_tree(&mut reg);
        let src = "\
P1 = 208.8*p1*m1 + 240*p1*m3 + 127.4*f1*m1 + 114.45*f1*m3 \
   + 75.9*y1*m1 + 72.5*y1*m3 + 42*v*m1 + 24.2*v*m3
P2 = 77.9*b1*m1 + 80.5*b1*m3 + 52.2*e*m1 + 56.5*e*m3 + 69.7*b2*m1 + 100.65*b2*m3";
        let set = parse_polyset(src, &mut reg).unwrap();
        let cut = Cut::from_names(&tree, &["Business", "Special", "Standard"]).unwrap();
        let applied = apply_cut(&set, &tree, &cut, &mut reg);
        (reg, set, applied)
    }

    #[test]
    fn sweep_matches_single_scenario_evaluation() {
        let (mut reg, set, applied) = setup();
        let engines = CompiledComparison::compile(&set, &applied.compressed);
        let base = Valuation::with_default(Rat::ONE);
        let b_vars = ["b1", "b2", "e"].map(|n| reg.var(n));
        let m3 = reg.var("m3");
        let scenarios = vec![
            uniform_scenario(&b_vars, rat("1.1")),
            Valuation::with_default(Rat::ONE).bind(m3, rat("0.8")),
            uniform_scenario(&[b_vars[0]], rat("1.3")),
        ];
        let sweep = sweep_full_vs_compressed(&engines, &applied.meta_vars, &base, &scenarios);
        assert_eq!(sweep.len(), 3);
        assert_eq!(sweep.num_polys(), 2);
        for (scenario, cmp) in scenarios.iter().zip(sweep.comparisons()) {
            let leaf_val = base.overridden_by(scenario);
            let meta_val = leaf_val
                .overridden_by(&assign::project_scenario(&applied.meta_vars, &leaf_val));
            let expected = ResultComparison::evaluate(
                &set,
                &leaf_val,
                &applied.compressed,
                &meta_val,
            );
            assert_eq!(cmp.rows, expected.rows);
        }
        // aligned scenarios are exact, the misaligned third one is not
        assert!(sweep.comparison(0).is_exact());
        assert!(sweep.comparison(1).is_exact());
        assert!(!sweep.comparison(2).is_exact());
        assert!(!sweep.is_exact());
        assert!(sweep.max_rel_error() > 0.0);
        assert_eq!(sweep.scenario_max_rel_error(0), 0.0);
        assert!(sweep.scenario_max_rel_error(2) > 0.0);
    }

    #[test]
    fn grid_sweep_is_bit_identical_to_materialized_sweep() {
        let (mut reg, set, applied) = setup();
        let engines = CompiledComparison::compile(&set, &applied.compressed);
        let base = Valuation::with_default(Rat::ONE);
        let m3 = reg.var("m3");
        let b_vars = ["b1", "b2", "e"].map(|n| reg.var(n));
        let y1 = reg.var("y1");
        let grid = ScenarioSet::grid()
            .axis([m3], [rat("0.8"), rat("1"), rat("1.25")])
            .axis(b_vars, [rat("0.9"), rat("1.1")])
            // y1 alone inside the Special group: a lossy, partial touch
            .scale_axis([y1], [rat("1"), rat("1.05")])
            .build()
            .unwrap();
        assert_eq!(grid.len(), 12);
        let by_grid = engines.sweep(&applied.meta_vars, &base, &grid);
        let flat = grid.materialize(&base);
        let by_vec = sweep_full_vs_compressed(&engines, &applied.meta_vars, &base, &flat[..]);
        assert_eq!(by_grid.len(), by_vec.len());
        for i in 0..by_grid.len() {
            assert_eq!(by_grid.full_row(i), by_vec.full_row(i), "scenario {i}");
            assert_eq!(
                by_grid.compressed_row(i),
                by_vec.compressed_row(i),
                "scenario {i}"
            );
        }
        // uniform business change is exact; scaling b1 alone inside the
        // group is lossy — the grid must reproduce both regimes
        assert!(by_grid.comparison(0).is_exact());
        assert!(!by_grid.is_exact());
    }

    #[test]
    fn perturbation_sweep_matches_materialized() {
        let (mut reg, set, applied) = setup();
        let engines = CompiledComparison::compile(&set, &applied.compressed);
        let base = Valuation::with_default(Rat::ONE);
        let vars: Vec<Var> = ["b1", "m3", "p1", "v"].iter().map(|n| reg.var(n)).collect();
        let perturb = ScenarioSet::perturb_each(vars, rat("0.125"));
        let by_set = engines.sweep(&applied.meta_vars, &base, &perturb);
        let flat = perturb.materialize(&base);
        let by_vec = sweep_full_vs_compressed(&engines, &applied.meta_vars, &base, &flat[..]);
        for i in 0..by_set.len() {
            assert_eq!(by_set.full_row(i), by_vec.full_row(i), "scenario {i}");
            assert_eq!(by_set.compressed_row(i), by_vec.compressed_row(i), "scenario {i}");
        }
    }

    #[test]
    fn bind_rows_matches_sweep_rows() {
        let (mut reg, set, applied) = setup();
        let engines = CompiledComparison::compile(&set, &applied.compressed);
        let base = Valuation::with_default(Rat::ONE);
        let m3 = reg.var("m3");
        let grid = ScenarioSet::grid()
            .axis([m3], [rat("0.8"), rat("0.9"), rat("1")])
            .build()
            .unwrap();
        let (full_rows, comp_rows) = engines.bind_rows(&applied.meta_vars, &base, &grid, |r| *r);
        assert_eq!(full_rows.len(), 3);
        let full_batch = engines.full.eval_batch(&full_rows);
        let comp_batch = engines.compressed.eval_batch(&comp_rows);
        let sweep = engines.sweep(&applied.meta_vars, &base, &grid);
        for i in 0..3 {
            assert_eq!(full_batch.row(i), sweep.full_row(i));
            assert_eq!(comp_batch.row(i), sweep.compressed_row(i));
        }
        // f64 mapping binds against the shadow programs directly
        let (f64_rows, _) = engines.bind_rows(&applied.meta_vars, &base, &grid, |r| r.to_f64());
        assert_eq!(f64_rows[0].len(), engines.full.program().num_locals());
    }

    #[test]
    fn sweep_fold_streams_in_enumeration_order() {
        let (mut reg, set, applied) = setup();
        let engines = CompiledComparison::compile(&set, &applied.compressed);
        let base = Valuation::with_default(Rat::ONE);
        let m3 = reg.var("m3");
        let b_vars = ["b1", "b2", "e"].map(|n| reg.var(n));
        let grid = ScenarioSet::grid()
            .axis([m3], [rat("0.8"), rat("1"), rat("1.25")])
            .axis(b_vars, [rat("0.9"), rat("1.1")])
            .build()
            .unwrap();
        let sweep = engines.sweep(&applied.meta_vars, &base, &grid);
        // an appending fold reproduces the materialized sweep bit for bit,
        // and scenarios arrive strictly in enumeration order
        let (order, rows) = engines.sweep_fold(
            &applied.meta_vars,
            &base,
            &grid,
            (Vec::new(), Vec::new()),
            |(mut order, mut rows): (Vec<usize>, Vec<Rat>), item| {
                order.push(item.scenario);
                rows.extend_from_slice(item.full);
                rows.extend_from_slice(item.compressed);
                (order, rows)
            },
        );
        assert_eq!(order, (0..grid.len()).collect::<Vec<_>>());
        for i in 0..grid.len() {
            let np = sweep.num_polys();
            assert_eq!(&rows[2 * i * np..(2 * i + 1) * np], sweep.full_row(i));
            assert_eq!(
                &rows[(2 * i + 1) * np..(2 * i + 2) * np],
                sweep.compressed_row(i)
            );
        }
    }

    #[test]
    fn f64_fold_tracks_exact_path_and_records_divergence() {
        let (mut reg, set, applied) = setup();
        let engines = CompiledComparison::compile(&set, &applied.compressed);
        let full64 = BatchEvaluator::new(engines.full.program().to_f64_program());
        let comp64 = BatchEvaluator::new(engines.compressed.program().to_f64_program());
        let base = Valuation::with_default(Rat::ONE);
        let m3 = reg.var("m3");
        let y1 = reg.var("y1");
        let b_vars = ["b1", "b2", "e"].map(|n| reg.var(n));
        let grid = ScenarioSet::grid()
            .axis([m3], [rat("0.8"), rat("1"), rat("1.25")])
            .scale_axis(b_vars, [rat("0.9"), rat("1.1")])
            .shift_axis([y1], [rat("0"), rat("0.125")])
            .build()
            .unwrap();
        let exact = engines.sweep(&applied.meta_vars, &base, &grid);
        let (approx, div) = engines.sweep_fold_f64(
            (&full64, &comp64),
            &applied.meta_vars,
            &base,
            &grid,
            Vec::new(),
            |mut rows: Vec<(Vec<f64>, Vec<f64>)>, item| {
                rows.push((item.full.to_vec(), item.compressed.to_vec()));
                rows
            },
        );
        assert_eq!(approx.len(), grid.len());
        assert!(div.probed > 0 && div.probed <= grid.len());
        assert!(div.max_rel_divergence < 1e-12, "divergence {div:?}");
        for (i, (full, comp)) in approx.iter().enumerate() {
            for (e, a) in exact.full_row(i).iter().zip(full) {
                assert!((e.to_f64() - a).abs() <= 1e-9 * e.to_f64().abs().max(1.0));
            }
            for (e, a) in exact.compressed_row(i).iter().zip(comp) {
                assert!((e.to_f64() - a).abs() <= 1e-9 * e.to_f64().abs().max(1.0));
            }
        }
    }

    #[test]
    fn f64_fold_handles_explicit_and_perturbation_sets() {
        let (mut reg, set, applied) = setup();
        let engines = CompiledComparison::compile(&set, &applied.compressed);
        let full64 = BatchEvaluator::new(engines.full.program().to_f64_program());
        let comp64 = BatchEvaluator::new(engines.compressed.program().to_f64_program());
        let base = Valuation::with_default(Rat::ONE);
        let m3 = reg.var("m3");
        let b1 = reg.var("b1");
        let explicit = [
            Valuation::with_default(Rat::ONE).bind(m3, rat("0.8")),
            Valuation::with_default(Rat::ONE).bind(b1, rat("1.3")),
        ];
        let perturb = ScenarioSet::perturb_each([m3, b1], rat("0.25"));
        for family in [ScenarioSet::from(&explicit[..]), perturb] {
            let exact = engines.sweep(&applied.meta_vars, &base, &family);
            let (approx, div) = engines.sweep_fold_f64(
                (&full64, &comp64),
                &applied.meta_vars,
                &base,
                &family,
                Vec::new(),
                |mut rows: Vec<Vec<f64>>, item| {
                    rows.push(item.full.to_vec());
                    rows
                },
            );
            assert_eq!(div.probed, family.len().min(16));
            for (i, full) in approx.iter().enumerate() {
                for (e, a) in exact.full_row(i).iter().zip(full) {
                    assert!((e.to_f64() - a).abs() <= 1e-9 * e.to_f64().abs().max(1.0));
                }
            }
        }
    }

    #[test]
    fn fold_program_sweep_matches_direct_evaluation() {
        let (mut reg, set, _) = setup();
        let evaluator = BatchEvaluator::compile(&set);
        let base = Valuation::with_default(Rat::ONE);
        let m3 = reg.var("m3");
        let grid = ScenarioSet::grid()
            .axis([m3], [rat("0.8"), rat("0.9"), rat("1"), rat("1.1")])
            .build()
            .unwrap();
        let rows = fold_program_sweep(
            &evaluator,
            &base,
            &grid,
            Vec::new(),
            |mut acc: Vec<Vec<Rat>>, i, results| {
                assert_eq!(i, acc.len());
                acc.push(results.to_vec());
                acc
            },
        );
        assert_eq!(rows.len(), 4);
        for (i, row) in rows.iter().enumerate() {
            let val = base.overridden_by(&grid.scenario_valuation(i, &base));
            for ((_, expected), got) in set.eval(&val).unwrap().iter().zip(row) {
                assert_eq!(expected, got, "scenario {i}");
            }
        }
    }

    #[test]
    fn empty_sweep() {
        let (_, set, applied) = setup();
        let engines = CompiledComparison::compile(&set, &applied.compressed);
        let sweep = sweep_full_vs_compressed(
            &engines,
            &applied.meta_vars,
            &Valuation::with_default(Rat::ONE),
            &[][..],
        );
        assert!(sweep.is_empty());
        assert!(sweep.is_exact());
        assert_eq!(sweep.max_rel_error(), 0.0);
    }

    #[test]
    fn sweep_speedup_reports_batch_sizes() {
        let (_, set, applied) = setup();
        let full = BatchEvaluator::new(
            cobra_provenance::EvalProgram::compile(&set).to_f64_program(),
        );
        let compressed = BatchEvaluator::new(
            cobra_provenance::EvalProgram::compile(&applied.compressed).to_f64_program(),
        );
        let full_rows: Vec<Vec<f64>> =
            (0..16).map(|_| vec![1.0; full.program().num_locals()]).collect();
        let comp_rows: Vec<Vec<f64>> = (0..16)
            .map(|_| vec![1.0; compressed.program().num_locals()])
            .collect();
        let m = measure_sweep_speedup(&full, &compressed, &full_rows, &comp_rows, 1, 3);
        assert_eq!(m.full_size, 14);
        assert_eq!(m.compressed_size, 6);
        assert!(m.speedup_percent() <= 100.0);
    }
}
