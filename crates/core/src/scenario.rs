//! Batched scenario sweeps: many hypotheticals in one compiled pass.
//!
//! The interactive loop the paper demonstrates — "what if March prices
//! dropped 20%? what if business plans rose 10%? …" — evaluates the same
//! provenance under many valuations. Instead of re-walking the term lists
//! per scenario, this module compiles the full and compressed polynomial
//! sets once (via [`cobra_provenance::compile`]) and evaluates whole
//! scenario batches through the same engine, so full-vs-compressed numbers
//! are produced under identical evaluation machinery.
//!
//! Scenario *families* arrive as [`ScenarioSet`]s. Grid- and
//! perturbation-shaped sets are bound **allocation-free**: the
//! [`PairBinder`] caches the base scenario row for both programs once,
//! then each scenario is a row `memcpy` plus one write per override —
//! meta-variable group averages are maintained incrementally, so a
//! 10⁶-scenario grid streams through the lane-blocked kernel without ever
//! materializing a `Vec<Valuation>`.

use crate::assign::{self, ResultComparison, ResultRow, SpeedupMeasurement};
use crate::cut::MetaVar;
use crate::folds::MergeFold;
use crate::scenario_set::{base_value, for_each_grid_digit, RowBinder, ScenarioSet};
use cobra_provenance::compile::LANES;
use cobra_provenance::{
    BatchEvaluator, Coeff, EvalProgram, LaneScratch, PolySet, Valuation, Var,
};
use cobra_util::timing::time_best_of;
use cobra_util::{par, FxHashMap, FxHashSet, Rat};

/// Scenarios bound and evaluated per streamed block: a handful of lane
/// blocks, so peak transient memory stays O(block × row) regardless of the
/// set's cardinality while the batch kernel still gets full lanes.
const STREAM_BLOCK: usize = 16 * LANES;

/// Scenarios per streamed block, capped so the transient buffers stay
/// bounded regardless of program shape: the result buffers
/// (`block × num_polys` values per side) around 64k values, and the
/// scenario-row buffers (`block × num_locals` values per side) around a
/// million values even for 10⁵+-variable programs. Whenever the cap
/// allows it the block is a whole number of `f64` lane groups, so the
/// lane kernel sees no ragged tail inside a sweep.
fn stream_block(num_polys: usize, num_locals: usize) -> usize {
    let by_results = (1usize << 16) / num_polys.max(1);
    let by_rows = (1usize << 20) / num_locals.max(1);
    let block = by_results.min(by_rows).min(STREAM_BLOCK);
    if block >= LANES {
        (block / LANES) * LANES
    } else {
        block.max(1)
    }
}

/// Exact-vs-approximate probe scenarios per `f64` fold-sweep: evenly
/// spaced grid points re-evaluated on the exact engines to measure the
/// divergence of the `f64` fast path (see [`F64Divergence`]).
pub const F64_PROBES: usize = 16;

/// One streamed scenario handed to a fold: the scenario's index in the
/// set's enumeration order plus its full-side and compressed-side result
/// rows (one value per polynomial, in label order). The rows borrow the
/// engine's block buffers — copy out whatever the fold needs to keep.
#[derive(Debug)]
pub struct FoldItem<'a, C> {
    /// Index of the scenario in the [`ScenarioSet`] enumeration order.
    pub scenario: usize,
    /// Full-provenance results, in label order.
    pub full: &'a [C],
    /// Compressed-provenance results, in label order.
    pub compressed: &'a [C],
}

// Manual impls: the derive would demand `C: Copy`, but the fields are
// shared slices — items are freely copyable for any coefficient type
// (tuple folds hand the same item to each component).
impl<C> Clone for FoldItem<'_, C> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<C> Copy for FoldItem<'_, C> {}

/// Measured divergence of an approximate (`f64`) fold-sweep from the
/// exact path: up to [`F64_PROBES`] evenly spaced scenarios are re-bound
/// and re-evaluated on the exact `Rat` engines, and the largest relative
/// deviation over both sides and all result tuples is recorded. This is
/// an *empirical spot check* of floating-point rounding (coefficients,
/// binding and evaluation all round), not a proven worst-case bound —
/// for SPJ-style provenance with well-scaled coefficients it sits at the
/// unit-roundoff scale (≈1e-16, see the `e10` experiment).
#[derive(Clone, Copy, Debug, Default)]
pub struct F64Divergence {
    /// Number of scenarios re-evaluated exactly.
    pub probed: usize,
    /// Largest relative deviation `|approx − exact| / |exact|` observed
    /// over the probes (both sides, every result tuple); 0 when nothing
    /// diverged, ∞ if the exact value was zero but the float was not.
    pub max_rel_divergence: f64,
}

impl F64Divergence {
    fn record(&mut self, exact: &[Rat], approx: &[f64]) {
        for (e, a) in exact.iter().zip(approx) {
            let d = assign::rel_error_f64(e.to_f64(), *a);
            self.max_rel_divergence = self.max_rel_divergence.max(d);
        }
    }

    /// Combines disjoint probe sets (parallel workers probe the scenarios
    /// falling in their own spans): counts add, maxima max — commutative,
    /// so the combined record is independent of the worker partition.
    fn merge(&mut self, other: F64Divergence) {
        self.probed += other.probed;
        self.max_rel_divergence = self.max_rel_divergence.max(other.max_rel_divergence);
    }
}

/// The evenly spaced probe indices of an `n`-scenario `f64` sweep:
/// up to [`F64_PROBES`] indices, deduplicated (`n` may be smaller).
/// Factored out so the sequential and parallel `f64` engines re-evaluate
/// exactly the same scenarios.
fn f64_probe_indices(n: usize) -> Vec<usize> {
    if n == 0 {
        return Vec::new();
    }
    let mut p: Vec<usize> = (0..F64_PROBES.min(n))
        .map(|k| k * (n - 1) / (F64_PROBES.min(n) - 1).max(1))
        .collect();
    p.dedup();
    p
}

/// The full-vs-compressed engines for one compression outcome, compiled
/// once and reusable across any number of sweeps. Cloning shares the
/// underlying programs (see [`BatchEvaluator`]), so a session-invariant
/// full-side program can be cached and paired with each new compression.
#[derive(Clone, Debug)]
pub struct CompiledComparison {
    /// Batched evaluator over the full provenance (exact coefficients).
    pub full: BatchEvaluator<Rat>,
    /// Batched evaluator over the compressed provenance.
    pub compressed: BatchEvaluator<Rat>,
}

impl CompiledComparison {
    /// Compiles both sides.
    pub fn compile(full: &PolySet<Rat>, compressed: &PolySet<Rat>) -> CompiledComparison {
        CompiledComparison {
            full: BatchEvaluator::compile(full),
            compressed: BatchEvaluator::compile(compressed),
        }
    }

    /// Pairs two already-compiled engines (e.g. a cached full-side program
    /// with a freshly compressed side).
    pub fn from_engines(
        full: BatchEvaluator<Rat>,
        compressed: BatchEvaluator<Rat>,
    ) -> CompiledComparison {
        CompiledComparison { full, compressed }
    }

    /// Evaluates every scenario of `set` on both sides, streaming grid
    /// scenarios straight into the batch kernels in blocks — see
    /// [`sweep_full_vs_compressed`] for the scenario semantics. This is
    /// [`sweep_fold`](Self::sweep_fold) with an appending fold: the only
    /// O(scenarios) memory is the returned result matrix itself.
    pub fn sweep(
        &self,
        metas: &[MetaVar],
        base: &Valuation<Rat>,
        set: &ScenarioSet,
    ) -> ScenarioSweep {
        let n = set.len();
        let np = self.full.program().num_polys();
        let init = (
            Vec::with_capacity(n * np),
            Vec::with_capacity(n * np),
        );
        let (full, compressed) = self.sweep_fold(metas, base, set, init, |(mut f, mut c), item| {
            f.extend_from_slice(item.full);
            c.extend_from_slice(item.compressed);
            (f, c)
        });
        ScenarioSweep {
            labels: self.full.program().labels().to_vec(),
            num_scenarios: n,
            full,
            compressed,
        }
    }

    /// Streams every scenario of `set` through both compiled engines and
    /// folds the per-scenario results into an accumulator — the streaming
    /// heart every sweep surface is built on. Scenarios are bound in
    /// blocks by the allocation-free [`PairBinder`], evaluated through
    /// the batch kernels, and handed to `f` in enumeration order as
    /// [`FoldItem`]s; peak transient memory is O(block × row) regardless
    /// of the set's cardinality, so a 10⁷-scenario grid aggregates in
    /// O(1) output memory.
    ///
    /// # Panics
    /// Panics if the two programs' polynomial counts differ, or under the
    /// [`PairBinder`] totality rules (grids need a total `base`).
    pub fn sweep_fold<A>(
        &self,
        metas: &[MetaVar],
        base: &Valuation<Rat>,
        set: &ScenarioSet,
        init: A,
        mut f: impl FnMut(A, FoldItem<'_, Rat>) -> A,
    ) -> A {
        let n = set.len();
        let np = self.full.program().num_polys();
        assert_eq!(
            np,
            self.compressed.program().num_polys(),
            "polynomial sets must align"
        );
        let mut binder = PairBinder::new(self, metas, base, set);
        let locals = self
            .full
            .program()
            .num_locals()
            .max(self.compressed.program().num_locals());
        let block = stream_block(np, locals).min(n.max(1));
        let mut full_rows: Vec<Vec<Rat>> = (0..block)
            .map(|_| vec![Rat::ZERO; self.full.program().num_locals()])
            .collect();
        let mut comp_rows: Vec<Vec<Rat>> = (0..block)
            .map(|_| vec![Rat::ZERO; self.compressed.program().num_locals()])
            .collect();
        let mut full_out = vec![Rat::ZERO; block * np];
        let mut comp_out = vec![Rat::ZERO; block * np];
        let mut acc = init;
        let mut start = 0;
        while start < n {
            let width = block.min(n - start);
            for k in 0..width {
                let (frow, crow) = (&mut full_rows[k], &mut comp_rows[k]);
                // split borrows: binder needs &mut self for its scratch
                binder.bind_pair_into(start + k, frow, crow);
            }
            self.full
                .eval_batch_into(&full_rows[..width], &mut full_out[..width * np]);
            self.compressed
                .eval_batch_into(&comp_rows[..width], &mut comp_out[..width * np]);
            for k in 0..width {
                acc = f(
                    acc,
                    FoldItem {
                        scenario: start + k,
                        full: &full_out[k * np..(k + 1) * np],
                        compressed: &comp_out[k * np..(k + 1) * np],
                    },
                );
            }
            start += width;
        }
        acc
    }

    /// [`sweep_fold`](Self::sweep_fold) with **binding and evaluation
    /// fanned across cores**: the scenario range is split into contiguous
    /// per-worker spans ([`cobra_util::par::par_owned_spans`]), each
    /// worker owns its own [`PairBinder`], batch buffers and a fold
    /// replica ([`MergeFold::init`]), and the partial accumulators merge
    /// back in ascending span order ([`MergeFold::merge`]). The sequential
    /// fold engine streams blocks one at a time — only each block's
    /// *evaluation* used the cores, while binding (the dominant cost for
    /// compressed programs) ran on one thread; here whole spans bind and
    /// evaluate concurrently, lifting that bottleneck at 10⁷⁺ scenarios.
    ///
    /// Results are **bit-identical** to
    /// [`sweep_fold`](Self::sweep_fold)`(…, fold, folds::step)` at any
    /// thread count (`COBRA_THREADS` or
    /// [`cobra_util::par::with_threads`]): workers
    /// accept disjoint ascending spans, evaluation is per-scenario
    /// deterministic, and the [`MergeFold`] laws make the ordered merge
    /// equal to one sequential pass.
    ///
    /// # Panics
    /// Same conditions as [`sweep_fold`](Self::sweep_fold).
    pub fn sweep_fold_par<F: MergeFold + Send + Sync>(
        &self,
        metas: &[MetaVar],
        base: &Valuation<Rat>,
        set: &ScenarioSet,
        fold: F,
    ) -> F {
        let n = set.len();
        let np = self.full.program().num_polys();
        assert_eq!(
            np,
            self.compressed.program().num_polys(),
            "polynomial sets must align"
        );
        if n == 0 {
            return fold;
        }
        let locals = self
            .full
            .program()
            .num_locals()
            .max(self.compressed.program().num_locals());
        let block = stream_block(np, locals).min(n);
        let partials = par::par_owned_spans(
            n,
            1,
            || {
                let full_rows: Vec<Vec<Rat>> = (0..block)
                    .map(|_| vec![Rat::ZERO; self.full.program().num_locals()])
                    .collect();
                let comp_rows: Vec<Vec<Rat>> = (0..block)
                    .map(|_| vec![Rat::ZERO; self.compressed.program().num_locals()])
                    .collect();
                (
                    PairBinder::new(self, metas, base, set),
                    full_rows,
                    comp_rows,
                    vec![Rat::ZERO; block * np],
                    vec![Rat::ZERO; block * np],
                    fold.init(),
                )
            },
            |state, range| {
                let (binder, full_rows, comp_rows, full_out, comp_out, f) = state;
                let mut start = range.start;
                while start < range.end {
                    let width = block.min(range.end - start);
                    for k in 0..width {
                        binder.bind_pair_into(start + k, &mut full_rows[k], &mut comp_rows[k]);
                    }
                    self.full
                        .eval_batch_serial_into(&full_rows[..width], &mut full_out[..width * np]);
                    self.compressed
                        .eval_batch_serial_into(&comp_rows[..width], &mut comp_out[..width * np]);
                    for k in 0..width {
                        f.accept(FoldItem {
                            scenario: start + k,
                            full: &full_out[k * np..(k + 1) * np],
                            compressed: &comp_out[k * np..(k + 1) * np],
                        });
                    }
                    start += width;
                }
            },
        );
        let mut fold = fold;
        for partial in partials {
            fold.merge(partial.5);
        }
        fold
    }

    /// [`sweep_fold`](Self::sweep_fold) on the approximate `f64` fast
    /// path: scenarios are bound directly as `f64` rows
    /// ([`PairBinder::bind_pair_into_f64`]) and each block is evaluated
    /// through the lane kernel
    /// ([`BatchEvaluator::eval_batch_fast_into`]), so large grids
    /// aggregate at the lane-kernel per-scenario cost instead of exact
    /// `Rat` arithmetic. Up to [`F64_PROBES`] evenly spaced scenarios are
    /// additionally re-evaluated on the exact engines; the returned
    /// [`F64Divergence`] records the largest observed deviation.
    ///
    /// `shadows` is the `(full, compressed)` pair of `f64` shadow engines
    /// of this comparison's exact programs
    /// ([`EvalProgram::to_f64_program`] preserves the variable numbering,
    /// so the rows bind directly).
    ///
    /// # Panics
    /// Panics if the shadow programs' shapes do not match the exact ones,
    /// or under the [`PairBinder`] totality rules.
    pub fn sweep_fold_f64<A>(
        &self,
        shadows: (&BatchEvaluator<f64>, &BatchEvaluator<f64>),
        metas: &[MetaVar],
        base: &Valuation<Rat>,
        set: &ScenarioSet,
        init: A,
        mut f: impl FnMut(A, FoldItem<'_, f64>) -> A,
    ) -> (A, F64Divergence) {
        let (full64, comp64) = shadows;
        let n = set.len();
        let np = self.full.program().num_polys();
        self.assert_f64_shadows(full64, comp64);
        let mut binder = PairBinder::new(self, metas, base, set);
        let locals = self
            .full
            .program()
            .num_locals()
            .max(self.compressed.program().num_locals());
        let block = stream_block(np, locals).min(n.max(1));
        let mut full_rows: Vec<Vec<f64>> = (0..block)
            .map(|_| vec![0.0; self.full.program().num_locals()])
            .collect();
        let mut comp_rows: Vec<Vec<f64>> = (0..block)
            .map(|_| vec![0.0; self.compressed.program().num_locals()])
            .collect();
        let mut full_out = vec![0.0f64; block * np];
        let mut comp_out = vec![0.0f64; block * np];

        // Evenly spaced probe indices, deduplicated (n may be < F64_PROBES).
        let probes = f64_probe_indices(n);
        let mut next_probe = 0usize;
        let mut divergence = F64Divergence::default();
        let mut probe_full_row = vec![Rat::ZERO; self.full.program().num_locals()];
        let mut probe_comp_row = vec![Rat::ZERO; self.compressed.program().num_locals()];
        let mut probe_out = vec![Rat::ZERO; np];

        let mut acc = init;
        let mut start = 0;
        while start < n {
            let width = block.min(n - start);
            for k in 0..width {
                let (frow, crow) = (&mut full_rows[k], &mut comp_rows[k]);
                binder.bind_pair_into_f64(start + k, frow, crow);
            }
            full64.eval_batch_fast_into(&full_rows[..width], &mut full_out[..width * np]);
            comp64.eval_batch_fast_into(&comp_rows[..width], &mut comp_out[..width * np]);
            for k in 0..width {
                let i = start + k;
                let full = &full_out[k * np..(k + 1) * np];
                let compressed = &comp_out[k * np..(k + 1) * np];
                if next_probe < probes.len() && probes[next_probe] == i {
                    next_probe += 1;
                    divergence.probed += 1;
                    binder.bind_pair_into(i, &mut probe_full_row, &mut probe_comp_row);
                    self.full
                        .program()
                        .eval_scenario_into(&probe_full_row, &mut probe_out);
                    divergence.record(&probe_out, full);
                    self.compressed
                        .program()
                        .eval_scenario_into(&probe_comp_row, &mut probe_out);
                    divergence.record(&probe_out, compressed);
                }
                acc = f(
                    acc,
                    FoldItem {
                        scenario: i,
                        full,
                        compressed,
                    },
                );
            }
            start += width;
        }
        (acc, divergence)
    }

    /// [`sweep_fold_f64`](Self::sweep_fold_f64) with binding, lane-kernel
    /// evaluation **and** the divergence probes fanned across cores — the
    /// parallel sibling pairing [`sweep_fold_par`](Self::sweep_fold_par)
    /// with the `f64` fast path. Each worker owns a [`PairBinder`], `f64`
    /// row/result buffers, one [`LaneScratch`] (reused across all of its
    /// blocks) and a fold replica; workers re-evaluate exactly the probe
    /// scenarios falling inside their own spans, so the merged
    /// [`F64Divergence`] covers the same probes as the sequential engine.
    ///
    /// Per scenario the lane kernel performs the same multiply/add
    /// sequence regardless of blocking or worker, so the fold output and
    /// the divergence record are bit-identical to
    /// [`sweep_fold_f64`](Self::sweep_fold_f64) at any thread count.
    ///
    /// # Panics
    /// Same conditions as [`sweep_fold_f64`](Self::sweep_fold_f64).
    pub fn sweep_fold_f64_par<F: MergeFold + Send + Sync>(
        &self,
        shadows: (&BatchEvaluator<f64>, &BatchEvaluator<f64>),
        metas: &[MetaVar],
        base: &Valuation<Rat>,
        set: &ScenarioSet,
        fold: F,
    ) -> (F, F64Divergence) {
        let (full64, comp64) = shadows;
        let n = set.len();
        let np = self.full.program().num_polys();
        self.assert_f64_shadows(full64, comp64);
        if n == 0 {
            return (fold, F64Divergence::default());
        }
        let locals = self
            .full
            .program()
            .num_locals()
            .max(self.compressed.program().num_locals());
        let block = stream_block(np, locals).min(n);
        let probes = f64_probe_indices(n);

        struct Worker<'a, F> {
            binder: PairBinder<'a>,
            full_rows: Vec<Vec<f64>>,
            comp_rows: Vec<Vec<f64>>,
            full_out: Vec<f64>,
            comp_out: Vec<f64>,
            scratch: LaneScratch,
            probe_full_row: Vec<Rat>,
            probe_comp_row: Vec<Rat>,
            probe_out: Vec<Rat>,
            divergence: F64Divergence,
            fold: F,
        }

        let partials = par::par_owned_spans(
            n,
            1,
            || Worker {
                binder: PairBinder::new(self, metas, base, set),
                full_rows: (0..block)
                    .map(|_| vec![0.0f64; self.full.program().num_locals()])
                    .collect(),
                comp_rows: (0..block)
                    .map(|_| vec![0.0f64; self.compressed.program().num_locals()])
                    .collect(),
                full_out: vec![0.0f64; block * np],
                comp_out: vec![0.0f64; block * np],
                scratch: LaneScratch::new(),
                probe_full_row: vec![Rat::ZERO; self.full.program().num_locals()],
                probe_comp_row: vec![Rat::ZERO; self.compressed.program().num_locals()],
                probe_out: vec![Rat::ZERO; np],
                divergence: F64Divergence::default(),
                fold: fold.init(),
            },
            |w, range| {
                // First probe index at or past this span's start.
                let mut next_probe = probes.partition_point(|&p| p < range.start);
                let mut start = range.start;
                while start < range.end {
                    let width = block.min(range.end - start);
                    for k in 0..width {
                        w.binder.bind_pair_into_f64(
                            start + k,
                            &mut w.full_rows[k],
                            &mut w.comp_rows[k],
                        );
                    }
                    full64.eval_batch_fast_serial_into(
                        &w.full_rows[..width],
                        &mut w.full_out[..width * np],
                        &mut w.scratch,
                    );
                    comp64.eval_batch_fast_serial_into(
                        &w.comp_rows[..width],
                        &mut w.comp_out[..width * np],
                        &mut w.scratch,
                    );
                    for k in 0..width {
                        let i = start + k;
                        let full = &w.full_out[k * np..(k + 1) * np];
                        let compressed = &w.comp_out[k * np..(k + 1) * np];
                        if next_probe < probes.len() && probes[next_probe] == i {
                            next_probe += 1;
                            w.divergence.probed += 1;
                            w.binder.bind_pair_into(
                                i,
                                &mut w.probe_full_row,
                                &mut w.probe_comp_row,
                            );
                            self.full
                                .program()
                                .eval_scenario_into(&w.probe_full_row, &mut w.probe_out);
                            w.divergence.record(&w.probe_out, full);
                            self.compressed
                                .program()
                                .eval_scenario_into(&w.probe_comp_row, &mut w.probe_out);
                            w.divergence.record(&w.probe_out, compressed);
                        }
                        w.fold.accept(FoldItem {
                            scenario: i,
                            full,
                            compressed,
                        });
                    }
                    start += width;
                }
            },
        );
        let mut fold = fold;
        let mut divergence = F64Divergence::default();
        for partial in partials {
            fold.merge(partial.fold);
            divergence.merge(partial.divergence);
        }
        (fold, divergence)
    }

    /// Shared shape checks for the `f64` shadow engines.
    fn assert_f64_shadows(&self, full64: &BatchEvaluator<f64>, comp64: &BatchEvaluator<f64>) {
        let np = self.full.program().num_polys();
        assert_eq!(
            np,
            self.compressed.program().num_polys(),
            "polynomial sets must align"
        );
        assert_eq!(
            full64.program().num_polys(),
            np,
            "f64 shadow must mirror the exact full program"
        );
        assert_eq!(
            full64.program().num_locals(),
            self.full.program().num_locals(),
            "f64 shadow must share the full program's variable numbering"
        );
        assert_eq!(
            comp64.program().num_polys(),
            np,
            "f64 shadow must mirror the exact compressed program"
        );
        assert_eq!(
            comp64.program().num_locals(),
            self.compressed.program().num_locals(),
            "f64 shadow must share the compressed program's variable numbering"
        );
    }

    /// Projects and binds every scenario of `set` into materialized
    /// full/compressed row pairs, mapping each value through `map` — the
    /// shared project-and-bind loop behind both the exact sweep and the
    /// `f64` timing path
    /// ([`CobraSession::measure_batch_speedup`](crate::session::CobraSession::measure_batch_speedup)).
    /// `map` is typically the identity (exact rows) or `Rat::to_f64`
    /// (timing rows; the `f64` shadow programs share this program's
    /// variable numbering, so the rows bind directly).
    ///
    /// Unlike [`sweep`](Self::sweep), this deliberately materializes
    /// O(set × locals) row memory: timing paths bind once up front so the
    /// measured runs cover evaluation only. Use `sweep` for result
    /// computation over very large grids.
    pub fn bind_rows<C: Coeff>(
        &self,
        metas: &[MetaVar],
        base: &Valuation<Rat>,
        set: &ScenarioSet,
        map: impl Fn(&Rat) -> C,
    ) -> (Vec<Vec<C>>, Vec<Vec<C>>) {
        let mut binder = PairBinder::new(self, metas, base, set);
        let mut frow = vec![Rat::ZERO; self.full.program().num_locals()];
        let mut crow = vec![Rat::ZERO; self.compressed.program().num_locals()];
        let mut full_rows = Vec::with_capacity(set.len());
        let mut comp_rows = Vec::with_capacity(set.len());
        for i in 0..set.len() {
            binder.bind_pair_into(i, &mut frow, &mut crow);
            full_rows.push(frow.iter().map(&map).collect());
            comp_rows.push(crow.iter().map(&map).collect());
        }
        (full_rows, comp_rows)
    }
}

/// Results of a batched scenario sweep, stored flat: the labels once and
/// one `num_polys`-wide row of exact values per scenario per side —
/// O(scenarios × polynomials) memory with no per-scenario `String`s.
#[derive(Clone, Debug, Default)]
pub struct ScenarioSweep {
    labels: Vec<String>,
    num_scenarios: usize,
    /// Scenario-major full-provenance values (`num_scenarios × num_polys`).
    full: Vec<Rat>,
    /// Scenario-major compressed-provenance values.
    compressed: Vec<Rat>,
}

impl ScenarioSweep {
    /// Number of scenarios evaluated.
    pub fn len(&self) -> usize {
        self.num_scenarios
    }

    /// True iff no scenario was evaluated.
    pub fn is_empty(&self) -> bool {
        self.num_scenarios == 0
    }

    /// Number of result tuples per scenario.
    pub fn num_polys(&self) -> usize {
        self.labels.len()
    }

    /// Result-tuple labels, shared by every scenario.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Full-provenance results of one scenario, in label order.
    pub fn full_row(&self, scenario: usize) -> &[Rat] {
        let np = self.labels.len();
        &self.full[scenario * np..(scenario + 1) * np]
    }

    /// Compressed-provenance results of one scenario, in label order.
    pub fn compressed_row(&self, scenario: usize) -> &[Rat] {
        let np = self.labels.len();
        &self.compressed[scenario * np..(scenario + 1) * np]
    }

    /// Materializes the side-by-side comparison of one scenario.
    pub fn comparison(&self, scenario: usize) -> ResultComparison {
        compare_rows(
            &self.labels,
            self.full_row(scenario).to_vec(),
            self.compressed_row(scenario).to_vec(),
        )
    }

    /// Iterates materialized comparisons in scenario order.
    pub fn comparisons(&self) -> impl ExactSizeIterator<Item = ResultComparison> + '_ {
        (0..self.num_scenarios).map(|s| self.comparison(s))
    }

    /// Largest relative error over every scenario and result tuple.
    pub fn max_rel_error(&self) -> f64 {
        self.full
            .iter()
            .zip(&self.compressed)
            .map(|(f, c)| assign::rel_error_value(f, c))
            .fold(0.0, f64::max)
    }

    /// Largest relative error within one scenario.
    pub fn scenario_max_rel_error(&self, scenario: usize) -> f64 {
        self.full_row(scenario)
            .iter()
            .zip(self.compressed_row(scenario))
            .map(|(f, c)| assign::rel_error_value(f, c))
            .fold(0.0, f64::max)
    }

    /// True iff compression introduced no error in any scenario.
    pub fn is_exact(&self) -> bool {
        self.full == self.compressed
    }
}

/// Results of an **approximate** batched sweep
/// ([`CobraSession::sweep_f64`](crate::session::CobraSession::sweep_f64)):
/// the `f64` sibling of [`ScenarioSweep`], stored flat (labels once, one
/// `num_polys`-wide row per scenario per side) with the measured
/// [`F64Divergence`] of the fast path attached.
#[derive(Clone, Debug, Default)]
pub struct F64ScenarioSweep {
    pub(crate) labels: Vec<String>,
    pub(crate) num_scenarios: usize,
    pub(crate) full: Vec<f64>,
    pub(crate) compressed: Vec<f64>,
    pub(crate) divergence: F64Divergence,
}

impl F64ScenarioSweep {
    /// Number of scenarios evaluated.
    pub fn len(&self) -> usize {
        self.num_scenarios
    }

    /// True iff no scenario was evaluated.
    pub fn is_empty(&self) -> bool {
        self.num_scenarios == 0
    }

    /// Number of result tuples per scenario.
    pub fn num_polys(&self) -> usize {
        self.labels.len()
    }

    /// Result-tuple labels, shared by every scenario.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Full-provenance results of one scenario, in label order.
    pub fn full_row(&self, scenario: usize) -> &[f64] {
        let np = self.labels.len();
        &self.full[scenario * np..(scenario + 1) * np]
    }

    /// Compressed-provenance results of one scenario, in label order.
    pub fn compressed_row(&self, scenario: usize) -> &[f64] {
        let np = self.labels.len();
        &self.compressed[scenario * np..(scenario + 1) * np]
    }

    /// The exact-vs-approximate divergence probe of the sweep.
    pub fn divergence(&self) -> F64Divergence {
        self.divergence
    }

    /// Largest relative full-vs-compressed error over every scenario and
    /// result tuple (the abstraction's worst case over the family, in
    /// floating point).
    pub fn max_rel_error(&self) -> f64 {
        self.full
            .iter()
            .zip(&self.compressed)
            .map(|(f, c)| assign::rel_error_f64(*f, *c))
            .fold(0.0, f64::max)
    }
}

/// Evaluates the scenarios of `scenarios` (leaf-level, merged over `base`)
/// on both the full and the compressed provenance through the compiled
/// batch engine. Each scenario is projected onto the meta-variables by
/// group averaging, exactly like
/// [`CobraSession::assign`](crate::session::CobraSession::assign). Accepts
/// anything convertible to a [`ScenarioSet`] — grids stream through the
/// engine without materializing per-scenario valuations.
///
/// # Panics
/// Panics if some scenario (merged over `base`) does not cover a variable —
/// give `base` a default, as assignment screens always do. Grid and
/// perturbation sets additionally require `base` itself to be total.
pub fn sweep_full_vs_compressed(
    engines: &CompiledComparison,
    metas: &[MetaVar],
    base: &Valuation<Rat>,
    scenarios: impl Into<ScenarioSet>,
) -> ScenarioSweep {
    engines.sweep(metas, base, &scenarios.into())
}

/// Streams every scenario of `set` through a **single** compiled exact
/// engine and folds the per-scenario result rows — the one-sided sibling
/// of [`CompiledComparison::sweep_fold`] for consumers that evaluate one
/// polynomial set without a full/compressed pair
/// ([`sensitivity::scenario_impacts`](crate::sensitivity::scenario_impacts)
/// ranks grid points through it). Scenarios are bound allocation-free by
/// [`RowBinder`] and evaluated in blocks; `f` receives
/// `(accumulator, scenario index, results)` in enumeration order, with
/// the result slice borrowing the block buffer.
///
/// # Panics
/// Panics if `base` is not total over the program (give it a default).
pub fn fold_program_sweep<A>(
    evaluator: &BatchEvaluator<Rat>,
    base: &Valuation<Rat>,
    set: &ScenarioSet,
    init: A,
    mut f: impl FnMut(A, usize, &[Rat]) -> A,
) -> A {
    let prog = evaluator.program();
    let np = prog.num_polys();
    let n = set.len();
    let binder = RowBinder::new(set, prog, base);
    let block = stream_block(np, prog.num_locals()).min(n.max(1));
    let mut rows: Vec<Vec<Rat>> = (0..block)
        .map(|_| vec![Rat::ZERO; prog.num_locals()])
        .collect();
    let mut out = vec![Rat::ZERO; block * np];
    let mut acc = init;
    let mut start = 0;
    while start < n {
        let width = block.min(n - start);
        for (k, row) in rows[..width].iter_mut().enumerate() {
            binder.bind_into(start + k, row);
        }
        evaluator.eval_batch_into(&rows[..width], &mut out[..width * np]);
        for k in 0..width {
            acc = f(acc, start + k, &out[k * np..(k + 1) * np]);
        }
        start += width;
    }
    acc
}

/// [`fold_program_sweep`] fanned across cores: contiguous scenario
/// spans are bound and evaluated by worker-owned state (one
/// [`RowBinder`] + batch buffers + a [`MergeFold`] replica per worker)
/// and the partial accumulators merge in ascending span order — the
/// single-engine sibling of
/// [`CompiledComparison::sweep_fold_par`]. Because there is no
/// full/compressed pair here, each scenario reaches the fold as a
/// [`FoldItem`] whose `full` side carries the program's result row and
/// whose `compressed` side is **empty** — full-side folds
/// ([`ArgmaxImpact`](crate::folds::ArgmaxImpact),
/// [`Histogram`](crate::folds::Histogram),
/// [`TopK`](crate::folds::TopK)) run unchanged, while error folds that
/// zip both sides see no pairs and stay at their identity.
///
/// Results are bit-identical to the sequential [`fold_program_sweep`]
/// at any thread count.
///
/// # Panics
/// Panics if `base` is not total over the program (give it a default).
pub fn fold_program_sweep_par<F: MergeFold + Send + Sync>(
    evaluator: &BatchEvaluator<Rat>,
    base: &Valuation<Rat>,
    set: &ScenarioSet,
    fold: F,
) -> F {
    let prog = evaluator.program();
    let np = prog.num_polys();
    let n = set.len();
    if n == 0 {
        return fold;
    }
    let block = stream_block(np, prog.num_locals()).min(n);
    let partials = par::par_owned_spans(
        n,
        1,
        || {
            let rows: Vec<Vec<Rat>> = (0..block)
                .map(|_| vec![Rat::ZERO; prog.num_locals()])
                .collect();
            (
                RowBinder::new(set, prog, base),
                rows,
                vec![Rat::ZERO; block * np],
                fold.init(),
            )
        },
        |state, range| {
            let (binder, rows, out, f) = state;
            let mut start = range.start;
            while start < range.end {
                let width = block.min(range.end - start);
                for (k, row) in rows[..width].iter_mut().enumerate() {
                    binder.bind_into(start + k, row);
                }
                evaluator.eval_batch_serial_into(&rows[..width], &mut out[..width * np]);
                for k in 0..width {
                    f.accept(FoldItem {
                        scenario: start + k,
                        full: &out[k * np..(k + 1) * np],
                        compressed: &[],
                    });
                }
                start += width;
            }
        },
    );
    let mut fold = fold;
    for partial in partials {
        fold.merge(partial.3);
    }
    fold
}

/// The canonical leaf/meta valuation pair for one scenario: the scenario
/// merged over the base, and its projection onto the meta-variables by
/// group averaging. Every assignment and timing path shares this rule.
pub(crate) fn project_pair(
    metas: &[MetaVar],
    base: &Valuation<Rat>,
    scenario: &Valuation<Rat>,
) -> (Valuation<Rat>, Valuation<Rat>) {
    let leaf_val = base.overridden_by(scenario);
    let meta_val = leaf_val.overridden_by(&assign::project_scenario(metas, &leaf_val));
    (leaf_val, meta_val)
}

/// Pairs full and compressed result values by position into a
/// [`ResultComparison`].
///
/// # Panics
/// Panics unless both value vectors have exactly one entry per label —
/// the full and compressed polynomial sets must align.
pub(crate) fn compare_rows(
    labels: &[String],
    full: Vec<Rat>,
    compressed: Vec<Rat>,
) -> ResultComparison {
    assert_eq!(labels.len(), full.len(), "polynomial sets must align");
    assert_eq!(labels.len(), compressed.len(), "polynomial sets must align");
    ResultComparison {
        rows: labels
            .iter()
            .zip(full.into_iter().zip(compressed))
            .map(|(label, (full, compressed))| ResultRow {
                label: label.clone(),
                full,
                compressed,
            })
            .collect(),
    }
}

/// Where an override lands on the compressed side.
#[derive(Clone, Copy, Debug)]
enum CompTarget {
    /// The variable survives compression: write its local directly (or
    /// nothing, if the compressed program never mentions it).
    Direct(Option<u32>),
    /// The variable is a grouped leaf: fold its delta into the group
    /// average (index into the binder's group plans).
    Group(u32),
    /// The variable *is* a meta-variable: leaf-level scenarios cannot set
    /// metas directly — the group-average projection always wins, exactly
    /// like the materialized path.
    Ignore,
}

/// One override slot of a grid axis (or perturbation family), resolved
/// against both programs once at binder construction. The `f64` shadow of
/// the base value rides along so the approximate bind path never touches
/// `Rat` arithmetic per scenario.
#[derive(Clone, Copy, Debug)]
struct PairSlot {
    full_local: Option<u32>,
    target: CompTarget,
    base_val: Rat,
    base_val_f64: f64,
}

/// A touched meta-variable group: its compressed-side local plus the
/// base-valuation sum over its leaves, so per-scenario averages are
/// `(base_sum + Σ deltas) / count` — bit-identical to re-averaging.
#[derive(Clone, Copy, Debug)]
struct GroupPlan {
    comp_local: Option<u32>,
    base_sum: Rat,
    base_sum_f64: f64,
    count: usize,
}

/// Binds [`ScenarioSet`] scenarios into full/compressed scenario-row pairs
/// with the meta-variable projection applied — the allocation-free heart
/// of the sweep. Explicit (materialized) sets fall back to the classic
/// merge-project-bind per scenario; grids and perturbations reuse cached
/// base rows and touch only their overrides.
pub struct PairBinder<'a> {
    set: &'a ScenarioSet,
    metas: &'a [MetaVar],
    base: &'a Valuation<Rat>,
    full: &'a EvalProgram<Rat>,
    comp: &'a EvalProgram<Rat>,
    base_full_row: Vec<Rat>,
    base_comp_row: Vec<Rat>,
    /// Override slots per axis (grids) or one flat list (perturbations).
    slots: Vec<Vec<PairSlot>>,
    groups: Vec<GroupPlan>,
    /// Per-scenario group-delta accumulator (zeroed on every bind).
    scratch: Vec<Rat>,
    /// `f64` shadows of the cached base rows and the group scratch, built
    /// lazily on the first [`bind_pair_into_f64`](Self::bind_pair_into_f64)
    /// call — exact-only sweeps never pay for the copies.
    f64_ready: bool,
    base_full_row_f64: Vec<f64>,
    base_comp_row_f64: Vec<f64>,
    scratch_f64: Vec<f64>,
    /// Exact scratch rows for the explicit-set `f64` path (explicit
    /// scenarios are merged and projected exactly, then converted).
    explicit_full_scratch: Vec<Rat>,
    explicit_comp_scratch: Vec<Rat>,
}

impl<'a> PairBinder<'a> {
    /// Prepares a binder for `set` against a compiled engine pair.
    ///
    /// # Panics
    /// For grid/perturbation sets, panics if `base` does not cover every
    /// program variable (explicit sets defer the totality check to each
    /// scenario, matching the materialized path).
    pub fn new(
        engines: &'a CompiledComparison,
        metas: &'a [MetaVar],
        base: &'a Valuation<Rat>,
        set: &'a ScenarioSet,
    ) -> PairBinder<'a> {
        let full = engines.full.program();
        let comp = engines.compressed.program();
        let mut binder = PairBinder {
            set,
            metas,
            base,
            full,
            comp,
            base_full_row: Vec::new(),
            base_comp_row: Vec::new(),
            slots: Vec::new(),
            groups: Vec::new(),
            scratch: Vec::new(),
            f64_ready: false,
            base_full_row_f64: Vec::new(),
            base_comp_row_f64: Vec::new(),
            scratch_f64: Vec::new(),
            explicit_full_scratch: Vec::new(),
            explicit_comp_scratch: Vec::new(),
        };
        if set.explicit().is_some() {
            return binder; // per-scenario merge path needs no plan
        }
        binder.base_full_row = full.bind(base).expect("leaf valuation must be total");
        let base_meta = base.overridden_by(&assign::project_scenario(metas, base));
        binder.base_comp_row = comp
            .bind(&base_meta)
            .expect("meta valuation must be total");

        let meta_vars: FxHashSet<Var> = metas.iter().map(|m| m.var).collect();
        let mut leaf_group: FxHashMap<Var, usize> = FxHashMap::default();
        for (g, meta) in metas.iter().enumerate() {
            for &leaf in &meta.leaves {
                leaf_group.insert(leaf, g);
            }
        }
        let mut group_slot: FxHashMap<usize, u32> = FxHashMap::default();
        let mut plan_slot = |binder: &mut PairBinder<'a>, v: Var| {
            // Grouped-leaf membership wins over meta-var identity: a cut
            // at a leaf keeps the leaf's own variable as its (one-leaf)
            // meta, and the projection then passes overrides through as
            // the trivial average — exactly the materialized semantics.
            let target = if let Some(&g) = leaf_group.get(&v) {
                let slot = *group_slot.entry(g).or_insert_with(|| {
                    let meta = &metas[g];
                    let base_sum: Rat =
                        meta.leaves.iter().map(|&l| base_value(base, l)).sum();
                    binder.groups.push(GroupPlan {
                        comp_local: comp.local_of(meta.var),
                        base_sum,
                        base_sum_f64: base_sum.to_f64(),
                        count: meta.leaves.len(),
                    });
                    (binder.groups.len() - 1) as u32
                });
                CompTarget::Group(slot)
            } else if meta_vars.contains(&v) {
                CompTarget::Ignore
            } else {
                CompTarget::Direct(comp.local_of(v))
            };
            let base_val = base_value(base, v);
            PairSlot {
                full_local: full.local_of(v),
                target,
                base_val,
                base_val_f64: base_val.to_f64(),
            }
        };
        if let Some(axes) = set.axes() {
            let planned: Vec<Vec<PairSlot>> = axes
                .iter()
                .map(|axis| {
                    axis.vars()
                        .iter()
                        .map(|&v| plan_slot(&mut binder, v))
                        .collect()
                })
                .collect();
            binder.slots = planned;
        } else if let Some((vars, _, _)) = set.perturbation() {
            let planned: Vec<PairSlot> = vars.iter().map(|&v| plan_slot(&mut binder, v)).collect();
            binder.slots = vec![planned];
        }
        binder.scratch = vec![Rat::ZERO; binder.groups.len()];
        binder
    }

    /// Binds scenario `i` into the two row buffers.
    ///
    /// # Panics
    /// Panics if `i >= set.len()`, a buffer width mismatches its program,
    /// or (explicit sets) the merged valuation is not total.
    pub fn bind_pair_into(&mut self, i: usize, full_row: &mut [Rat], comp_row: &mut [Rat]) {
        if let Some(scenarios) = self.set.explicit() {
            let (leaf_val, meta_val) = project_pair(self.metas, self.base, &scenarios[i]);
            self.full
                .bind_into(&leaf_val, full_row)
                .expect("leaf valuation must be total");
            self.comp
                .bind_into(&meta_val, comp_row)
                .expect("meta valuation must be total");
            return;
        }
        assert!(i < self.set.len(), "scenario index {i} out of range");
        full_row.copy_from_slice(&self.base_full_row);
        comp_row.copy_from_slice(&self.base_comp_row);
        if let Some(axes) = self.set.axes() {
            for d in &mut self.scratch {
                *d = Rat::ZERO;
            }
            let slots = &self.slots;
            let scratch = &mut self.scratch;
            for_each_grid_digit(axes, i, |j, digit| {
                let axis = &axes[j];
                let level = axis.levels()[digit];
                for s in &slots[j] {
                    let new = axis.op().apply(s.base_val, level);
                    if let Some(fl) = s.full_local {
                        full_row[fl as usize] = new;
                    }
                    match s.target {
                        CompTarget::Direct(Some(cl)) => comp_row[cl as usize] = new,
                        CompTarget::Direct(None) | CompTarget::Ignore => {}
                        CompTarget::Group(g) => scratch[g as usize] += new - s.base_val,
                    }
                }
            });
            for (plan, delta) in self.groups.iter().zip(&self.scratch) {
                if let Some(cl) = plan.comp_local {
                    comp_row[cl as usize] =
                        (plan.base_sum + *delta) / Rat::int(plan.count as i64);
                }
            }
        } else if let Some((_, delta, op)) = self.set.perturbation() {
            let s = self.slots[0][i];
            let new = op.apply(s.base_val, delta);
            if let Some(fl) = s.full_local {
                full_row[fl as usize] = new;
            }
            match s.target {
                CompTarget::Direct(Some(cl)) => comp_row[cl as usize] = new,
                CompTarget::Direct(None) | CompTarget::Ignore => {}
                CompTarget::Group(g) => {
                    let plan = &self.groups[g as usize];
                    if let Some(cl) = plan.comp_local {
                        comp_row[cl as usize] = (plan.base_sum + (new - s.base_val))
                            / Rat::int(plan.count as i64);
                    }
                }
            }
        }
    }

    /// Builds the lazily initialized `f64` shadows of the cached base
    /// rows (grid/perturbation sets) or the exact scratch rows (explicit
    /// sets).
    fn ensure_f64(&mut self) {
        if self.f64_ready {
            return;
        }
        self.f64_ready = true;
        if self.set.explicit().is_some() {
            self.explicit_full_scratch = vec![Rat::ZERO; self.full.num_locals()];
            self.explicit_comp_scratch = vec![Rat::ZERO; self.comp.num_locals()];
        } else {
            self.base_full_row_f64 = self.base_full_row.iter().map(|r| r.to_f64()).collect();
            self.base_comp_row_f64 = self.base_comp_row.iter().map(|r| r.to_f64()).collect();
            self.scratch_f64 = vec![0.0; self.groups.len()];
        }
    }

    /// Binds scenario `i` into two **`f64`** row buffers — the
    /// approximate bind path of [`CompiledComparison::sweep_fold_f64`].
    /// Grid and perturbation overrides are resolved in floating point
    /// against cached `f64` base rows (one write per override, group
    /// averages included), so per-scenario work involves no `Rat`
    /// arithmetic at all; explicit scenarios are merged and projected
    /// exactly, then converted. The rows bind against the `f64` shadow
    /// programs, which share the exact programs' variable numbering.
    ///
    /// # Panics
    /// Same conditions as [`bind_pair_into`](Self::bind_pair_into).
    pub fn bind_pair_into_f64(&mut self, i: usize, full_row: &mut [f64], comp_row: &mut [f64]) {
        self.ensure_f64();
        if self.set.explicit().is_some() {
            let mut frow = std::mem::take(&mut self.explicit_full_scratch);
            let mut crow = std::mem::take(&mut self.explicit_comp_scratch);
            self.bind_pair_into(i, &mut frow, &mut crow);
            for (slot, r) in full_row.iter_mut().zip(&frow) {
                *slot = r.to_f64();
            }
            for (slot, r) in comp_row.iter_mut().zip(&crow) {
                *slot = r.to_f64();
            }
            self.explicit_full_scratch = frow;
            self.explicit_comp_scratch = crow;
            return;
        }
        assert!(i < self.set.len(), "scenario index {i} out of range");
        full_row.copy_from_slice(&self.base_full_row_f64);
        comp_row.copy_from_slice(&self.base_comp_row_f64);
        if let Some(axes) = self.set.axes() {
            for d in &mut self.scratch_f64 {
                *d = 0.0;
            }
            let slots = &self.slots;
            let scratch = &mut self.scratch_f64;
            for_each_grid_digit(axes, i, |j, digit| {
                let axis = &axes[j];
                let level = axis.levels()[digit].to_f64();
                for s in &slots[j] {
                    let new = axis.op().apply_f64(s.base_val_f64, level);
                    if let Some(fl) = s.full_local {
                        full_row[fl as usize] = new;
                    }
                    match s.target {
                        CompTarget::Direct(Some(cl)) => comp_row[cl as usize] = new,
                        CompTarget::Direct(None) | CompTarget::Ignore => {}
                        CompTarget::Group(g) => {
                            scratch[g as usize] += new - s.base_val_f64
                        }
                    }
                }
            });
            for (plan, delta) in self.groups.iter().zip(&self.scratch_f64) {
                if let Some(cl) = plan.comp_local {
                    comp_row[cl as usize] =
                        (plan.base_sum_f64 + *delta) / plan.count as f64;
                }
            }
        } else if let Some((_, delta, op)) = self.set.perturbation() {
            let s = self.slots[0][i];
            let new = op.apply_f64(s.base_val_f64, delta.to_f64());
            if let Some(fl) = s.full_local {
                full_row[fl as usize] = new;
            }
            match s.target {
                CompTarget::Direct(Some(cl)) => comp_row[cl as usize] = new,
                CompTarget::Direct(None) | CompTarget::Ignore => {}
                CompTarget::Group(g) => {
                    let plan = &self.groups[g as usize];
                    if let Some(cl) = plan.comp_local {
                        comp_row[cl as usize] = (plan.base_sum_f64
                            + (new - s.base_val_f64))
                            / plan.count as f64;
                    }
                }
            }
        }
    }
}

/// Times a batched sweep of `scenarios` over the full and the compressed
/// provenance on the `f64` fast path — the batched generalization of
/// [`assign::measure_assignment_speedup`]. Reported durations cover the
/// *whole batch* (binding excluded, evaluation only), best-of-`runs` after
/// `warmup` rounds.
pub fn measure_sweep_speedup(
    full: &BatchEvaluator<f64>,
    compressed: &BatchEvaluator<f64>,
    full_rows: &[Vec<f64>],
    comp_rows: &[Vec<f64>],
    warmup: usize,
    runs: usize,
) -> SpeedupMeasurement {
    let (_, full_time) = time_best_of(warmup, runs, || {
        std::hint::black_box(full.eval_batch_fast(full_rows).num_scenarios())
    });
    let (_, compressed_time) = time_best_of(warmup, runs, || {
        std::hint::black_box(compressed.eval_batch_fast(comp_rows).num_scenarios())
    });
    SpeedupMeasurement {
        full_time,
        compressed_time,
        full_size: full.program().num_terms(),
        compressed_size: compressed.program().num_terms(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply::apply_cut;
    use crate::assign::uniform_scenario;
    use crate::cut::Cut;
    use crate::tree::paper_plans_tree;
    use cobra_provenance::{parse_polyset, VarRegistry};

    fn rat(s: &str) -> Rat {
        Rat::parse(s).unwrap()
    }

    fn setup() -> (
        VarRegistry,
        PolySet<Rat>,
        crate::apply::AppliedAbstraction<Rat>,
    ) {
        let mut reg = VarRegistry::new();
        let tree = paper_plans_tree(&mut reg);
        let src = "\
P1 = 208.8*p1*m1 + 240*p1*m3 + 127.4*f1*m1 + 114.45*f1*m3 \
   + 75.9*y1*m1 + 72.5*y1*m3 + 42*v*m1 + 24.2*v*m3
P2 = 77.9*b1*m1 + 80.5*b1*m3 + 52.2*e*m1 + 56.5*e*m3 + 69.7*b2*m1 + 100.65*b2*m3";
        let set = parse_polyset(src, &mut reg).unwrap();
        let cut = Cut::from_names(&tree, &["Business", "Special", "Standard"]).unwrap();
        let applied = apply_cut(&set, &tree, &cut, &mut reg);
        (reg, set, applied)
    }

    #[test]
    fn sweep_matches_single_scenario_evaluation() {
        let (mut reg, set, applied) = setup();
        let engines = CompiledComparison::compile(&set, &applied.compressed);
        let base = Valuation::with_default(Rat::ONE);
        let b_vars = ["b1", "b2", "e"].map(|n| reg.var(n));
        let m3 = reg.var("m3");
        let scenarios = vec![
            uniform_scenario(&b_vars, rat("1.1")),
            Valuation::with_default(Rat::ONE).bind(m3, rat("0.8")),
            uniform_scenario(&[b_vars[0]], rat("1.3")),
        ];
        let sweep = sweep_full_vs_compressed(&engines, &applied.meta_vars, &base, &scenarios);
        assert_eq!(sweep.len(), 3);
        assert_eq!(sweep.num_polys(), 2);
        for (scenario, cmp) in scenarios.iter().zip(sweep.comparisons()) {
            let leaf_val = base.overridden_by(scenario);
            let meta_val = leaf_val
                .overridden_by(&assign::project_scenario(&applied.meta_vars, &leaf_val));
            let expected = ResultComparison::evaluate(
                &set,
                &leaf_val,
                &applied.compressed,
                &meta_val,
            );
            assert_eq!(cmp.rows, expected.rows);
        }
        // aligned scenarios are exact, the misaligned third one is not
        assert!(sweep.comparison(0).is_exact());
        assert!(sweep.comparison(1).is_exact());
        assert!(!sweep.comparison(2).is_exact());
        assert!(!sweep.is_exact());
        assert!(sweep.max_rel_error() > 0.0);
        assert_eq!(sweep.scenario_max_rel_error(0), 0.0);
        assert!(sweep.scenario_max_rel_error(2) > 0.0);
    }

    #[test]
    fn grid_sweep_is_bit_identical_to_materialized_sweep() {
        let (mut reg, set, applied) = setup();
        let engines = CompiledComparison::compile(&set, &applied.compressed);
        let base = Valuation::with_default(Rat::ONE);
        let m3 = reg.var("m3");
        let b_vars = ["b1", "b2", "e"].map(|n| reg.var(n));
        let y1 = reg.var("y1");
        let grid = ScenarioSet::grid()
            .axis([m3], [rat("0.8"), rat("1"), rat("1.25")])
            .axis(b_vars, [rat("0.9"), rat("1.1")])
            // y1 alone inside the Special group: a lossy, partial touch
            .scale_axis([y1], [rat("1"), rat("1.05")])
            .build()
            .unwrap();
        assert_eq!(grid.len(), 12);
        let by_grid = engines.sweep(&applied.meta_vars, &base, &grid);
        let flat = grid.materialize(&base);
        let by_vec = sweep_full_vs_compressed(&engines, &applied.meta_vars, &base, &flat[..]);
        assert_eq!(by_grid.len(), by_vec.len());
        for i in 0..by_grid.len() {
            assert_eq!(by_grid.full_row(i), by_vec.full_row(i), "scenario {i}");
            assert_eq!(
                by_grid.compressed_row(i),
                by_vec.compressed_row(i),
                "scenario {i}"
            );
        }
        // uniform business change is exact; scaling b1 alone inside the
        // group is lossy — the grid must reproduce both regimes
        assert!(by_grid.comparison(0).is_exact());
        assert!(!by_grid.is_exact());
    }

    #[test]
    fn perturbation_sweep_matches_materialized() {
        let (mut reg, set, applied) = setup();
        let engines = CompiledComparison::compile(&set, &applied.compressed);
        let base = Valuation::with_default(Rat::ONE);
        let vars: Vec<Var> = ["b1", "m3", "p1", "v"].iter().map(|n| reg.var(n)).collect();
        let perturb = ScenarioSet::perturb_each(vars, rat("0.125"));
        let by_set = engines.sweep(&applied.meta_vars, &base, &perturb);
        let flat = perturb.materialize(&base);
        let by_vec = sweep_full_vs_compressed(&engines, &applied.meta_vars, &base, &flat[..]);
        for i in 0..by_set.len() {
            assert_eq!(by_set.full_row(i), by_vec.full_row(i), "scenario {i}");
            assert_eq!(by_set.compressed_row(i), by_vec.compressed_row(i), "scenario {i}");
        }
    }

    #[test]
    fn bind_rows_matches_sweep_rows() {
        let (mut reg, set, applied) = setup();
        let engines = CompiledComparison::compile(&set, &applied.compressed);
        let base = Valuation::with_default(Rat::ONE);
        let m3 = reg.var("m3");
        let grid = ScenarioSet::grid()
            .axis([m3], [rat("0.8"), rat("0.9"), rat("1")])
            .build()
            .unwrap();
        let (full_rows, comp_rows) = engines.bind_rows(&applied.meta_vars, &base, &grid, |r| *r);
        assert_eq!(full_rows.len(), 3);
        let full_batch = engines.full.eval_batch(&full_rows);
        let comp_batch = engines.compressed.eval_batch(&comp_rows);
        let sweep = engines.sweep(&applied.meta_vars, &base, &grid);
        for i in 0..3 {
            assert_eq!(full_batch.row(i), sweep.full_row(i));
            assert_eq!(comp_batch.row(i), sweep.compressed_row(i));
        }
        // f64 mapping binds against the shadow programs directly
        let (f64_rows, _) = engines.bind_rows(&applied.meta_vars, &base, &grid, |r| r.to_f64());
        assert_eq!(f64_rows[0].len(), engines.full.program().num_locals());
    }

    #[test]
    fn sweep_fold_streams_in_enumeration_order() {
        let (mut reg, set, applied) = setup();
        let engines = CompiledComparison::compile(&set, &applied.compressed);
        let base = Valuation::with_default(Rat::ONE);
        let m3 = reg.var("m3");
        let b_vars = ["b1", "b2", "e"].map(|n| reg.var(n));
        let grid = ScenarioSet::grid()
            .axis([m3], [rat("0.8"), rat("1"), rat("1.25")])
            .axis(b_vars, [rat("0.9"), rat("1.1")])
            .build()
            .unwrap();
        let sweep = engines.sweep(&applied.meta_vars, &base, &grid);
        // an appending fold reproduces the materialized sweep bit for bit,
        // and scenarios arrive strictly in enumeration order
        let (order, rows) = engines.sweep_fold(
            &applied.meta_vars,
            &base,
            &grid,
            (Vec::new(), Vec::new()),
            |(mut order, mut rows): (Vec<usize>, Vec<Rat>), item| {
                order.push(item.scenario);
                rows.extend_from_slice(item.full);
                rows.extend_from_slice(item.compressed);
                (order, rows)
            },
        );
        assert_eq!(order, (0..grid.len()).collect::<Vec<_>>());
        for i in 0..grid.len() {
            let np = sweep.num_polys();
            assert_eq!(&rows[2 * i * np..(2 * i + 1) * np], sweep.full_row(i));
            assert_eq!(
                &rows[(2 * i + 1) * np..(2 * i + 2) * np],
                sweep.compressed_row(i)
            );
        }
    }

    #[test]
    fn f64_fold_tracks_exact_path_and_records_divergence() {
        let (mut reg, set, applied) = setup();
        let engines = CompiledComparison::compile(&set, &applied.compressed);
        let full64 = BatchEvaluator::new(engines.full.program().to_f64_program());
        let comp64 = BatchEvaluator::new(engines.compressed.program().to_f64_program());
        let base = Valuation::with_default(Rat::ONE);
        let m3 = reg.var("m3");
        let y1 = reg.var("y1");
        let b_vars = ["b1", "b2", "e"].map(|n| reg.var(n));
        let grid = ScenarioSet::grid()
            .axis([m3], [rat("0.8"), rat("1"), rat("1.25")])
            .scale_axis(b_vars, [rat("0.9"), rat("1.1")])
            .shift_axis([y1], [rat("0"), rat("0.125")])
            .build()
            .unwrap();
        let exact = engines.sweep(&applied.meta_vars, &base, &grid);
        let (approx, div) = engines.sweep_fold_f64(
            (&full64, &comp64),
            &applied.meta_vars,
            &base,
            &grid,
            Vec::new(),
            |mut rows: Vec<(Vec<f64>, Vec<f64>)>, item| {
                rows.push((item.full.to_vec(), item.compressed.to_vec()));
                rows
            },
        );
        assert_eq!(approx.len(), grid.len());
        assert!(div.probed > 0 && div.probed <= grid.len());
        assert!(div.max_rel_divergence < 1e-12, "divergence {div:?}");
        for (i, (full, comp)) in approx.iter().enumerate() {
            for (e, a) in exact.full_row(i).iter().zip(full) {
                assert!((e.to_f64() - a).abs() <= 1e-9 * e.to_f64().abs().max(1.0));
            }
            for (e, a) in exact.compressed_row(i).iter().zip(comp) {
                assert!((e.to_f64() - a).abs() <= 1e-9 * e.to_f64().abs().max(1.0));
            }
        }
    }

    #[test]
    fn f64_fold_handles_explicit_and_perturbation_sets() {
        let (mut reg, set, applied) = setup();
        let engines = CompiledComparison::compile(&set, &applied.compressed);
        let full64 = BatchEvaluator::new(engines.full.program().to_f64_program());
        let comp64 = BatchEvaluator::new(engines.compressed.program().to_f64_program());
        let base = Valuation::with_default(Rat::ONE);
        let m3 = reg.var("m3");
        let b1 = reg.var("b1");
        let explicit = [
            Valuation::with_default(Rat::ONE).bind(m3, rat("0.8")),
            Valuation::with_default(Rat::ONE).bind(b1, rat("1.3")),
        ];
        let perturb = ScenarioSet::perturb_each([m3, b1], rat("0.25"));
        for family in [ScenarioSet::from(&explicit[..]), perturb] {
            let exact = engines.sweep(&applied.meta_vars, &base, &family);
            let (approx, div) = engines.sweep_fold_f64(
                (&full64, &comp64),
                &applied.meta_vars,
                &base,
                &family,
                Vec::new(),
                |mut rows: Vec<Vec<f64>>, item| {
                    rows.push(item.full.to_vec());
                    rows
                },
            );
            assert_eq!(div.probed, family.len().min(16));
            for (i, full) in approx.iter().enumerate() {
                for (e, a) in exact.full_row(i).iter().zip(full) {
                    assert!((e.to_f64() - a).abs() <= 1e-9 * e.to_f64().abs().max(1.0));
                }
            }
        }
    }

    #[test]
    fn fold_program_sweep_matches_direct_evaluation() {
        let (mut reg, set, _) = setup();
        let evaluator = BatchEvaluator::compile(&set);
        let base = Valuation::with_default(Rat::ONE);
        let m3 = reg.var("m3");
        let grid = ScenarioSet::grid()
            .axis([m3], [rat("0.8"), rat("0.9"), rat("1"), rat("1.1")])
            .build()
            .unwrap();
        let rows = fold_program_sweep(
            &evaluator,
            &base,
            &grid,
            Vec::new(),
            |mut acc: Vec<Vec<Rat>>, i, results| {
                assert_eq!(i, acc.len());
                acc.push(results.to_vec());
                acc
            },
        );
        assert_eq!(rows.len(), 4);
        for (i, row) in rows.iter().enumerate() {
            let val = base.overridden_by(&grid.scenario_valuation(i, &base));
            for ((_, expected), got) in set.eval(&val).unwrap().iter().zip(row) {
                assert_eq!(expected, got, "scenario {i}");
            }
        }
    }

    #[test]
    fn empty_sweep() {
        let (_, set, applied) = setup();
        let engines = CompiledComparison::compile(&set, &applied.compressed);
        let sweep = sweep_full_vs_compressed(
            &engines,
            &applied.meta_vars,
            &Valuation::with_default(Rat::ONE),
            &[][..],
        );
        assert!(sweep.is_empty());
        assert!(sweep.is_exact());
        assert_eq!(sweep.max_rel_error(), 0.0);
    }

    #[test]
    fn sweep_speedup_reports_batch_sizes() {
        let (_, set, applied) = setup();
        let full = BatchEvaluator::new(
            cobra_provenance::EvalProgram::compile(&set).to_f64_program(),
        );
        let compressed = BatchEvaluator::new(
            cobra_provenance::EvalProgram::compile(&applied.compressed).to_f64_program(),
        );
        let full_rows: Vec<Vec<f64>> =
            (0..16).map(|_| vec![1.0; full.program().num_locals()]).collect();
        let comp_rows: Vec<Vec<f64>> = (0..16)
            .map(|_| vec![1.0; compressed.program().num_locals()])
            .collect();
        let m = measure_sweep_speedup(&full, &compressed, &full_rows, &comp_rows, 1, 3);
        assert_eq!(m.full_size, 14);
        assert_eq!(m.compressed_size, 6);
        assert!(m.speedup_percent() <= 100.0);
    }
}
