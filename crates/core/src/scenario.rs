//! Batched scenario sweeps: many hypotheticals in one compiled pass.
//!
//! The interactive loop the paper demonstrates — "what if March prices
//! dropped 20%? what if business plans rose 10%? …" — evaluates the same
//! provenance under many valuations. Instead of re-walking the term lists
//! per scenario, this module compiles the full and compressed polynomial
//! sets once (via [`cobra_provenance::compile`]) and evaluates whole
//! scenario batches through the same engine, so full-vs-compressed numbers
//! are produced under identical evaluation machinery.

use crate::assign::{self, ResultComparison, ResultRow, SpeedupMeasurement};
use crate::cut::MetaVar;
use cobra_provenance::{BatchEvaluator, PolySet, Valuation};
use cobra_util::timing::time_best_of;
use cobra_util::Rat;

/// The full-vs-compressed engines for one compression outcome, compiled
/// once and reusable across any number of sweeps.
#[derive(Clone, Debug)]
pub struct CompiledComparison {
    /// Batched evaluator over the full provenance (exact coefficients).
    pub full: BatchEvaluator<Rat>,
    /// Batched evaluator over the compressed provenance.
    pub compressed: BatchEvaluator<Rat>,
}

impl CompiledComparison {
    /// Compiles both sides.
    pub fn compile(full: &PolySet<Rat>, compressed: &PolySet<Rat>) -> CompiledComparison {
        CompiledComparison {
            full: BatchEvaluator::compile(full),
            compressed: BatchEvaluator::compile(compressed),
        }
    }
}

/// Results of a batched scenario sweep: one [`ResultComparison`] per
/// scenario, in input order.
#[derive(Clone, Debug, Default)]
pub struct ScenarioSweep {
    /// Per-scenario full-vs-compressed comparisons.
    pub comparisons: Vec<ResultComparison>,
}

impl ScenarioSweep {
    /// Number of scenarios evaluated.
    pub fn len(&self) -> usize {
        self.comparisons.len()
    }

    /// True iff no scenario was evaluated.
    pub fn is_empty(&self) -> bool {
        self.comparisons.is_empty()
    }

    /// Largest relative error over every scenario and result tuple.
    pub fn max_rel_error(&self) -> f64 {
        self.comparisons
            .iter()
            .map(ResultComparison::max_rel_error)
            .fold(0.0, f64::max)
    }

    /// True iff compression introduced no error in any scenario.
    pub fn is_exact(&self) -> bool {
        self.comparisons.iter().all(ResultComparison::is_exact)
    }
}

/// Evaluates `scenarios` (leaf-level, merged over `base`) on both the full
/// and the compressed provenance through the compiled batch engine. Each
/// scenario is projected onto the meta-variables by group averaging,
/// exactly like [`CobraSession::assign`](crate::session::CobraSession::assign).
///
/// # Panics
/// Panics if some scenario (merged over `base`) does not cover a variable —
/// give `base` a default, as assignment screens always do.
pub fn sweep_full_vs_compressed(
    engines: &CompiledComparison,
    metas: &[MetaVar],
    base: &Valuation<Rat>,
    scenarios: &[Valuation<Rat>],
) -> ScenarioSweep {
    let mut full_rows = Vec::with_capacity(scenarios.len());
    let mut comp_rows = Vec::with_capacity(scenarios.len());
    for scenario in scenarios {
        let (leaf_val, meta_val) = project_pair(metas, base, scenario);
        full_rows.push(
            engines
                .full
                .program()
                .bind(&leaf_val)
                .expect("leaf valuation must be total"),
        );
        comp_rows.push(
            engines
                .compressed
                .program()
                .bind(&meta_val)
                .expect("meta valuation must be total"),
        );
    }
    let full = engines.full.eval_batch(&full_rows);
    let compressed = engines.compressed.eval_batch(&comp_rows);
    let labels = engines.full.program().labels();
    let comparisons = (0..scenarios.len())
        .map(|s| compare_rows(labels, full.row(s).to_vec(), compressed.row(s).to_vec()))
        .collect();
    ScenarioSweep { comparisons }
}

/// The canonical leaf/meta valuation pair for one scenario: the scenario
/// merged over the base, and its projection onto the meta-variables by
/// group averaging. Every assignment and timing path shares this rule.
pub(crate) fn project_pair(
    metas: &[MetaVar],
    base: &Valuation<Rat>,
    scenario: &Valuation<Rat>,
) -> (Valuation<Rat>, Valuation<Rat>) {
    let leaf_val = base.overridden_by(scenario);
    let meta_val = leaf_val.overridden_by(&assign::project_scenario(metas, &leaf_val));
    (leaf_val, meta_val)
}

/// Pairs full and compressed result values by position into a
/// [`ResultComparison`].
///
/// # Panics
/// Panics unless both value vectors have exactly one entry per label —
/// the full and compressed polynomial sets must align.
pub(crate) fn compare_rows(
    labels: &[String],
    full: Vec<Rat>,
    compressed: Vec<Rat>,
) -> ResultComparison {
    assert_eq!(labels.len(), full.len(), "polynomial sets must align");
    assert_eq!(labels.len(), compressed.len(), "polynomial sets must align");
    ResultComparison {
        rows: labels
            .iter()
            .zip(full.into_iter().zip(compressed))
            .map(|(label, (full, compressed))| ResultRow {
                label: label.clone(),
                full,
                compressed,
            })
            .collect(),
    }
}

/// Times a batched sweep of `scenarios` over the full and the compressed
/// provenance on the `f64` fast path — the batched generalization of
/// [`assign::measure_assignment_speedup`]. Reported durations cover the
/// *whole batch* (binding excluded, evaluation only), best-of-`runs` after
/// `warmup` rounds.
pub fn measure_sweep_speedup(
    full: &BatchEvaluator<f64>,
    compressed: &BatchEvaluator<f64>,
    full_rows: &[Vec<f64>],
    comp_rows: &[Vec<f64>],
    warmup: usize,
    runs: usize,
) -> SpeedupMeasurement {
    let (_, full_time) = time_best_of(warmup, runs, || {
        std::hint::black_box(full.eval_batch_fast(full_rows).num_scenarios())
    });
    let (_, compressed_time) = time_best_of(warmup, runs, || {
        std::hint::black_box(compressed.eval_batch_fast(comp_rows).num_scenarios())
    });
    SpeedupMeasurement {
        full_time,
        compressed_time,
        full_size: full.program().num_terms(),
        compressed_size: compressed.program().num_terms(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply::apply_cut;
    use crate::assign::uniform_scenario;
    use crate::cut::Cut;
    use crate::tree::paper_plans_tree;
    use cobra_provenance::{parse_polyset, VarRegistry};

    fn rat(s: &str) -> Rat {
        Rat::parse(s).unwrap()
    }

    fn setup() -> (
        VarRegistry,
        PolySet<Rat>,
        crate::apply::AppliedAbstraction<Rat>,
    ) {
        let mut reg = VarRegistry::new();
        let tree = paper_plans_tree(&mut reg);
        let src = "\
P1 = 208.8*p1*m1 + 240*p1*m3 + 127.4*f1*m1 + 114.45*f1*m3 \
   + 75.9*y1*m1 + 72.5*y1*m3 + 42*v*m1 + 24.2*v*m3
P2 = 77.9*b1*m1 + 80.5*b1*m3 + 52.2*e*m1 + 56.5*e*m3 + 69.7*b2*m1 + 100.65*b2*m3";
        let set = parse_polyset(src, &mut reg).unwrap();
        let cut = Cut::from_names(&tree, &["Business", "Special", "Standard"]).unwrap();
        let applied = apply_cut(&set, &tree, &cut, &mut reg);
        (reg, set, applied)
    }

    #[test]
    fn sweep_matches_single_scenario_evaluation() {
        let (mut reg, set, applied) = setup();
        let engines = CompiledComparison::compile(&set, &applied.compressed);
        let base = Valuation::with_default(Rat::ONE);
        let b_vars = ["b1", "b2", "e"].map(|n| reg.var(n));
        let m3 = reg.var("m3");
        let scenarios = vec![
            uniform_scenario(&b_vars, rat("1.1")),
            Valuation::with_default(Rat::ONE).bind(m3, rat("0.8")),
            uniform_scenario(&[b_vars[0]], rat("1.3")),
        ];
        let sweep = sweep_full_vs_compressed(&engines, &applied.meta_vars, &base, &scenarios);
        assert_eq!(sweep.len(), 3);
        for (scenario, cmp) in scenarios.iter().zip(&sweep.comparisons) {
            let leaf_val = base.overridden_by(scenario);
            let meta_val = leaf_val
                .overridden_by(&assign::project_scenario(&applied.meta_vars, &leaf_val));
            let expected = ResultComparison::evaluate(
                &set,
                &leaf_val,
                &applied.compressed,
                &meta_val,
            );
            assert_eq!(cmp.rows, expected.rows);
        }
        // aligned scenarios are exact, the misaligned third one is not
        assert!(sweep.comparisons[0].is_exact());
        assert!(sweep.comparisons[1].is_exact());
        assert!(!sweep.comparisons[2].is_exact());
        assert!(!sweep.is_exact());
        assert!(sweep.max_rel_error() > 0.0);
    }

    #[test]
    fn empty_sweep() {
        let (_, set, applied) = setup();
        let engines = CompiledComparison::compile(&set, &applied.compressed);
        let sweep = sweep_full_vs_compressed(
            &engines,
            &applied.meta_vars,
            &Valuation::with_default(Rat::ONE),
            &[],
        );
        assert!(sweep.is_empty());
        assert!(sweep.is_exact());
        assert_eq!(sweep.max_rel_error(), 0.0);
    }

    #[test]
    fn sweep_speedup_reports_batch_sizes() {
        let (_, set, applied) = setup();
        let full = BatchEvaluator::new(
            cobra_provenance::EvalProgram::compile(&set).to_f64_program(),
        );
        let compressed = BatchEvaluator::new(
            cobra_provenance::EvalProgram::compile(&applied.compressed).to_f64_program(),
        );
        let full_rows: Vec<Vec<f64>> =
            (0..16).map(|_| vec![1.0; full.program().num_locals()]).collect();
        let comp_rows: Vec<Vec<f64>> = (0..16)
            .map(|_| vec![1.0; compressed.program().num_locals()])
            .collect();
        let m = measure_sweep_speedup(&full, &compressed, &full_rows, &comp_rows, 1, 3);
        assert_eq!(m.full_size, 14);
        assert_eq!(m.compressed_size, 6);
        assert!(m.speedup_percent() <= 100.0);
    }
}
