//! Brute-force optimizer — the test oracle for [`crate::dp`].
//!
//! Enumerates every cut (or every combination of cuts for a forest),
//! measures the true compressed size by actually applying the abstraction,
//! and picks the maximal-cardinality feasible cut. Exponential; only for
//! small trees and the correctness test-suite.

use crate::apply::apply_cut;
use crate::cut::{enumerate_cuts, Cut};
use crate::error::{CoreError, Result};
use crate::tree::AbstractionTree;
use cobra_provenance::{Coeff, PolySet, VarRegistry};

/// Output of the brute-force search.
#[derive(Clone, Debug)]
pub struct BruteSolution {
    /// Best cut per tree (singleton for the single-tree problem).
    pub cuts: Vec<Cut>,
    /// Total variables across the cuts.
    pub variables: usize,
    /// True compressed size (measured by application, not by formula).
    pub size: u64,
}

/// Exhaustive single-tree optimum: max `|cut|` with measured size ≤
/// `bound`; ties by smaller size.
pub fn optimize_single<C: Coeff>(
    set: &PolySet<C>,
    tree: &AbstractionTree,
    bound: u64,
    reg: &mut VarRegistry,
    limit: usize,
) -> Result<BruteSolution> {
    let cuts = enumerate_cuts(tree, limit)?;
    let mut best: Option<BruteSolution> = None;
    let mut min_size = u64::MAX;
    for cut in cuts {
        let applied = apply_cut(set, tree, &cut, reg);
        let size = applied.compressed_size as u64;
        min_size = min_size.min(size);
        if size > bound {
            continue;
        }
        let candidate = BruteSolution {
            variables: cut.len(),
            cuts: vec![cut],
            size,
        };
        let better = match &best {
            None => true,
            Some(b) => {
                candidate.variables > b.variables
                    || (candidate.variables == b.variables && candidate.size < b.size)
            }
        };
        if better {
            best = Some(candidate);
        }
    }
    best.ok_or(CoreError::InfeasibleBound {
        min_achievable: min_size,
    })
}

/// Exhaustive forest optimum: tries the cartesian product of cuts across
/// all trees. `limit` bounds the **total** number of combinations.
pub fn optimize_forest<C: Coeff>(
    set: &PolySet<C>,
    trees: &[&AbstractionTree],
    bound: u64,
    reg: &mut VarRegistry,
    limit: usize,
) -> Result<BruteSolution> {
    let per_tree: Vec<Vec<Cut>> = trees
        .iter()
        .map(|t| enumerate_cuts(t, limit))
        .collect::<Result<_>>()?;
    let combos: usize = per_tree.iter().map(Vec::len).product();
    if combos > limit {
        return Err(CoreError::TooManyCuts { limit });
    }

    let mut indices = vec![0usize; trees.len()];
    let mut best: Option<BruteSolution> = None;
    let mut min_size = u64::MAX;
    loop {
        let cuts: Vec<(&AbstractionTree, &Cut)> = trees
            .iter()
            .zip(per_tree.iter().zip(&indices))
            .map(|(&t, (tree_cuts, &i))| (t, &tree_cuts[i]))
            .collect();
        let applied = crate::apply::apply_cuts(set, &cuts, reg);
        let size = applied.compressed_size as u64;
        min_size = min_size.min(size);
        if size <= bound {
            let variables = indices
                .iter()
                .zip(&per_tree)
                .map(|(&i, cuts)| cuts[i].len())
                .sum();
            let candidate = BruteSolution {
                cuts: indices
                    .iter()
                    .zip(&per_tree)
                    .map(|(&i, cuts)| cuts[i].clone())
                    .collect(),
                variables,
                size,
            };
            let better = match &best {
                None => true,
                Some(b) => {
                    candidate.variables > b.variables
                        || (candidate.variables == b.variables && candidate.size < b.size)
                }
            };
            if better {
                best = Some(candidate);
            }
        }
        // advance the odometer
        let mut t = 0;
        loop {
            if t == indices.len() {
                return best.ok_or(CoreError::InfeasibleBound {
                    min_achievable: min_size,
                });
            }
            indices[t] += 1;
            if indices[t] < per_tree[t].len() {
                break;
            }
            indices[t] = 0;
            t += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::paper_plans_tree;
    use cobra_provenance::parse_polyset;
    use cobra_util::Rat;

    fn setup() -> (VarRegistry, AbstractionTree, PolySet<Rat>) {
        let mut reg = VarRegistry::new();
        let tree = paper_plans_tree(&mut reg);
        let src = "\
P1 = 208.8*p1*m1 + 240*p1*m3 + 127.4*f1*m1 + 114.45*f1*m3 \
   + 75.9*y1*m1 + 72.5*y1*m3 + 42*v*m1 + 24.2*v*m3
P2 = 77.9*b1*m1 + 80.5*b1*m3 + 52.2*e*m1 + 56.5*e*m3 + 69.7*b2*m1 + 100.65*b2*m3";
        let set = parse_polyset(src, &mut reg).unwrap();
        (reg, tree, set)
    }

    #[test]
    fn brute_matches_known_optima() {
        let (mut reg, tree, set) = setup();
        // 4 variables at size 6: {p1, p2, Special, Business} — p2 is free
        // because it occurs in no polynomial.
        let sol = optimize_single(&set, &tree, 6, &mut reg, 10_000).unwrap();
        assert_eq!(sol.variables, 4);
        assert_eq!(sol.size, 6);
        let sol = optimize_single(&set, &tree, 100, &mut reg, 10_000).unwrap();
        assert_eq!(sol.variables, 11);
        assert!(matches!(
            optimize_single(&set, &tree, 1, &mut reg, 10_000),
            Err(CoreError::InfeasibleBound { min_achievable: 4 })
        ));
    }

    #[test]
    fn forest_search_uses_both_trees() {
        let (mut reg, plans, set) = setup();
        let months = AbstractionTree::parse("M(m1,m3)", &mut reg).unwrap();
        // bound 2: must collapse both trees completely (2 polynomials × 1)
        let sol =
            optimize_forest(&set, &[&plans, &months], 2, &mut reg, 100_000).unwrap();
        assert_eq!(sol.size, 2);
        assert_eq!(sol.variables, 2); // {Plans} + {M}
        // bound 7: merging the two months halves the provenance (7
        // monomials), letting the plans tree stay at its 11 leaves —
        // 11 + 1 = 12 variables.
        let sol =
            optimize_forest(&set, &[&plans, &months], 7, &mut reg, 100_000).unwrap();
        assert_eq!(sol.variables, 12);
        assert_eq!(sol.size, 7);
    }

    use crate::tree::AbstractionTree;
}
