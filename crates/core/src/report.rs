//! Compression reports: the information COBRA's UI surfaces (paper §3) —
//! provenance sizes, expressiveness, the chosen cut, assignment speedup,
//! and the planner's whole size/expressiveness frontier — as displayable
//! structures.

use crate::assign::SpeedupMeasurement;
use crate::planner::CutFrontier;
use crate::tree::AbstractionTree;
use cobra_provenance::DagStats;
use cobra_util::table::thousands;
use cobra_util::Table;
use std::fmt;

/// Summary of one compression run.
#[derive(Clone, Debug)]
pub struct CompressionReport {
    /// The user's bound on the provenance size.
    pub bound: u64,
    /// Monomials before compression.
    pub original_size: u64,
    /// Monomials after compression.
    pub compressed_size: u64,
    /// Distinct variables before compression.
    pub original_vars: usize,
    /// Distinct variables after compression.
    pub compressed_vars: usize,
    /// Human-readable cut description per tree, e.g.
    /// `Plans: {Business, Special, Standard}`.
    pub cuts: Vec<String>,
    /// Optional assignment-speedup measurement.
    pub speedup: Option<SpeedupMeasurement>,
}

impl CompressionReport {
    /// `compressed / original` size ratio.
    pub fn ratio(&self) -> f64 {
        if self.original_size == 0 {
            1.0
        } else {
            self.compressed_size as f64 / self.original_size as f64
        }
    }

    /// Renders as a two-column table.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(["metric", "value"]).numeric();
        t.row(["bound".to_owned(), thousands(self.bound)]);
        t.row([
            "provenance size (full)".to_owned(),
            thousands(self.original_size),
        ]);
        t.row([
            "provenance size (compressed)".to_owned(),
            thousands(self.compressed_size),
        ]);
        t.row(["size ratio".to_owned(), format!("{:.3}", self.ratio())]);
        t.row([
            "distinct variables (full)".to_owned(),
            self.original_vars.to_string(),
        ]);
        t.row([
            "distinct variables (compressed)".to_owned(),
            self.compressed_vars.to_string(),
        ]);
        for cut in &self.cuts {
            t.row(["cut".to_owned(), cut.clone()]);
        }
        if let Some(s) = &self.speedup {
            t.row([
                "assignment time (full)".to_owned(),
                format!("{:.3} ms", s.full_time.as_secs_f64() * 1e3),
            ]);
            t.row([
                "assignment time (compressed)".to_owned(),
                format!("{:.3} ms", s.compressed_time.as_secs_f64() * 1e3),
            ]);
            t.row([
                "assignment speedup".to_owned(),
                format!("{:.0}%", s.speedup_percent()),
            ]);
        }
        t
    }
}

impl fmt::Display for CompressionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_table())
    }
}

/// Summary of one [`compile_dag`](crate::CobraSession::compile_dag) run:
/// the per-side rewrite accounting of the algebraic compression, in the
/// units the experiment gate measures (static multiplies per scenario).
#[derive(Clone, Copy, Debug)]
pub struct DagReport {
    /// Name of the [`DagOptimizer`](crate::planner::DagOptimizer) that ran.
    pub optimizer: &'static str,
    /// Rewrite statistics of the full-provenance program.
    pub full: DagStats,
    /// Rewrite statistics of the compressed-side program.
    pub compressed: DagStats,
}

impl DagReport {
    /// The full-side op-reduction factor (`flat / dag` multiplies) — the
    /// number experiment e17 gates at ≥ 1.5 on the telephony workload.
    pub fn op_ratio(&self) -> f64 {
        self.full.op_ratio()
    }

    /// Renders as a two-column table.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(["metric", "value"]).numeric();
        t.row(["optimizer".to_owned(), self.optimizer.to_owned()]);
        for (side, stats) in [("full", &self.full), ("compressed", &self.compressed)] {
            t.row([
                format!("slots ({side})"),
                thousands(stats.num_slots as u64),
            ]);
            t.row([
                format!("terms ({side})"),
                format!(
                    "{} → {}",
                    thousands(stats.flat_terms as u64),
                    thousands(stats.dag_terms as u64)
                ),
            ]);
            t.row([
                format!("multiplies ({side})"),
                format!(
                    "{} → {} ({:.2}×)",
                    thousands(stats.flat_multiply_ops),
                    thousands(stats.dag_multiply_ops),
                    stats.op_ratio()
                ),
            ]);
        }
        t
    }
}

impl fmt::Display for DagReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_table())
    }
}

/// Renders a planner [`CutFrontier`] as the bound-sweep table the demo's
/// interactive slider walks: one row per selectable point with its
/// expressiveness, minimal size, and witness cut.
pub fn frontier_table(frontier: &CutFrontier, tree: &AbstractionTree) -> Table {
    let mut t = Table::new(["variables", "min size", "cut"]).numeric();
    for point in frontier.points() {
        t.row([
            point.variables.to_string(),
            thousands(point.size),
            point.cut.display(tree),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_table_renders_every_point() {
        use crate::groups::GroupAnalysis;
        use crate::planner::{CutPlanner, ExactDp, PlanContext};
        use crate::tree::paper_plans_tree;
        use cobra_provenance::VarRegistry;

        let mut reg = VarRegistry::new();
        let tree = paper_plans_tree(&mut reg);
        let set = cobra_provenance::parse_polyset(
            "P1 = 208.8*p1*m1 + 240*p1*m3 + 42*v*m1 + 24.2*v*m3",
            &mut reg,
        )
        .unwrap();
        let analysis = GroupAnalysis::analyze(&set, &tree).unwrap();
        let frontier = ExactDp
            .plan_frontier(&PlanContext::new(&tree, &analysis))
            .unwrap();
        let rendered = frontier_table(&frontier, &tree).to_string();
        for point in frontier.points() {
            assert!(rendered.contains(&point.variables.to_string()));
        }
        assert!(rendered.contains("{Plans}"));
    }

    #[test]
    fn report_renders_all_rows() {
        let r = CompressionReport {
            bound: 94_600,
            original_size: 139_260,
            compressed_size: 88_620,
            original_vars: 23,
            compressed_vars: 19,
            cuts: vec!["Plans: {SB, e, F, Y, v, p1, p2}".to_owned()],
            speedup: None,
        };
        let s = r.to_string();
        assert!(s.contains("139,260"));
        assert!(s.contains("88,620"));
        assert!(s.contains("{SB, e, F, Y, v, p1, p2}"));
        assert!((r.ratio() - 0.6364).abs() < 1e-3);
    }

    #[test]
    fn dag_report_renders_both_sides() {
        let stats = |flat_ops: u64, dag_ops: u64| DagStats {
            num_polys: 2,
            num_slots: 3,
            flat_terms: 14,
            dag_terms: 17,
            flat_multiply_ops: flat_ops,
            dag_multiply_ops: dag_ops,
        };
        let r = DagReport {
            optimizer: "algebraic-dag",
            full: stats(278_520, 139_524),
            compressed: stats(100, 80),
        };
        assert!((r.op_ratio() - 278_520.0 / 139_524.0).abs() < 1e-9);
        let s = r.to_string();
        assert!(s.contains("algebraic-dag"));
        assert!(s.contains("multiplies (full)"));
        assert!(s.contains("278,520"));
        assert!(s.contains("multiplies (compressed)"));
    }

    #[test]
    fn empty_original_ratio_is_one() {
        let r = CompressionReport {
            bound: 0,
            original_size: 0,
            compressed_size: 0,
            original_vars: 0,
            compressed_vars: 0,
            cuts: vec![],
            speedup: None,
        };
        assert_eq!(r.ratio(), 1.0);
    }
}
