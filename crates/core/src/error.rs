//! Error types for the compression pipeline.

use std::fmt;

/// Errors raised while building trees, analysing provenance, or optimizing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// Tree construction: duplicate node name within one tree.
    DuplicateNodeName(String),
    /// Tree construction: a leaf variable appears twice.
    DuplicateLeafVar(String),
    /// Tree text parse failure.
    TreeParse {
        /// Byte offset of the failure in the source text.
        offset: usize,
        /// What the parser expected or found.
        message: String,
    },
    /// A node name did not resolve in the tree.
    UnknownNode(String),
    /// The node set is not a valid cut (not an antichain covering all
    /// leaves). The payload explains which leaf is uncovered / doubly
    /// covered.
    InvalidCut(String),
    /// Single-tree analysis found a monomial containing two or more
    /// distinct leaves of the same tree — outside the demo paper's setting
    /// (each monomial may mention at most one variable under the tree).
    MonomialSpansTree {
        /// Label of the offending polynomial.
        poly: String,
        /// The two variable names found.
        vars: (String, String),
    },
    /// No cut satisfies the size bound; the payload is the smallest
    /// achievable total size (cut at the root).
    InfeasibleBound {
        /// Monomial count of the coarsest (all-roots) abstraction.
        min_achievable: u64,
    },
    /// Cut enumeration exceeded the caller-supplied limit.
    TooManyCuts {
        /// The limit that was exceeded.
        limit: usize,
    },
    /// Session misuse (missing inputs).
    Session(String),
    /// A scenario grid is malformed (overlapping axes, cardinality
    /// overflow).
    InvalidScenarioGrid(String),
    /// A sweep was cancelled through its budget's
    /// [`CancelToken`](cobra_util::CancelToken) (or stopped at a scenario
    /// cap) and the caller demanded a complete result
    /// ([`SweepOutcome::into_complete`](crate::budget::SweepOutcome::into_complete)).
    Cancelled,
    /// A sweep ran past its budget's wall-clock deadline and the caller
    /// demanded a complete result.
    DeadlineExceeded,
    /// A sweep worker thread panicked. The panic was caught at its span
    /// boundary, sibling workers were cancelled, and the process and
    /// session both stay live; the payload is the worker's panic message.
    WorkerPanicked(String),
    /// A [`SweepBudget`](crate::budget::SweepBudget) is statically
    /// unsatisfiable (e.g. a scenario cap of zero) — a misuse, unlike a
    /// deadline that merely expired.
    InfeasibleBudget(String),
    /// Exact rational arithmetic overflowed `i128` while folding sweep
    /// results (reachable on adversarial coefficients). Caught at the
    /// session boundary — the worker and the session both stay live,
    /// matching the panic-isolation semantics of
    /// [`WorkerPanicked`](Self::WorkerPanicked); the payload is the
    /// overflow report.
    ExactOverflow(String),
    /// A delta update could not be applied; the session's polynomials
    /// are left untouched. The payload is the
    /// [`DeltaError`](cobra_provenance::DeltaError) (or label-resolution
    /// failure) rendered.
    Delta(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::DuplicateNodeName(n) => write!(f, "duplicate node name in tree: {n}"),
            CoreError::DuplicateLeafVar(v) => write!(f, "duplicate leaf variable in tree: {v}"),
            CoreError::TreeParse { offset, message } => {
                write!(f, "tree parse error at byte {offset}: {message}")
            }
            CoreError::UnknownNode(n) => write!(f, "unknown tree node: {n}"),
            CoreError::InvalidCut(m) => write!(f, "invalid cut: {m}"),
            CoreError::MonomialSpansTree { poly, vars } => write!(
                f,
                "monomial in {poly} mentions two leaves of the same tree ({} and {}); \
                 the single-tree algorithm requires at most one",
                vars.0, vars.1
            ),
            CoreError::InfeasibleBound { min_achievable } => write!(
                f,
                "no abstraction meets the bound; the coarsest cut still has {min_achievable} monomials"
            ),
            CoreError::TooManyCuts { limit } => {
                write!(f, "cut enumeration exceeded limit of {limit}")
            }
            CoreError::Session(m) => write!(f, "session error: {m}"),
            CoreError::InvalidScenarioGrid(m) => write!(f, "invalid scenario grid: {m}"),
            CoreError::Cancelled => write!(
                f,
                "sweep cancelled before completion; match on SweepOutcome::Partial \
                 to use the exact partial fold"
            ),
            CoreError::DeadlineExceeded => write!(
                f,
                "sweep deadline exceeded before completion; match on \
                 SweepOutcome::Partial to use the exact partial fold"
            ),
            CoreError::WorkerPanicked(m) => {
                write!(f, "sweep worker panicked (session remains usable): {m}")
            }
            CoreError::InfeasibleBudget(m) => write!(f, "infeasible sweep budget: {m}"),
            CoreError::ExactOverflow(m) => write!(
                f,
                "exact arithmetic overflow during sweep (session remains usable): {m}"
            ),
            CoreError::Delta(m) => write!(f, "delta update rejected: {m}"),
        }
    }
}

impl std::error::Error for CoreError {}

/// Core result alias.
pub type Result<T> = std::result::Result<T, CoreError>;
