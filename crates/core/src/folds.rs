//! Built-in streaming sweep folds: O(1)-memory aggregates over scenario
//! families.
//!
//! The fold sweep surface
//! ([`CobraSession::sweep_fold`](crate::session::CobraSession::sweep_fold),
//! [`CompiledComparison::sweep_fold`](crate::scenario::CompiledComparison::sweep_fold))
//! hands each scenario's full/compressed result rows to a callback
//! instead of materializing the O(scenarios × polys) result matrix. The
//! aggregate questions the paper's analyst actually asks — *what is the
//! worst-case error of the abstraction? which scenario moves the results
//! most? how are the outcomes distributed?* — are folds over that
//! stream, and this module ships the common ones:
//!
//! * [`MaxAbsError`] — worst-case absolute/relative full-vs-compressed
//!   error over the family, with the offending scenario index.
//! * [`ArgmaxImpact`] — the scenario whose results move farthest from a
//!   baseline (`Σ_p |P_p(scenario) − P_p(base)|`).
//! * [`Histogram`] — fixed-range bucket counts of one result tuple.
//! * [`TopK`] — the `k` scenarios with the largest value of one result
//!   tuple, in O(k) memory.
//!
//! Every fold implements [`SweepFold`] and plugs into a fold sweep via
//! [`step`]; all of them work on both the exact (`Rat`) and approximate
//! (`f64`) streams. Each built-in additionally implements [`MergeFold`] —
//! a commutative merge of partial accumulators with ties broken toward
//! the lowest scenario index — so the same fold runs unchanged on the
//! parallel sweeps
//! ([`CobraSession::sweep_fold_par`](crate::session::CobraSession::sweep_fold_par))
//! with results bit-identical to the sequential pass at any thread
//! count. Folds compose as tuples: `(MaxAbsError::new(), TopK::new(0, 5))`
//! is itself a `MergeFold` answering both questions in one pass.
//!
//! # Example
//!
//! The worst-case abstraction error and the top scenarios of a grid,
//! computed in one streamed pass with no per-scenario storage:
//!
//! ```
//! use cobra_core::folds::{self, MaxAbsError, SweepFold, TopK};
//! use cobra_core::{CobraSession, ScenarioSet};
//! use cobra_util::Rat;
//!
//! let mut session = CobraSession::from_text(
//!     "P1 = 208.8*p1*m1 + 240*p1*m3 + 42*v*m1 + 24.2*v*m3",
//! ).unwrap();
//! session.add_tree_text("Plans(Standard(p1,p2), v)").unwrap();
//! session.set_bound(2);
//! session.compress().unwrap();
//!
//! let m3 = session.registry_mut().var("m3");
//! let p1 = session.registry_mut().var("p1");
//! let rat = |s: &str| Rat::parse(s).unwrap();
//! let grid = ScenarioSet::grid()
//!     .axis([m3], [rat("0.8"), rat("1"), rat("1.2")])
//!     .axis([p1], [rat("1"), rat("1.1")])
//!     .build()
//!     .unwrap();
//!
//! // Worst-case error of the abstraction over all six scenarios:
//! let worst = session
//!     .sweep_fold(&grid, MaxAbsError::new(), folds::step)
//!     .unwrap()
//!     .finish();
//! // p1 moves alone inside the Standard group → some points are lossy.
//! assert!(worst.max_rel_error > 0.0);
//!
//! // The two highest-revenue scenarios for P1 (result tuple 0):
//! let top = session
//!     .sweep_fold(&grid, TopK::new(0, 2), folds::step)
//!     .unwrap()
//!     .finish();
//! assert_eq!(top.len(), 2);
//! assert!(top[0].1 >= top[1].1);
//! // The maximum sits at m3=1.2, p1=1.1 — the last grid point.
//! assert_eq!(top[0].0, grid.len() - 1);
//! ```

use crate::scenario::FoldItem;
use cobra_provenance::Coeff;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A streaming consumer of fold-sweep items: an online aggregate over
/// the per-scenario full/compressed result rows. Implementations must be
/// O(1) (or O(k)) in the number of scenarios — that is the entire point
/// of the fold surface.
///
/// Folds are generic over the coefficient type so the same aggregate
/// runs on the exact ([`Rat`](cobra_util::Rat)) and the approximate
/// (`f64`) stream; the built-ins aggregate in `f64` on both (error and
/// impact *statistics* are reported as floats everywhere in this crate).
pub trait SweepFold {
    /// What [`finish`](Self::finish) distills the stream into.
    type Output;

    /// Consumes one scenario's result rows (exact or approximate — the
    /// method is generic over the coefficient type, so one fold serves
    /// both streams).
    fn accept<C: Coeff>(&mut self, item: FoldItem<'_, C>);

    /// Finalizes the aggregate.
    fn finish(self) -> Self::Output;
}

/// Adapter from the closure-shaped fold surface to [`SweepFold`]: pass
/// `folds::step` as the fold function and any `SweepFold` as the
/// accumulator — `sweep_fold(set, MaxAbsError::new(), folds::step)`.
pub fn step<C: Coeff, F: SweepFold>(mut fold: F, item: FoldItem<'_, C>) -> F {
    fold.accept(item);
    fold
}

/// A [`SweepFold`] whose partial accumulators can be **merged** — the
/// monoid structure the parallel fold engines
/// ([`CobraSession::sweep_fold_par`](crate::session::CobraSession::sweep_fold_par),
/// [`CompiledComparison::sweep_fold_par`](crate::scenario::CompiledComparison::sweep_fold_par))
/// fan scenario blocks across worker threads with: every worker owns a
/// replica built by [`init`](Self::init), accepts its contiguous scenario
/// span in ascending order, and the partials are merged back **in
/// ascending span order**.
///
/// # Laws
///
/// For any split of an ascending item stream into consecutive runs,
/// accepting each run into a fresh `init()` replica and merging the
/// replicas in run order must equal accepting the whole stream into one
/// accumulator. The engines guarantee the deterministic ascending merge
/// order, so *ordered* monoids (e.g. an appending collector) are lawful;
/// every built-in fold is additionally **commutative** — ties between
/// equal aggregate values break toward the lowest scenario index, never
/// toward whichever partial merged first — so results are bit-identical
/// to the sequential fold at any thread count.
///
/// ```
/// use cobra_core::folds::{MergeFold, SweepFold, TopK};
/// use cobra_core::scenario::FoldItem;
///
/// // Split a stream across two replicas, merge, and get the sequential
/// // answer back — the contract the parallel sweeps rely on.
/// let proto = TopK::new(0, 2);
/// let (mut a, mut b) = (proto.init(), proto.init());
/// for (i, v) in [3.0, 9.0].iter().enumerate() {
///     let row = [*v];
///     a.accept(FoldItem { scenario: i, full: &row, compressed: &[] });
/// }
/// for (i, v) in [9.0, 4.0].iter().enumerate() {
///     let row = [*v];
///     b.accept(FoldItem { scenario: 2 + i, full: &row, compressed: &[] });
/// }
/// let mut merged = proto;
/// merged.merge(a);
/// merged.merge(b);
/// // the 9.0 tie breaks toward scenario 1, not the later replica's 2
/// assert_eq!(merged.finish(), vec![(1, 9.0), (2, 9.0)]);
/// ```
pub trait MergeFold: SweepFold + Sized {
    /// A fresh replica carrying this fold's *configuration* (baseline,
    /// range, `k`, …) but none of its observations — the identity element
    /// handed to each worker.
    fn init(&self) -> Self;

    /// Folds another replica's observations into `self`. The engines call
    /// this in ascending scenario order (`later` saw strictly later
    /// scenario indices), and the built-ins are insensitive to the order
    /// anyway.
    fn merge(&mut self, later: Self);
}

/// Pairs fold in lockstep: both components see every item, so one pass
/// answers two aggregate questions
/// (`sweep_fold_par(set, (MaxAbsError::new(), TopK::new(0, 5)))`).
impl<A: SweepFold, B: SweepFold> SweepFold for (A, B) {
    type Output = (A::Output, B::Output);

    fn accept<C: Coeff>(&mut self, item: FoldItem<'_, C>) {
        self.0.accept(item);
        self.1.accept(item);
    }

    fn finish(self) -> Self::Output {
        (self.0.finish(), self.1.finish())
    }
}

impl<A: MergeFold, B: MergeFold> MergeFold for (A, B) {
    fn init(&self) -> Self {
        (self.0.init(), self.1.init())
    }

    fn merge(&mut self, later: Self) {
        self.0.merge(later.0);
        self.1.merge(later.1);
    }
}

/// Triples fold in lockstep, like the pair composition.
impl<A: SweepFold, B: SweepFold, C2: SweepFold> SweepFold for (A, B, C2) {
    type Output = (A::Output, B::Output, C2::Output);

    fn accept<C: Coeff>(&mut self, item: FoldItem<'_, C>) {
        self.0.accept(item);
        self.1.accept(item);
        self.2.accept(item);
    }

    fn finish(self) -> Self::Output {
        (self.0.finish(), self.1.finish(), self.2.finish())
    }
}

impl<A: MergeFold, B: MergeFold, C2: MergeFold> MergeFold for (A, B, C2) {
    fn init(&self) -> Self {
        (self.0.init(), self.1.init(), self.2.init())
    }

    fn merge(&mut self, later: Self) {
        self.0.merge(later.0);
        self.1.merge(later.1);
        self.2.merge(later.2);
    }
}

/// True iff `(challenger_stat, challenger_at)` beats the incumbent under
/// the shared argmax rule: strictly larger statistic wins; equal
/// statistics break toward the **lowest scenario index**. The rule makes
/// every argmax-shaped fold merge-order independent — two partials
/// observing the same extremum agree on the winner no matter which side
/// of a span boundary (or merge tree) saw it.
fn argmax_beats(challenger: (f64, usize), incumbent: Option<(f64, usize)>) -> bool {
    match incumbent {
        None => true,
        Some((stat, at)) => {
            challenger.0 > stat || (challenger.0 == stat && challenger.1 < at)
        }
    }
}

/// Worst-case full-vs-compressed error over the family: the largest
/// absolute and relative deviations across every scenario and result
/// tuple, with the scenario indices where they occur — the paper's
/// "what is the worst-case error of the abstraction?" in one streamed
/// pass.
#[derive(Clone, Debug, Default)]
pub struct MaxAbsError {
    /// Largest `|full − compressed|` observed.
    pub max_abs_error: f64,
    /// Scenario index attaining [`max_abs_error`](Self::max_abs_error).
    pub argmax_abs: Option<usize>,
    /// Largest `|full − compressed| / |full|` observed (∞ if a zero full
    /// value meets a nonzero compressed one, matching
    /// [`ScenarioSweep::max_rel_error`](crate::scenario::ScenarioSweep::max_rel_error)).
    pub max_rel_error: f64,
    /// Scenario index attaining [`max_rel_error`](Self::max_rel_error).
    pub argmax_rel: Option<usize>,
}

impl MaxAbsError {
    /// An empty tracker (zero error, no argmax).
    pub fn new() -> MaxAbsError {
        MaxAbsError::default()
    }
}

impl SweepFold for MaxAbsError {
    type Output = MaxAbsError;

    fn accept<C: Coeff>(&mut self, item: FoldItem<'_, C>) {
        for (f, c) in item.full.iter().zip(item.compressed) {
            let (f, c) = (f.to_f64(), c.to_f64());
            let abs = (f - c).abs();
            if abs > self.max_abs_error {
                self.max_abs_error = abs;
                self.argmax_abs = Some(item.scenario);
            }
            let rel = crate::assign::rel_error_f64(f, c);
            if rel > self.max_rel_error {
                self.max_rel_error = rel;
                self.argmax_rel = Some(item.scenario);
            }
        }
    }

    fn finish(self) -> MaxAbsError {
        self
    }
}

impl MergeFold for MaxAbsError {
    fn init(&self) -> MaxAbsError {
        MaxAbsError::new()
    }

    fn merge(&mut self, later: MaxAbsError) {
        // An argmax of None means the replica never saw a nonzero error —
        // nothing to contribute (`accept` only records strictly positive
        // deviations). Equal errors break toward the lower scenario index,
        // exactly like the sequential first-wins update.
        if let Some(at) = later.argmax_abs {
            if argmax_beats(
                (later.max_abs_error, at),
                self.argmax_abs.map(|i| (self.max_abs_error, i)),
            ) {
                self.max_abs_error = later.max_abs_error;
                self.argmax_abs = Some(at);
            }
        }
        if let Some(at) = later.argmax_rel {
            if argmax_beats(
                (later.max_rel_error, at),
                self.argmax_rel.map(|i| (self.max_rel_error, i)),
            ) {
                self.max_rel_error = later.max_rel_error;
                self.argmax_rel = Some(at);
            }
        }
    }
}

/// The scenario whose results move farthest from a baseline: tracks
/// `argmax_i Σ_p |full_p(i) − base_p|` — "which scenario maximizes
/// impact?" over an unbounded stream. Construct it against the base
/// results (e.g.
/// [`CobraSession::baseline_results`](crate::session::CobraSession::baseline_results)).
#[derive(Clone, Debug)]
pub struct ArgmaxImpact {
    base: Vec<f64>,
    best: Option<(usize, f64)>,
}

impl ArgmaxImpact {
    /// Tracks impact against `base` results (one `f64` per result tuple,
    /// label order).
    pub fn against(base: Vec<f64>) -> ArgmaxImpact {
        ArgmaxImpact { base, best: None }
    }

    /// The winning `(scenario index, impact)` so far.
    pub fn best(&self) -> Option<(usize, f64)> {
        self.best
    }
}

impl SweepFold for ArgmaxImpact {
    type Output = Option<(usize, f64)>;

    fn accept<C: Coeff>(&mut self, item: FoldItem<'_, C>) {
        debug_assert_eq!(item.full.len(), self.base.len(), "baseline width");
        let impact: f64 = item
            .full
            .iter()
            .zip(&self.base)
            .map(|(f, b)| (f.to_f64() - b).abs())
            .sum();
        // Explicit tie-break (lowest scenario index wins) instead of
        // bare first-wins: on an ascending stream they coincide, and the
        // explicit rule makes the winner independent of how scenarios
        // were partitioned across parallel workers.
        if argmax_beats(
            (impact, item.scenario),
            self.best.map(|(i, b)| (b, i)),
        ) {
            self.best = Some((item.scenario, impact));
        }
    }

    fn finish(self) -> Option<(usize, f64)> {
        self.best
    }
}

impl MergeFold for ArgmaxImpact {
    fn init(&self) -> ArgmaxImpact {
        ArgmaxImpact {
            base: self.base.clone(),
            best: None,
        }
    }

    fn merge(&mut self, later: ArgmaxImpact) {
        // Release-mode check, matching Histogram/TopK: merging replicas
        // built against different baselines would compare incommensurate
        // impacts silently. O(num_polys) once per merge — merges are
        // O(workers), never per scenario.
        assert_eq!(self.base, later.base, "replicas must share the baseline");
        if let Some((at, impact)) = later.best {
            if argmax_beats((impact, at), self.best.map(|(i, b)| (b, i))) {
                self.best = Some((at, impact));
            }
        }
    }
}

/// Fixed-range histogram of one result tuple's **full-side** values over
/// the family: `buckets` equal-width bins spanning `[lo, hi)`, plus
/// underflow/overflow counters — the distribution of outcomes over a
/// 10⁷-scenario grid in O(buckets) memory.
#[derive(Clone, Debug)]
pub struct Histogram {
    poly: usize,
    lo: f64,
    hi: f64,
    /// Bin counts, in range order.
    pub counts: Vec<u64>,
    /// Scenarios whose value fell below `lo`.
    pub underflow: u64,
    /// Scenarios whose value fell at or above `hi`.
    pub overflow: u64,
}

impl Histogram {
    /// A histogram of result tuple `poly` over `[lo, hi)` with `buckets`
    /// equal-width bins.
    ///
    /// # Panics
    /// Panics if `buckets == 0` or `lo >= hi`.
    pub fn new(poly: usize, lo: f64, hi: f64, buckets: usize) -> Histogram {
        assert!(buckets > 0, "histogram needs at least one bucket");
        assert!(lo < hi, "histogram range must be non-empty");
        Histogram {
            poly,
            lo,
            hi,
            counts: vec![0; buckets],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Total scenarios observed (in-range + under + over).
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }
}

impl SweepFold for Histogram {
    type Output = Histogram;

    fn accept<C: Coeff>(&mut self, item: FoldItem<'_, C>) {
        let x = item.full[self.poly].to_f64();
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let k = self.counts.len();
            let bin = ((x - self.lo) / (self.hi - self.lo) * k as f64) as usize;
            self.counts[bin.min(k - 1)] += 1;
        }
    }

    fn finish(self) -> Histogram {
        self
    }
}

impl MergeFold for Histogram {
    fn init(&self) -> Histogram {
        Histogram::new(self.poly, self.lo, self.hi, self.counts.len())
    }

    fn merge(&mut self, later: Histogram) {
        assert_eq!(
            (self.poly, self.lo, self.hi, self.counts.len()),
            (later.poly, later.lo, later.hi, later.counts.len()),
            "histogram replicas must share their binning"
        );
        for (c, l) in self.counts.iter_mut().zip(&later.counts) {
            *c += l;
        }
        self.underflow += later.underflow;
        self.overflow += later.overflow;
    }
}

/// `f64` keyed by `total_cmp` so scenario values can live in a heap.
#[derive(Clone, Copy, Debug, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &OrdF64) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &OrdF64) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// The `k` scenarios with the largest **full-side** value of one result
/// tuple, tracked in a size-`k` min-heap — "which scenarios maximize
/// revenue?" over an unbounded stream in O(k) memory. Ties break toward
/// the earlier scenario.
#[derive(Clone, Debug)]
pub struct TopK {
    poly: usize,
    k: usize,
    /// Min-heap of `(value, Reverse(scenario))`: the root is the weakest
    /// kept entry, evicted when a stronger scenario arrives.
    heap: BinaryHeap<Reverse<(OrdF64, Reverse<usize>)>>,
}

impl TopK {
    /// Tracks the `k` largest values of result tuple `poly`.
    pub fn new(poly: usize, k: usize) -> TopK {
        TopK {
            poly,
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Offers one `(value, scenario)` candidate to the heap under the
    /// total `(value desc, scenario asc)` order — shared by `accept` and
    /// `merge`, so selection is a pure top-`k` over that order and cannot
    /// depend on which worker (or in which order) a candidate arrived.
    fn offer(&mut self, entry: Reverse<(OrdF64, Reverse<usize>)>) {
        if self.k == 0 {
            return;
        }
        if self.heap.len() < self.k {
            self.heap.push(entry);
        } else if let Some(weakest) = self.heap.peek() {
            if entry < *weakest {
                self.heap.pop();
                self.heap.push(entry);
            }
        }
    }
}

impl SweepFold for TopK {
    type Output = Vec<(usize, f64)>;

    fn accept<C: Coeff>(&mut self, item: FoldItem<'_, C>) {
        self.offer(Reverse((
            OrdF64(item.full[self.poly].to_f64()),
            Reverse(item.scenario),
        )));
    }

    /// The kept scenarios as `(scenario index, value)`, best first.
    fn finish(self) -> Vec<(usize, f64)> {
        let mut out: Vec<(usize, f64)> = self
            .heap
            .into_iter()
            .map(|Reverse((OrdF64(v), Reverse(s)))| (s, v))
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }
}

impl MergeFold for TopK {
    fn init(&self) -> TopK {
        TopK::new(self.poly, self.k)
    }

    fn merge(&mut self, later: TopK) {
        assert_eq!(
            (self.poly, self.k),
            (later.poly, later.k),
            "top-k replicas must share their configuration"
        );
        for entry in later.heap {
            self.offer(entry);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobra_util::Rat;

    fn item<'a>(scenario: usize, full: &'a [f64], comp: &'a [f64]) -> FoldItem<'a, f64> {
        FoldItem {
            scenario,
            full,
            compressed: comp,
        }
    }

    #[test]
    fn max_abs_error_tracks_both_statistics() {
        let mut fold = MaxAbsError::new();
        fold.accept(item(0, &[10.0, 2.0], &[10.0, 2.0]));
        fold.accept(item(1, &[10.0, 2.0], &[9.0, 2.1]));
        fold.accept(item(2, &[0.5, 2.0], &[0.1, 2.0]));
        let out = fold.finish();
        assert_eq!(out.max_abs_error, 1.0);
        assert_eq!(out.argmax_abs, Some(1));
        assert_eq!(out.max_rel_error, 0.8); // |0.5-0.1|/0.5
        assert_eq!(out.argmax_rel, Some(2));
    }

    #[test]
    fn max_abs_error_zero_full_is_infinite_rel() {
        let mut fold = MaxAbsError::new();
        fold.accept(item(7, &[0.0], &[0.25]));
        assert_eq!(fold.max_rel_error, f64::INFINITY);
        assert_eq!(fold.argmax_rel, Some(7));
        let mut exact = MaxAbsError::new();
        let zero = [Rat::ZERO];
        exact.accept(FoldItem {
            scenario: 0,
            full: &zero,
            compressed: &zero,
        });
        assert_eq!(exact.max_rel_error, 0.0);
    }

    #[test]
    fn argmax_impact_finds_largest_move() {
        let mut fold = ArgmaxImpact::against(vec![10.0, 5.0]);
        fold.accept(item(0, &[10.0, 5.0], &[]));
        fold.accept(item(1, &[12.0, 4.0], &[]));
        fold.accept(item(2, &[11.0, 5.5], &[]));
        assert_eq!(fold.best(), Some((1, 3.0)));
        assert_eq!(fold.finish(), Some((1, 3.0)));
    }

    #[test]
    fn histogram_bins_and_edges() {
        let mut h = Histogram::new(0, 0.0, 10.0, 5);
        for x in [0.0, 1.9, 2.0, 9.99, 10.0, -0.1, 5.0] {
            let row = [x];
            h.accept(item(0, &row, &[]));
        }
        assert_eq!(h.counts, vec![2, 1, 1, 0, 1]);
        assert_eq!(h.underflow, 1);
        assert_eq!(h.overflow, 1);
        assert_eq!(h.total(), 7);
    }

    /// Splits `items` at every possible boundary into two replicas of
    /// `proto`, merges them both ways where the fold is commutative, and
    /// checks the merged result equals sequentially accepting everything.
    fn check_merge_law<F>(proto: &F, items: &[(usize, Vec<f64>, Vec<f64>)], expect: &F)
    where
        F: MergeFold + Clone + std::fmt::Debug + PartialEq,
    {
        for split in 0..=items.len() {
            let (mut a, mut b) = (proto.init(), proto.init());
            for (s, full, comp) in &items[..split] {
                a.accept(item(*s, full, comp));
            }
            for (s, full, comp) in &items[split..] {
                b.accept(item(*s, full, comp));
            }
            let mut ordered = proto.clone();
            ordered.merge(a.clone());
            ordered.merge(b.clone());
            assert_eq!(&ordered, expect, "split {split}");
            // the built-ins are commutative, not just ordered
            let mut reversed = proto.clone();
            reversed.merge(b);
            reversed.merge(a);
            assert_eq!(&reversed, expect, "reversed split {split}");
        }
    }

    #[test]
    fn max_abs_error_merge_matches_sequential_with_ties() {
        // scenarios 1 and 3 produce the *same* absolute error: the lowest
        // scenario index must win no matter where the split lands
        let items: Vec<(usize, Vec<f64>, Vec<f64>)> = vec![
            (0, vec![10.0], vec![10.0]),
            (1, vec![10.0], vec![9.0]),
            (2, vec![4.0], vec![4.5]),
            (3, vec![20.0], vec![19.0]),
        ];
        let mut expect = MaxAbsError::new();
        for (s, full, comp) in &items {
            expect.accept(item(*s, full, comp));
        }
        assert_eq!(expect.argmax_abs, Some(1)); // 1.0 first at scenario 1
        check_merge_law(&MaxAbsError::new(), &items, &expect);
        // merging two empty replicas stays empty
        let mut empty = MaxAbsError::new();
        empty.merge(MaxAbsError::new());
        assert_eq!(empty.argmax_abs, None);
        assert_eq!(empty.max_abs_error, 0.0);
    }

    impl PartialEq for MaxAbsError {
        fn eq(&self, other: &MaxAbsError) -> bool {
            self.max_abs_error == other.max_abs_error
                && self.argmax_abs == other.argmax_abs
                && self.max_rel_error == other.max_rel_error
                && self.argmax_rel == other.argmax_rel
        }
    }

    #[test]
    fn argmax_impact_ties_break_to_lowest_scenario_index() {
        // baseline 10: scenarios 1 and 2 both move by exactly 2.0
        let items: Vec<(usize, Vec<f64>, Vec<f64>)> = vec![
            (0, vec![10.0], vec![]),
            (1, vec![12.0], vec![]),
            (2, vec![8.0], vec![]),
            (3, vec![11.0], vec![]),
        ];
        let proto = ArgmaxImpact::against(vec![10.0]);
        let mut expect = proto.init();
        for (s, full, comp) in &items {
            expect.accept(item(*s, full, comp));
        }
        assert_eq!(expect.best(), Some((1, 2.0)));
        // even accepting the tied later scenario FIRST cannot steal the
        // argmax: the tie-break is by index, not arrival order
        let mut late_first = proto.init();
        late_first.accept(item(2, &[8.0], &[]));
        late_first.accept(item(1, &[12.0], &[]));
        assert_eq!(late_first.best(), Some((1, 2.0)));
        check_merge_law(&proto, &items, &expect);
    }

    impl PartialEq for ArgmaxImpact {
        fn eq(&self, other: &ArgmaxImpact) -> bool {
            self.base == other.base && self.best == other.best
        }
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let items: Vec<(usize, Vec<f64>, Vec<f64>)> = [0.5, 3.0, 11.0, -2.0, 7.0]
            .iter()
            .enumerate()
            .map(|(i, &v)| (i, vec![v], vec![]))
            .collect();
        let proto = Histogram::new(0, 0.0, 10.0, 5);
        let mut expect = proto.init();
        for (s, full, comp) in &items {
            expect.accept(item(*s, full, comp));
        }
        check_merge_law(&proto, &items, &expect);
    }

    impl PartialEq for Histogram {
        fn eq(&self, other: &Histogram) -> bool {
            self.counts == other.counts
                && self.underflow == other.underflow
                && self.overflow == other.overflow
        }
    }

    #[test]
    #[should_panic(expected = "binning")]
    fn histogram_merge_rejects_mismatched_binning() {
        Histogram::new(0, 0.0, 10.0, 5).merge(Histogram::new(0, 0.0, 10.0, 6));
    }

    #[test]
    fn top_k_merge_keeps_lowest_index_on_cross_replica_ties() {
        // three-way tie at 5.0 spanning any split point: the kept pair
        // must always be the two lowest scenario indices {1, 3}
        let items: Vec<(usize, Vec<f64>, Vec<f64>)> = [1.0, 5.0, 3.0, 5.0, 5.0, 2.0]
            .iter()
            .enumerate()
            .map(|(i, &v)| (i, vec![v], vec![]))
            .collect();
        let proto = TopK::new(0, 2);
        let mut expect = proto.init();
        for (s, full, comp) in &items {
            expect.accept(item(*s, full, comp));
        }
        for split in 0..=items.len() {
            let (mut a, mut b) = (proto.init(), proto.init());
            for (s, full, comp) in &items[..split] {
                a.accept(item(*s, full, comp));
            }
            for (s, full, comp) in &items[split..] {
                b.accept(item(*s, full, comp));
            }
            let mut merged = proto.init();
            merged.merge(b); // commutative: later replica first
            merged.merge(a);
            assert_eq!(
                merged.finish(),
                vec![(1, 5.0), (3, 5.0)],
                "split {split}"
            );
        }
        assert_eq!(expect.finish(), vec![(1, 5.0), (3, 5.0)]);
    }

    #[test]
    fn tuple_folds_compose_and_merge() {
        let proto = (
            MaxAbsError::new(),
            ArgmaxImpact::against(vec![10.0]),
            TopK::new(0, 2),
        );
        let items: Vec<(usize, Vec<f64>, Vec<f64>)> = vec![
            (0, vec![10.0], vec![10.0]),
            (1, vec![13.0], vec![12.0]),
            (2, vec![6.0], vec![6.0]),
        ];
        let mut seq = proto.init();
        for (s, full, comp) in &items {
            seq.accept(item(*s, full, comp));
        }
        let (mut a, mut b) = (proto.init(), proto.init());
        a.accept(item(0, &items[0].1, &items[0].2));
        b.accept(item(1, &items[1].1, &items[1].2));
        b.accept(item(2, &items[2].1, &items[2].2));
        let mut merged = proto.init();
        merged.merge(a);
        merged.merge(b);
        let (worst, impact, top) = merged.finish();
        let (sworst, simpact, stop) = seq.finish();
        assert_eq!(worst.argmax_abs, sworst.argmax_abs);
        assert_eq!(worst.max_abs_error, sworst.max_abs_error);
        assert_eq!(impact, simpact);
        assert_eq!(impact, Some((2, 4.0))); // |6 − 10| beats |13 − 10|
        assert_eq!(top, stop);
    }

    #[test]
    fn top_k_keeps_largest_with_stable_ties() {
        let mut fold = TopK::new(0, 3);
        for (i, v) in [1.0, 5.0, 3.0, 5.0, 2.0, 4.0].iter().enumerate() {
            let row = [*v];
            fold.accept(item(i, &row, &[]));
        }
        let out = fold.finish();
        // ties (5.0 at scenarios 1 and 3) keep the earlier scenario first
        assert_eq!(out, vec![(1, 5.0), (3, 5.0), (5, 4.0)]);
        let empty = TopK::new(0, 0).finish();
        assert!(empty.is_empty());
    }
}
