//! Abstraction trees (paper §2, Fig. 2).
//!
//! An abstraction tree is an ontology over provenance variables: leaves are
//! variables, inner nodes name meaningful groups ("SB", "Business",
//! "Special"). A *cut* of the tree (see [`crate::cut`]) replaces every leaf
//! below a chosen node with that node's meta-variable.
//!
//! Trees are arena-allocated; every node records its subtree's leaves as a
//! contiguous range over a preorder-flattened leaf array, so `leaves_under`
//! is an O(1) slice.

use crate::error::{CoreError, Result};
use cobra_provenance::{Var, VarRegistry};
use cobra_util::FxHashMap;
use std::fmt;

/// Index of a node within its tree's arena.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Clone, Debug)]
struct Node {
    name: String,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    /// `Some` iff this node is a leaf (a provenance variable).
    var: Option<Var>,
    /// Range into the flattened leaf array covering this subtree.
    leaf_start: u32,
    leaf_end: u32,
    depth: u32,
}

/// A declarative tree specification, the input to
/// [`AbstractionTree::build`].
#[derive(Clone, Debug, PartialEq)]
pub enum TreeSpec {
    /// A leaf: the name of a provenance variable (registered on build).
    Leaf(String),
    /// An inner node with a meta-variable name and children.
    Node(String, Vec<TreeSpec>),
}

impl TreeSpec {
    /// Leaf constructor.
    pub fn leaf(name: impl Into<String>) -> TreeSpec {
        TreeSpec::Leaf(name.into())
    }

    /// Inner-node constructor.
    pub fn node(name: impl Into<String>, children: Vec<TreeSpec>) -> TreeSpec {
        TreeSpec::Node(name.into(), children)
    }
}

/// An abstraction tree over provenance variables.
#[derive(Clone, Debug)]
pub struct AbstractionTree {
    nodes: Vec<Node>,
    /// Subtree leaves, flattened in preorder; each node holds a range.
    flat_leaves: Vec<Var>,
    /// Leaf node ids in the same order as `flat_leaves`.
    flat_leaf_nodes: Vec<NodeId>,
    var_to_leaf: FxHashMap<Var, NodeId>,
    name_to_node: FxHashMap<String, NodeId>,
}

impl AbstractionTree {
    /// Builds a tree from a spec, registering leaf variables in `reg`.
    ///
    /// # Errors
    /// Rejects duplicate node names and duplicate leaf variables.
    pub fn build(spec: &TreeSpec, reg: &mut VarRegistry) -> Result<AbstractionTree> {
        let mut tree = AbstractionTree {
            nodes: Vec::new(),
            flat_leaves: Vec::new(),
            flat_leaf_nodes: Vec::new(),
            var_to_leaf: FxHashMap::default(),
            name_to_node: FxHashMap::default(),
        };
        tree.add(spec, None, 0, reg)?;
        Ok(tree)
    }

    /// Parses the compact text form, e.g. the paper's Fig. 2 tree:
    /// `Plans(Standard(p1,p2), Special(Y(y1,y2,y3), F(f1,f2), v), Business(SB(b1,b2), e))`.
    /// Names without parentheses are leaves (variables).
    pub fn parse(src: &str, reg: &mut VarRegistry) -> Result<AbstractionTree> {
        let spec = parse_tree_spec(src)?;
        Self::build(&spec, reg)
    }

    fn add(
        &mut self,
        spec: &TreeSpec,
        parent: Option<NodeId>,
        depth: u32,
        reg: &mut VarRegistry,
    ) -> Result<NodeId> {
        let (name, children_spec) = match spec {
            TreeSpec::Leaf(name) => (name, None),
            TreeSpec::Node(name, children) => (name, Some(children)),
        };
        if self.name_to_node.contains_key(name) {
            return Err(CoreError::DuplicateNodeName(name.clone()));
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            name: name.clone(),
            parent,
            children: Vec::new(),
            var: None,
            leaf_start: 0,
            leaf_end: 0,
            depth,
        });
        self.name_to_node.insert(name.clone(), id);
        let leaf_start = self.flat_leaves.len() as u32;
        match children_spec {
            None => {
                // A leaf: register its variable.
                let var = reg.var(name);
                if self.var_to_leaf.contains_key(&var) {
                    return Err(CoreError::DuplicateLeafVar(name.clone()));
                }
                self.var_to_leaf.insert(var, id);
                self.nodes[id.index()].var = Some(var);
                self.flat_leaves.push(var);
                self.flat_leaf_nodes.push(id);
            }
            Some(children) => {
                if children.is_empty() {
                    // an inner node written with `()` — treat as leaf-less
                    // group, which would cover nothing; reject.
                    return Err(CoreError::TreeParse {
                        offset: 0,
                        message: format!("inner node {name} has no children"),
                    });
                }
                for c in children {
                    let cid = self.add(c, Some(id), depth + 1, reg)?;
                    self.nodes[id.index()].children.push(cid);
                }
            }
        }
        self.nodes[id.index()].leaf_start = leaf_start;
        self.nodes[id.index()].leaf_end = self.flat_leaves.len() as u32;
        Ok(id)
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaves.
    pub fn num_leaves(&self) -> usize {
        self.flat_leaves.len()
    }

    /// The tree's display name (the root's name).
    pub fn name(&self) -> &str {
        &self.nodes[0].name
    }

    /// A node's name.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.nodes[id.index()].name
    }

    /// A node's children.
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.nodes[id.index()].children
    }

    /// A node's parent (`None` for the root).
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.nodes[id.index()].parent
    }

    /// A node's depth (root = 0).
    pub fn depth(&self, id: NodeId) -> u32 {
        self.nodes[id.index()].depth
    }

    /// True iff the node is a leaf.
    pub fn is_leaf(&self, id: NodeId) -> bool {
        self.nodes[id.index()].var.is_some()
    }

    /// The leaf's variable (`None` for inner nodes).
    pub fn leaf_var(&self, id: NodeId) -> Option<Var> {
        self.nodes[id.index()].var
    }

    /// Resolves a node by name.
    pub fn node_by_name(&self, name: &str) -> Result<NodeId> {
        self.name_to_node
            .get(name)
            .copied()
            .ok_or_else(|| CoreError::UnknownNode(name.to_owned()))
    }

    /// The leaf node owning variable `v`, if `v` is under this tree.
    pub fn leaf_of_var(&self, v: Var) -> Option<NodeId> {
        self.var_to_leaf.get(&v).copied()
    }

    /// True iff `v` is a leaf of this tree.
    pub fn contains_var(&self, v: Var) -> bool {
        self.var_to_leaf.contains_key(&v)
    }

    /// All leaf variables below `id` (O(1) slice).
    pub fn leaves_under(&self, id: NodeId) -> &[Var] {
        let n = &self.nodes[id.index()];
        &self.flat_leaves[n.leaf_start as usize..n.leaf_end as usize]
    }

    /// The range of leaf positions (indices into [`Self::leaves`]) covered
    /// by the subtree rooted at `id`.
    pub fn leaf_range(&self, id: NodeId) -> std::ops::Range<usize> {
        let n = &self.nodes[id.index()];
        n.leaf_start as usize..n.leaf_end as usize
    }

    /// All leaf node ids below `id`.
    pub fn leaf_nodes_under(&self, id: NodeId) -> &[NodeId] {
        let n = &self.nodes[id.index()];
        &self.flat_leaf_nodes[n.leaf_start as usize..n.leaf_end as usize]
    }

    /// All leaf variables of the tree.
    pub fn leaves(&self) -> &[Var] {
        &self.flat_leaves
    }

    /// Node ids in post-order (children before parents) — the traversal
    /// order of the DP optimizer.
    pub fn post_order(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![(self.root(), false)];
        while let Some((id, expanded)) = stack.pop() {
            if expanded || self.is_leaf(id) {
                out.push(id);
            } else {
                stack.push((id, true));
                for &c in self.children(id).iter().rev() {
                    stack.push((c, false));
                }
            }
        }
        out
    }

    /// All node ids, root first (arena order is preorder).
    pub fn node_ids(&self) -> impl ExactSizeIterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Is `anc` an ancestor of (or equal to) `node`?
    pub fn is_ancestor_or_self(&self, anc: NodeId, node: NodeId) -> bool {
        let a = &self.nodes[anc.index()];
        let n = &self.nodes[node.index()];
        // preorder arena: subtree of `anc` is a contiguous id range only for
        // leaf ranges; use leaf-range containment plus depth walk instead.
        if self.is_leaf(node) {
            let pos = n.leaf_start; // leaf's own position
            return a.leaf_start <= pos && pos < a.leaf_end;
        }
        a.leaf_start <= n.leaf_start && n.leaf_end <= a.leaf_end && {
            // ranges can coincide for unary chains; walk up to disambiguate
            let mut cur = Some(node);
            while let Some(c) = cur {
                if c == anc {
                    return true;
                }
                cur = self.parent(c);
            }
            false
        }
    }

    /// Renders the tree with indentation.
    pub fn render(&self, reg: &VarRegistry) -> String {
        let mut out = String::new();
        self.render_node(self.root(), reg, &mut out);
        out
    }

    fn render_node(&self, id: NodeId, reg: &VarRegistry, out: &mut String) {
        let pad = "  ".repeat(self.depth(id) as usize);
        match self.leaf_var(id) {
            Some(v) => out.push_str(&format!("{pad}{}\n", reg.name(v))),
            None => {
                out.push_str(&format!("{pad}{}/\n", self.node_name(id)));
                for &c in self.children(id) {
                    self.render_node(c, reg, out);
                }
            }
        }
    }
}

impl fmt::Display for AbstractionTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "AbstractionTree({}: {} nodes, {} leaves)",
            self.name(),
            self.num_nodes(),
            self.num_leaves()
        )
    }
}

/// Parses the compact nested syntax into a [`TreeSpec`].
fn parse_tree_spec(src: &str) -> Result<TreeSpec> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let spec = parse_node(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(CoreError::TreeParse {
            offset: pos,
            message: "trailing input after tree".into(),
        });
    }
    Ok(spec)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn parse_node(bytes: &[u8], pos: &mut usize) -> Result<TreeSpec> {
    skip_ws(bytes, pos);
    let start = *pos;
    while *pos < bytes.len()
        && (bytes[*pos].is_ascii_alphanumeric() || bytes[*pos] == b'_' || bytes[*pos] == b'#')
    {
        *pos += 1;
    }
    if *pos == start {
        return Err(CoreError::TreeParse {
            offset: *pos,
            message: "expected node name".into(),
        });
    }
    let name = std::str::from_utf8(&bytes[start..*pos])
        .expect("ascii")
        .to_owned();
    skip_ws(bytes, pos);
    if *pos < bytes.len() && bytes[*pos] == b'(' {
        *pos += 1;
        let mut children = Vec::new();
        loop {
            children.push(parse_node(bytes, pos)?);
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => {
                    *pos += 1;
                }
                Some(b')') => {
                    *pos += 1;
                    break;
                }
                _ => {
                    return Err(CoreError::TreeParse {
                        offset: *pos,
                        message: "expected ',' or ')'".into(),
                    })
                }
            }
        }
        Ok(TreeSpec::Node(name, children))
    } else {
        Ok(TreeSpec::Leaf(name))
    }
}

/// The paper's Fig. 2 tree over the plan variables.
pub fn paper_plans_tree(reg: &mut VarRegistry) -> AbstractionTree {
    AbstractionTree::parse(
        "Plans(Standard(p1,p2), Special(Y(y1,y2,y3), F(f1,f2), v), Business(SB(b1,b2), e))",
        reg,
    )
    .expect("paper tree is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig2(reg: &mut VarRegistry) -> AbstractionTree {
        paper_plans_tree(reg)
    }

    #[test]
    fn parses_fig2_shape() {
        let mut reg = VarRegistry::new();
        let t = fig2(&mut reg);
        assert_eq!(t.name(), "Plans");
        assert_eq!(t.num_leaves(), 11);
        // 11 leaves + inner nodes Plans, Standard, Special, Y, F,
        // Business, SB = 18 nodes
        assert_eq!(t.num_nodes(), 18);
        let business = t.node_by_name("Business").unwrap();
        let leaves: Vec<&str> = t
            .leaves_under(business)
            .iter()
            .map(|&v| reg.name(v))
            .collect();
        assert_eq!(leaves, vec!["b1", "b2", "e"]);
        assert_eq!(t.children(t.root()).len(), 3);
    }

    #[test]
    fn leaf_lookup_and_membership() {
        let mut reg = VarRegistry::new();
        let t = fig2(&mut reg);
        let v = reg.lookup("v").unwrap();
        let leaf = t.leaf_of_var(v).unwrap();
        assert!(t.is_leaf(leaf));
        assert_eq!(t.leaf_var(leaf), Some(v));
        assert_eq!(t.node_name(leaf), "v");
        let outside = reg.var("m1");
        assert!(!t.contains_var(outside));
    }

    #[test]
    fn post_order_children_first() {
        let mut reg = VarRegistry::new();
        let t = fig2(&mut reg);
        let order = t.post_order();
        assert_eq!(order.len(), t.num_nodes());
        assert_eq!(*order.last().unwrap(), t.root());
        let pos: FxHashMap<NodeId, usize> =
            order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        for id in t.node_ids() {
            for &c in t.children(id) {
                assert!(pos[&c] < pos[&id], "child must precede parent");
            }
        }
    }

    #[test]
    fn ancestry() {
        let mut reg = VarRegistry::new();
        let t = fig2(&mut reg);
        let root = t.root();
        let business = t.node_by_name("Business").unwrap();
        let sb = t.node_by_name("SB").unwrap();
        let b1 = t.node_by_name("b1").unwrap();
        let special = t.node_by_name("Special").unwrap();
        assert!(t.is_ancestor_or_self(root, b1));
        assert!(t.is_ancestor_or_self(business, b1));
        assert!(t.is_ancestor_or_self(sb, b1));
        assert!(t.is_ancestor_or_self(b1, b1));
        assert!(!t.is_ancestor_or_self(special, b1));
        assert!(!t.is_ancestor_or_self(b1, sb));
        assert_eq!(t.parent(root), None);
        assert_eq!(t.parent(sb), Some(business));
        assert_eq!(t.depth(b1), 3);
    }

    #[test]
    fn rejects_duplicates() {
        let mut reg = VarRegistry::new();
        assert!(matches!(
            AbstractionTree::parse("T(a, a)", &mut reg),
            Err(CoreError::DuplicateNodeName(_))
        ));
        let mut reg2 = VarRegistry::new();
        assert!(matches!(
            AbstractionTree::parse("T(A(x), x)", &mut reg2),
            Err(CoreError::DuplicateNodeName(_))
        ));
    }

    #[test]
    fn rejects_malformed_text() {
        let mut reg = VarRegistry::new();
        for src in ["", "T(", "T(a,)", "T(a))", "(a)", "T(a) junk"] {
            assert!(
                AbstractionTree::parse(src, &mut reg).is_err(),
                "should reject {src:?}"
            );
        }
    }

    #[test]
    fn single_leaf_tree() {
        let mut reg = VarRegistry::new();
        let t = AbstractionTree::parse("x", &mut reg).unwrap();
        assert_eq!(t.num_nodes(), 1);
        assert_eq!(t.num_leaves(), 1);
        assert!(t.is_leaf(t.root()));
    }

    #[test]
    fn render_indents_by_depth() {
        let mut reg = VarRegistry::new();
        let t = AbstractionTree::parse("T(A(x,y), z)", &mut reg).unwrap();
        let r = t.render(&reg);
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines[0], "T/");
        assert_eq!(lines[1], "  A/");
        assert_eq!(lines[2], "    x");
        assert_eq!(lines[4], "  z");
    }
}
