//! Greedy agglomerative optimizer — the natural baseline against the
//! exact DP (ablation A1), now a thin wrapper over the unified planner.
//!
//! Start from the identity (leaf) cut and repeatedly *coarsen*: replace a
//! sibling group that is fully present in the cut by its parent, choosing
//! the move with the best size reduction per variable lost, until the
//! bound is met. Each coarsening is monotone (never increases the size),
//! so the procedure terminates at the root in the worst case — but unlike
//! the DP it can commit to locally attractive merges that block better
//! global cuts (see `tests/greedy_vs_dp.rs` for a witnessed gap).
//!
//! The coarsening loop lives in [`crate::planner::Greedy`], which also
//! exposes the whole trajectory as a
//! [`CutFrontier`](crate::planner::CutFrontier) via
//! [`plan_frontier`](crate::planner::CutPlanner::plan_frontier).

use crate::dp::DpSolution;
use crate::error::Result;
use crate::groups::GroupAnalysis;
use crate::planner::{CutPlanner, Greedy, PlanContext};
use crate::tree::AbstractionTree;

/// Greedy coarsening from the leaf cut down to `bound`.
///
/// # Errors
/// [`CoreError::InfeasibleBound`](crate::error::CoreError::InfeasibleBound)
/// if even the root cut exceeds the bound.
pub fn optimize_greedy(
    tree: &AbstractionTree,
    analysis: &GroupAnalysis,
    bound: u64,
) -> Result<DpSolution> {
    Greedy.plan(&PlanContext::new(tree, analysis), bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp;
    use crate::error::CoreError;
    use crate::tree::paper_plans_tree;
    use cobra_provenance::{parse_polyset, PolySet, VarRegistry};
    use cobra_util::Rat;

    fn paper_setup() -> (VarRegistry, AbstractionTree, GroupAnalysis) {
        let mut reg = VarRegistry::new();
        let tree = paper_plans_tree(&mut reg);
        let src = "\
P1 = 208.8*p1*m1 + 240*p1*m3 + 127.4*f1*m1 + 114.45*f1*m3 \
   + 75.9*y1*m1 + 72.5*y1*m3 + 42*v*m1 + 24.2*v*m3
P2 = 77.9*b1*m1 + 80.5*b1*m3 + 52.2*e*m1 + 56.5*e*m3 + 69.7*b2*m1 + 100.65*b2*m3";
        let set: PolySet<Rat> = parse_polyset(src, &mut reg).unwrap();
        let analysis = GroupAnalysis::analyze(&set, &tree).unwrap();
        (reg, tree, analysis)
    }

    #[test]
    fn greedy_is_feasible_and_never_beats_dp() {
        let (_, tree, analysis) = paper_setup();
        for bound in 4..=14u64 {
            let greedy = optimize_greedy(&tree, &analysis, bound).unwrap();
            let exact = dp::optimize(&tree, &analysis, bound).unwrap();
            assert!(greedy.size <= bound, "bound {bound}");
            assert!(
                greedy.variables <= exact.variables,
                "greedy cannot exceed the optimum (bound {bound})"
            );
            assert_eq!(
                analysis.compressed_size(greedy.cut.nodes()),
                greedy.size,
                "bound {bound}"
            );
        }
    }

    #[test]
    fn unconstrained_greedy_keeps_leaves() {
        let (_, tree, analysis) = paper_setup();
        let sol = optimize_greedy(&tree, &analysis, 1_000).unwrap();
        assert_eq!(sol.variables, tree.num_leaves());
        assert_eq!(sol.size, 14);
    }

    #[test]
    fn infeasible_bound_detected() {
        let (_, tree, analysis) = paper_setup();
        assert!(matches!(
            optimize_greedy(&tree, &analysis, 3),
            Err(CoreError::InfeasibleBound { min_achievable: 4 })
        ));
    }

    use crate::tree::AbstractionTree;
}
