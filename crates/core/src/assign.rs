//! Meta-variable assignment and full-vs-compressed evaluation.
//!
//! After compression "the user may input valuation to the compressed
//! polynomials' variables, and the system generates the query results
//! under the scenario given by the assignment" (paper §3). Defaults are
//! "average over the abstracted variables' values" (Fig. 5), and the
//! system reports the result deltas and the **assignment speedup**.

use crate::cut::MetaVar;
use cobra_provenance::{Coeff, DenseValuation, PolySet, Valuation, Var};
use cobra_util::timing::{speedup_percent, time_best_of};
use cobra_util::Rat;
use std::time::Duration;

/// The default meta-valuation: each meta-variable gets the **average** of
/// its grouped leaves' values under `base` (paper Fig. 5). Leaves missing
/// from `base` use its default (or 1 if none).
pub fn default_meta_valuation(metas: &[MetaVar], base: &Valuation<Rat>) -> Valuation<Rat> {
    let fallback = base.default_value().copied().unwrap_or(Rat::ONE);
    let mut out = Valuation::with_default(fallback);
    for meta in metas {
        let sum: Rat = meta
            .leaves
            .iter()
            .map(|&l| base.get(l).unwrap_or(fallback))
            .sum();
        let avg = sum / Rat::int(meta.leaves.len() as i64);
        out.set(meta.var, avg);
    }
    out
}

/// Projects a *leaf-level* scenario onto the meta-variables: each meta
/// takes the average of the scenario over its leaves. When the scenario is
/// uniform within every group (it "respects the abstraction"), this
/// projection is lossless and the compressed result is exact.
pub fn project_scenario(metas: &[MetaVar], scenario: &Valuation<Rat>) -> Valuation<Rat> {
    default_meta_valuation(metas, scenario)
}

/// Expands a meta-valuation back to the leaves (every leaf inherits its
/// meta-variable's value). The pair `(project, expand)` captures exactly
/// the degrees of freedom lost to the abstraction.
pub fn expand_to_leaves(metas: &[MetaVar], meta_val: &Valuation<Rat>) -> Valuation<Rat> {
    let fallback = meta_val.default_value().copied().unwrap_or(Rat::ONE);
    let mut out = Valuation::with_default(fallback);
    for meta in metas {
        let v = meta_val.get(meta.var).unwrap_or(fallback);
        for &leaf in &meta.leaves {
            out.set(leaf, v);
        }
    }
    out
}

/// One row of the side-by-side result view (paper Fig. 3: "the query
/// result using the full provenance compared with the result using the
/// compressed provenance").
#[derive(Clone, Debug, PartialEq)]
pub struct ResultRow {
    /// Result-tuple label (e.g. the zip code).
    pub label: String,
    /// Value from the full provenance under the leaf-level scenario.
    pub full: Rat,
    /// Value from the compressed provenance under the meta scenario.
    pub compressed: Rat,
}

impl ResultRow {
    /// Absolute error introduced by the compression.
    pub fn abs_error(&self) -> Rat {
        (self.full - self.compressed).abs()
    }

    /// Relative error (|Δ| / |full|), 0 for a zero baseline.
    pub fn rel_error(&self) -> f64 {
        rel_error_value(&self.full, &self.compressed)
    }
}

/// Relative error of a full/compressed value pair (|Δ| / |full|, 0 for a
/// doubly-zero pair, ∞ for a zero baseline) — shared by [`ResultRow`] and
/// the flat sweep storage.
pub(crate) fn rel_error_value(full: &Rat, compressed: &Rat) -> f64 {
    if full.is_zero() {
        if compressed.is_zero() {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        ((*full - *compressed).abs() / full.abs()).to_f64()
    }
}

/// The `f64` sibling of [`rel_error_value`], with the same zero
/// conventions — one definition shared by the divergence probe, the
/// approximate sweep statistics, and the error folds, so the convention
/// cannot silently diverge between them.
pub(crate) fn rel_error_f64(reference: f64, other: f64) -> f64 {
    if reference == 0.0 {
        if other == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        ((reference - other) / reference).abs()
    }
}

/// Full-vs-compressed comparison across all result tuples.
#[derive(Clone, Debug, Default)]
pub struct ResultComparison {
    /// Per-tuple rows, in the polynomial set's order.
    pub rows: Vec<ResultRow>,
}

impl ResultComparison {
    /// Evaluates `full` under `leaf_val` and `compressed` under `meta_val`
    /// and pairs the results by position.
    ///
    /// # Panics
    /// Panics if either valuation lacks a binding (give them defaults) —
    /// assignment screens always provide totals.
    pub fn evaluate(
        full: &PolySet<Rat>,
        leaf_val: &Valuation<Rat>,
        compressed: &PolySet<Rat>,
        meta_val: &Valuation<Rat>,
    ) -> ResultComparison {
        let f = full.eval(leaf_val).expect("leaf valuation must be total");
        let c = compressed
            .eval(meta_val)
            .expect("meta valuation must be total");
        assert_eq!(f.len(), c.len(), "polynomial sets must align");
        ResultComparison {
            rows: f
                .into_iter()
                .zip(c)
                .map(|((label, full), (_, compressed))| ResultRow {
                    label,
                    full,
                    compressed,
                })
                .collect(),
        }
    }

    /// Largest relative error over all rows.
    pub fn max_rel_error(&self) -> f64 {
        self.rows.iter().map(ResultRow::rel_error).fold(0.0, f64::max)
    }

    /// Mean relative error over all rows.
    pub fn mean_rel_error(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.rows.iter().map(ResultRow::rel_error).sum::<f64>() / self.rows.len() as f64
    }

    /// True iff compression introduced no error at all.
    pub fn is_exact(&self) -> bool {
        self.rows.iter().all(|r| r.full == r.compressed)
    }
}

/// Timing of one scenario assignment on full vs. compressed provenance —
/// the paper's "assignment speedup" read-out.
#[derive(Clone, Copy, Debug)]
pub struct SpeedupMeasurement {
    /// Time to evaluate the full provenance.
    pub full_time: Duration,
    /// Time to evaluate the compressed provenance.
    pub compressed_time: Duration,
    /// Monomials in the full provenance.
    pub full_size: usize,
    /// Monomials in the compressed provenance.
    pub compressed_size: usize,
}

impl SpeedupMeasurement {
    /// The paper's speedup figure: `(t_full − t_comp) / t_full × 100`.
    pub fn speedup_percent(&self) -> f64 {
        speedup_percent(self.full_time, self.compressed_time)
    }
}

/// Measures assignment time on the `f64` fast path with dense valuations,
/// best-of-`runs` after `warmup` runs.
pub fn measure_assignment_speedup(
    full: &PolySet<f64>,
    compressed: &PolySet<f64>,
    full_val: &DenseValuation<f64>,
    meta_val: &DenseValuation<f64>,
    warmup: usize,
    runs: usize,
) -> SpeedupMeasurement {
    let (_, full_time) = time_best_of(warmup, runs, || {
        let out = full.eval_dense(full_val);
        std::hint::black_box(out.len())
    });
    let (_, compressed_time) = time_best_of(warmup, runs, || {
        let out = compressed.eval_dense(meta_val);
        std::hint::black_box(out.len())
    });
    SpeedupMeasurement {
        full_time,
        compressed_time,
        full_size: full.total_monomials(),
        compressed_size: compressed.total_monomials(),
    }
}

/// Builds a dense valuation over all registered variables from a sparse
/// one (fallback 1 = "unchanged" semantics of multiplicative parameters).
pub fn densify<C: Coeff>(val: &Valuation<C>, num_vars: usize) -> DenseValuation<C> {
    DenseValuation::from_valuation(val, num_vars, C::one())
}

/// A scenario assigning `factor` to every variable in `vars` (and 1, i.e.
/// "unchanged", elsewhere) — the paper's "what if the ppm of the business
/// calling plans are increased by 10%" style of hypothetical.
pub fn uniform_scenario(vars: &[Var], factor: Rat) -> Valuation<Rat> {
    let mut val = Valuation::with_default(Rat::ONE);
    for &v in vars {
        val.set(v, factor);
    }
    val
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply::apply_cut;
    use crate::cut::Cut;
    use crate::tree::paper_plans_tree;
    use cobra_provenance::{parse_polyset, VarRegistry};

    fn rat(s: &str) -> Rat {
        Rat::parse(s).unwrap()
    }

    fn setup() -> (
        VarRegistry,
        crate::tree::AbstractionTree,
        PolySet<Rat>,
        crate::apply::AppliedAbstraction<Rat>,
    ) {
        let mut reg = VarRegistry::new();
        let tree = paper_plans_tree(&mut reg);
        let src = "\
P1 = 208.8*p1*m1 + 240*p1*m3 + 127.4*f1*m1 + 114.45*f1*m3 \
   + 75.9*y1*m1 + 72.5*y1*m3 + 42*v*m1 + 24.2*v*m3
P2 = 77.9*b1*m1 + 80.5*b1*m3 + 52.2*e*m1 + 56.5*e*m3 + 69.7*b2*m1 + 100.65*b2*m3";
        let set = parse_polyset(src, &mut reg).unwrap();
        let cut = Cut::from_names(&tree, &["Business", "Special", "Standard"]).unwrap();
        let applied = apply_cut(&set, &tree, &cut, &mut reg);
        (reg, tree, set, applied)
    }

    #[test]
    fn default_meta_values_are_averages() {
        let (mut reg, _, _, applied) = setup();
        let b1 = reg.var("b1");
        let b2 = reg.var("b2");
        let e = reg.var("e");
        let base = Valuation::with_default(Rat::ONE)
            .bind(b1, rat("1.2"))
            .bind(b2, rat("0.9"))
            .bind(e, rat("0.6"));
        let metas = default_meta_valuation(&applied.meta_vars, &base);
        let business = reg.lookup("Business").unwrap();
        assert_eq!(metas.get(business), Some(rat("0.9"))); // (1.2+0.9+0.6)/3
        // untouched groups default to the average of all-ones = 1
        let standard = reg.lookup("Standard").unwrap();
        assert_eq!(metas.get(standard), Some(Rat::ONE));
    }

    #[test]
    fn aligned_scenario_is_exact() {
        // "business plans +10%" groups exactly under the Business node, so
        // the compressed result must equal the full result.
        let (mut reg, _, set, applied) = setup();
        let vars = ["b1", "b2", "e"].map(|n| reg.var(n));
        let scenario = uniform_scenario(&vars, rat("1.1"));
        let meta = project_scenario(&applied.meta_vars, &scenario);
        let cmp = ResultComparison::evaluate(&set, &scenario, &applied.compressed, &meta);
        assert!(cmp.is_exact());
        assert_eq!(cmp.max_rel_error(), 0.0);
        // P2 grows by exactly 10%
        let p2_row = &cmp.rows[1];
        assert_eq!(p2_row.label, "P2");
        let original: Rat = rat("77.9") + rat("80.5") + rat("52.2") + rat("56.5")
            + rat("69.7")
            + rat("100.65");
        assert_eq!(p2_row.full, original * rat("1.1"));
    }

    #[test]
    fn misaligned_scenario_incurs_bounded_error() {
        // "only SB1 (b1) +10%" cannot be expressed once b1 merged into
        // Business; the meta gets the group average (1.1+1+1)/3.
        let (mut reg, _, set, applied) = setup();
        let b1 = reg.var("b1");
        let scenario = uniform_scenario(&[b1], rat("1.1"));
        let meta = project_scenario(&applied.meta_vars, &scenario);
        let cmp = ResultComparison::evaluate(&set, &scenario, &applied.compressed, &meta);
        assert!(!cmp.is_exact());
        // P1 has no business plans → still exact there
        assert_eq!(cmp.rows[0].full, cmp.rows[0].compressed);
        assert!(cmp.rows[1].rel_error() > 0.0);
        assert!(cmp.max_rel_error() < 0.1, "error stays small");
        assert!(cmp.mean_rel_error() <= cmp.max_rel_error());
    }

    #[test]
    fn expand_project_round_trip_on_aligned_scenarios() {
        let (reg, _, _, applied) = setup();
        let business = reg.lookup("Business").unwrap();
        let meta = Valuation::with_default(Rat::ONE).bind(business, rat("0.8"));
        let leaves = expand_to_leaves(&applied.meta_vars, &meta);
        let b2 = reg.lookup("b2").unwrap();
        assert_eq!(leaves.get(b2), Some(rat("0.8")));
        // projecting back recovers the meta value exactly
        let back = project_scenario(&applied.meta_vars, &leaves);
        assert_eq!(back.get(business), Some(rat("0.8")));
    }

    #[test]
    fn speedup_measurement_reports_sizes() {
        let (reg, _, set, applied) = setup();
        let full64 = set.to_f64_set();
        let comp64 = applied.compressed.to_f64_set();
        let ones: Valuation<f64> = Valuation::with_default(1.0);
        let dense = densify(&ones, reg.len());
        let m = measure_assignment_speedup(&full64, &comp64, &dense, &dense, 1, 3);
        assert_eq!(m.full_size, 14);
        assert_eq!(m.compressed_size, 6);
        assert!(m.full_time > Duration::ZERO);
        assert!(m.speedup_percent() <= 100.0);
    }

    #[test]
    fn zero_baseline_relative_error() {
        let row = ResultRow {
            label: "x".into(),
            full: Rat::ZERO,
            compressed: Rat::ZERO,
        };
        assert_eq!(row.rel_error(), 0.0);
        let row2 = ResultRow {
            label: "y".into(),
            full: Rat::ZERO,
            compressed: Rat::ONE,
        };
        assert!(row2.rel_error().is_infinite());
    }
}
