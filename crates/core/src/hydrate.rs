//! Session persistence: snapshot a planned [`CobraSession`] into one
//! [`cobra_provenance::persist`] artifact and re-hydrate it — zero-copy —
//! into a session that answers **bit-identically**.
//!
//! A snapshot captures everything a single-tree session derived that is
//! expensive or impossible to recompute cheaply:
//!
//! * the variable registry (names in registration order, so re-registering
//!   reproduces identical [`Var`] ids),
//! * the abstraction-tree source text,
//! * the base valuation,
//! * the planned Pareto frontier (per-point cut node ids) together with
//!   the per-node group weights and invariant-variable count that bound
//!   re-selection needs,
//! * the compiled full-side programs (exact and `f64`), and
//! * any warm compressed-side engines accumulated by bound hopping.
//!
//! The input polynomials are **not** persisted: a restored session carries
//! the full compiled program and decompiles it lazily on the rare path
//! that needs polynomial form (a cold frontier selection's group
//! analysis). Restoring from a [`LoadedArtifact`] aliases the mapped file
//! for every CSR array — the cold-start cost is one `mmap` plus header
//! validation, not a recompilation (experiment E14 measures the gap).
//!
//! ```
//! use cobra_core::{restore_session_from_bytes, snapshot_session, CobraSession};
//!
//! let mut session = CobraSession::from_text(
//!     "P1 = 208.8*p1*m1 + 240*p1*m3 + 42*v*m1 + 24.2*v*m3",
//! ).unwrap();
//! session.add_tree_text("Plans(Standard(p1,p2), v)").unwrap();
//! session.compress_frontier().unwrap();
//! let bytes = snapshot_session(&session).unwrap();
//! let mut restored = restore_session_from_bytes(&bytes).unwrap();
//! let report = restored.select_bound(2).unwrap();
//! assert_eq!(report.compressed_size, session.select_bound(2).unwrap().compressed_size);
//! ```

use crate::cut::Cut;
use crate::error::{CoreError, Result};
use crate::planner::{CutFrontier, FrontierPoint};
use crate::session::{CobraSession, ForestFrontierState, FrontierState, WarmEngines};
use crate::tree::AbstractionTree;
use cobra_provenance::persist::{self, tags};
use cobra_provenance::{
    ArtifactReader, ArtifactWriter, BatchEvaluator, DagOptions, LoadedArtifact, Valuation, Var,
    VarRegistry,
};
use cobra_util::{AlignedBytes, FxHashMap, FxHashSet, Rat};
use std::any::Any;
use std::cell::OnceCell;
use std::sync::Arc;

fn persist_err(e: persist::PersistError) -> CoreError {
    CoreError::Session(format!("session artifact: {e}"))
}

/// Serializes a planned single-tree session into one persistence artifact
/// (see the module docs for what is captured). The session's full-side
/// engines are compiled first if they have not been already — a snapshot
/// is self-contained by construction.
///
/// # Errors
/// `Session` unless the session has exactly one tree, registered via
/// [`CobraSession::add_tree_text`] (the source text is what round-trips),
/// and a planned frontier
/// ([`CobraSession::compress_frontier`]). Forest staircases
/// ([`CobraSession::compress_forest_frontier`]) are in-memory only.
pub fn snapshot_session(session: &CobraSession) -> Result<Vec<u8>> {
    if session.forest.is_some() {
        return Err(CoreError::Session(
            "forest sessions cannot be persisted (descent staircases are in-memory only)".into(),
        ));
    }
    if session.trees.len() != 1 {
        return Err(CoreError::Session(format!(
            "snapshot requires exactly one abstraction tree, got {}",
            session.trees.len()
        )));
    }
    let tree_text = session.tree_texts[0].as_deref().ok_or_else(|| {
        CoreError::Session(
            "snapshot requires the tree's source text; register it via add_tree_text".into(),
        )
    })?;
    let state = session.frontier.as_ref().ok_or_else(|| {
        CoreError::Session("snapshot requires a planned frontier; call compress_frontier".into())
    })?;

    // Self-contained snapshots: force the session-invariant engines.
    let full_rat = session.full_engine();
    let full_f64 = session.full_f64_engine();

    // Deterministic warm-engine order (the map iterates arbitrarily).
    let mut warm: Vec<(usize, &WarmEngines)> = state.warm.iter().map(|(&i, w)| (i, w)).collect();
    warm.sort_unstable_by_key(|&(i, _)| i);

    let mut w = ArtifactWriter::new();
    w.begin_section(tags::SESSION);

    // Registry: names in registration order re-register to identical ids.
    w.put_u32(session.reg.len() as u32);
    for (_, name) in session.reg.iter() {
        w.put_str(name);
    }

    w.put_str(tree_text);

    // Base valuation: optional default, then explicit bindings sorted by
    // variable id (the map iterates arbitrarily).
    match session.base_valuation.default_value() {
        Some(d) => {
            w.put_u32(1);
            w.put_i128(d.numer());
            w.put_i128(d.denom());
        }
        None => w.put_u32(0),
    }
    let mut bindings: Vec<(Var, Rat)> = session
        .base_valuation
        .iter()
        .map(|(v, r)| (v, *r))
        .collect();
    bindings.sort_unstable_by_key(|&(v, _)| v);
    w.put_u32(bindings.len() as u32);
    for (v, r) in bindings {
        w.put_u32(v.0);
        w.put_i128(r.numer());
        w.put_i128(r.denom());
    }

    // Plan-derived scalars the re-selection path needs without a group
    // analysis.
    w.put_u32(state.node_weight.len() as u32);
    for &weight in &state.node_weight {
        w.put_u64(weight);
    }
    w.put_u32(state.invariant_vars as u32);

    // The Pareto frontier: each point's achieved variables/size plus the
    // cut's node ids (cuts revalidate against the re-parsed tree).
    w.put_u32(state.frontier.len() as u32);
    for point in state.frontier.points() {
        w.put_u64(point.variables as u64);
        w.put_u64(point.size);
        let nodes: Vec<u32> = point.cut.nodes().iter().map(|n| n.0).collect();
        w.put_u32_slice(&nodes);
    }

    // Warm engine directory: frontier index + whether an f64 shadow rides
    // along; the programs themselves go in per-engine sections.
    w.put_u32(warm.len() as u32);
    for &(idx, engines) in &warm {
        w.put_u32(idx as u32);
        w.put_u32(u32::from(engines.f64.is_some()));
    }

    // v2: whether algebraic (DAG) compression was armed. The DAG programs
    // themselves are cheap deterministic rewrites of the flat programs, so
    // only the flag persists — restore re-derives them lazily.
    w.put_u32(u32::from(session.dag_mode));

    persist::write_program(&mut w, tags::PROGRAM_RAT, full_rat.program());
    persist::write_program(&mut w, tags::PROGRAM_F64, full_f64.program());
    for (k, &(_, engines)) in warm.iter().enumerate() {
        let base = tags::WARM_BASE + 2 * k as u32;
        persist::write_program(&mut w, base, engines.rat.program());
        if let Some(shadow) = &engines.f64 {
            persist::write_program(&mut w, base + 1, shadow.program());
        }
    }
    Ok(w.finish())
}

/// Re-hydrates a session from a mapped artifact, aliasing the map for
/// every compiled program (no CSR array is re-allocated; the
/// [`LoadedArtifact`] stays alive as long as any engine does).
///
/// # Errors
/// `Session` if the artifact fails validation or its contents are
/// internally inconsistent.
pub fn restore_session(artifact: &LoadedArtifact) -> Result<CobraSession> {
    let reader = artifact.reader().map_err(persist_err)?;
    restore_from_reader(&reader, artifact.owner())
}

/// Re-hydrates a session from in-memory artifact bytes (copied once into
/// an aligned buffer the restored engines then alias).
///
/// # Errors
/// `Session` if the artifact fails validation or its contents are
/// internally inconsistent.
pub fn restore_session_from_bytes(bytes: &[u8]) -> Result<CobraSession> {
    let buf = Arc::new(AlignedBytes::copy_from(bytes));
    let reader = ArtifactReader::parse(buf.bytes()).map_err(persist_err)?;
    restore_from_reader(&reader, buf.clone())
}

fn restore_from_reader(
    reader: &ArtifactReader<'_>,
    owner: Arc<dyn Any + Send + Sync>,
) -> Result<CobraSession> {
    let mut s = reader.section(tags::SESSION).map_err(persist_err)?;

    // Registry: re-registering the persisted names in order reproduces
    // the exact Var ids every persisted structure refers to.
    let mut reg = VarRegistry::new();
    let num_vars = s.get_u32().map_err(persist_err)?;
    for _ in 0..num_vars {
        reg.var(s.get_str().map_err(persist_err)?);
    }
    if reg.len() != num_vars as usize {
        return Err(CoreError::Session(
            "session artifact: duplicate registry names".into(),
        ));
    }

    let tree_text = s.get_str().map_err(persist_err)?.to_owned();
    let tree = AbstractionTree::parse(&tree_text, &mut reg)?;

    let mut base_valuation = match s.get_u32().map_err(persist_err)? {
        0 => Valuation::new(),
        _ => {
            let num = s.get_i128().map_err(persist_err)?;
            let den = s.get_i128().map_err(persist_err)?;
            Valuation::with_default(Rat::new(num, den))
        }
    };
    let num_bindings = s.get_u32().map_err(persist_err)?;
    for _ in 0..num_bindings {
        let var = Var(s.get_u32().map_err(persist_err)?);
        if var.index() >= reg.len() {
            return Err(CoreError::Session(
                "session artifact: valuation binds an unregistered variable".into(),
            ));
        }
        let num = s.get_i128().map_err(persist_err)?;
        let den = s.get_i128().map_err(persist_err)?;
        base_valuation.set(var, Rat::new(num, den));
    }

    let num_weights = s.get_u32().map_err(persist_err)?;
    let mut node_weight = Vec::with_capacity(num_weights as usize);
    for _ in 0..num_weights {
        node_weight.push(s.get_u64().map_err(persist_err)?);
    }
    let invariant_vars = s.get_u32().map_err(persist_err)? as usize;

    let num_points = s.get_u32().map_err(persist_err)?;
    let mut points = Vec::with_capacity(num_points as usize);
    for _ in 0..num_points {
        let variables = s.get_u64().map_err(persist_err)? as usize;
        let size = s.get_u64().map_err(persist_err)?;
        let nodes: Vec<crate::tree::NodeId> = s
            .get_u32_slice()
            .map_err(persist_err)?
            .iter()
            .map(|&n| crate::tree::NodeId(n))
            .collect();
        let cut = Cut::new(&tree, nodes)?;
        points.push(FrontierPoint {
            variables,
            size,
            cut,
        });
    }
    let frontier = CutFrontier::from_points(points);
    if frontier.len() != num_points as usize {
        return Err(CoreError::Session(
            "session artifact: frontier points are not a Pareto staircase".into(),
        ));
    }

    let num_warm = s.get_u32().map_err(persist_err)?;
    let mut warm_dir = Vec::with_capacity(num_warm as usize);
    for _ in 0..num_warm {
        let idx = s.get_u32().map_err(persist_err)? as usize;
        let has_f64 = s.get_u32().map_err(persist_err)? != 0;
        if idx >= frontier.len() {
            return Err(CoreError::Session(
                "session artifact: warm engine for an out-of-range frontier index".into(),
            ));
        }
        warm_dir.push((idx, has_f64));
    }

    // v1 artifacts predate algebraic compression: their SESSION section
    // ends at the warm directory, so the flag is read only from v2 on.
    let dag_mode = if reader.version() >= 2 {
        s.get_u32().map_err(persist_err)? != 0
    } else {
        false
    };

    let load = |tag: u32| -> Result<BatchEvaluator<Rat>> {
        let prog = persist::read_program_ref::<Rat>(reader, tag).map_err(persist_err)?;
        Ok(BatchEvaluator::new(prog.to_program(owner.clone())))
    };
    let load_f64 = |tag: u32| -> Result<BatchEvaluator<f64>> {
        let prog = persist::read_program_ref::<f64>(reader, tag).map_err(persist_err)?;
        Ok(BatchEvaluator::new(prog.to_program(owner.clone())))
    };

    let full_rat_engine = load(tags::PROGRAM_RAT)?;
    let full_f64_engine = load_f64(tags::PROGRAM_F64)?;
    if node_weight.len() != tree.num_nodes() {
        return Err(CoreError::Session(
            "session artifact: node weights do not match the tree".into(),
        ));
    }

    let mut warm: FxHashMap<usize, WarmEngines> = FxHashMap::default();
    for (k, &(idx, has_f64)) in warm_dir.iter().enumerate() {
        let base = tags::WARM_BASE + 2 * k as u32;
        let rat = load(base)?;
        let f64_engine = if has_f64 { Some(load_f64(base + 1)?) } else { None };
        warm.insert(
            idx,
            WarmEngines {
                rat,
                f64: f64_engine,
            },
        );
    }

    // Derivable from the persisted full program — never stored.
    let reserved: FxHashSet<Var> = full_rat_engine.program().vars().iter().copied().collect();
    let original_vars = reserved.len();
    let original_size = full_rat_engine.program().num_terms() as u64;

    let full_rat = OnceCell::new();
    let _ = full_rat.set(full_rat_engine);
    let full_f64 = OnceCell::new();
    let _ = full_f64.set(full_f64_engine);

    let reg_len_at_plan = reg.len();
    Ok(CobraSession {
        reg,
        // Left empty: decompiled from the full engine on first need.
        polys: OnceCell::new(),
        base_valuation,
        trees: vec![tree],
        tree_texts: vec![Some(tree_text)],
        bound: None,
        delta_churn: 0,
        full_rat,
        full_f64,
        compressed: None,
        frontier: Some(FrontierState {
            analysis: OnceCell::new(),
            node_weight,
            frontier,
            original_vars,
            original_size,
            reserved,
            invariant_vars,
            // DP tables are not persisted: the first structural delta on a
            // re-hydrated session replans from scratch (and snapshots).
            plan_snapshot: None,
            reg_len_at_plan,
            selected: None,
            subs: FxHashMap::default(),
            warm,
        }),
        forest: None::<ForestFrontierState>,
        dag_mode,
        // Options are not persisted: a restored session re-arms under the
        // defaults (compile_dag_with can override after the fact).
        dag_opts: DagOptions::default(),
        dag_full_rat: OnceCell::new(),
        dag_full_f64: OnceCell::new(),
        trace: Vec::new(),
        trace_enabled: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario_set::ScenarioSet;

    const POLYS: &str = "\
P1 = 208.8*p1*m1 + 240*p1*m3 + 42*v*m1 + 24.2*v*m3
P2 = 100*p2*m1 + 70.4*p2*m3 + 42*v*m1 + 24.2*v*m3";
    const TREE: &str = "Plans(Standard(p1,p2), v)";

    fn planned_session() -> CobraSession {
        let mut s = CobraSession::from_text(POLYS).unwrap();
        s.add_tree_text(TREE).unwrap();
        s.compress_frontier().unwrap();
        s
    }

    fn sweep_totals(s: &CobraSession) -> Vec<Vec<(Rat, Rat)>> {
        let mut vars: Vec<Var> = s.polynomials().distinct_vars().into_iter().collect();
        vars.sort_unstable();
        let set = ScenarioSet::perturb_each(vars, Rat::int(3));
        let sweep = s.sweep(set).unwrap();
        (0..sweep.len())
            .map(|i| {
                sweep
                    .full_row(i)
                    .iter()
                    .zip(sweep.compressed_row(i))
                    .map(|(f, c)| (*f, *c))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn snapshot_requires_planning_and_tree_text() {
        let mut s = CobraSession::from_text(POLYS).unwrap();
        assert!(snapshot_session(&s).is_err());
        s.add_tree_text(TREE).unwrap();
        assert!(snapshot_session(&s).is_err(), "no frontier planned yet");
        s.compress_frontier().unwrap();
        assert!(snapshot_session(&s).is_ok());
    }

    #[test]
    fn restored_session_reports_bit_identically() {
        let mut fresh = planned_session();
        let bytes = snapshot_session(&fresh).unwrap();
        let mut restored = restore_session_from_bytes(&bytes).unwrap();

        // Identical registries, in order.
        let fresh_names: Vec<String> =
            fresh.registry().iter().map(|(_, n)| n.to_owned()).collect();
        let restored_names: Vec<String> = restored
            .registry()
            .iter()
            .map(|(_, n)| n.to_owned())
            .collect();
        assert_eq!(fresh_names, restored_names);

        // Identical frontier and identical reports across every bound.
        assert_eq!(
            fresh.frontier().unwrap().len(),
            restored.frontier().unwrap().len()
        );
        let sizes: Vec<u64> = fresh
            .frontier()
            .unwrap()
            .points()
            .iter()
            .map(|p| p.size)
            .collect();
        for bound in sizes {
            assert_eq!(
                format!("{:?}", fresh.select_bound(bound).unwrap()),
                format!("{:?}", restored.select_bound(bound).unwrap())
            );
        }
    }

    #[test]
    fn restored_session_sweeps_bit_identically() {
        let mut fresh = planned_session();
        let bytes = snapshot_session(&fresh).unwrap();
        let mut restored = restore_session_from_bytes(&bytes).unwrap();

        for s in [&mut fresh, &mut restored] {
            s.select_bound(4).unwrap();
        }
        assert_eq!(sweep_totals(&fresh), sweep_totals(&restored));
        // The restored session decompiles its polynomials only on demand,
        // and they match the originals exactly.
        assert_eq!(fresh.polynomials(), restored.polynomials());
    }

    #[test]
    fn warm_engines_round_trip() {
        let mut fresh = planned_session();
        // Hop bounds with evaluations in between so warm engines
        // accumulate.
        let sizes: Vec<u64> = fresh
            .frontier()
            .unwrap()
            .points()
            .iter()
            .map(|p| p.size)
            .collect();
        for &bound in &sizes {
            fresh.select_bound(bound).unwrap();
            let _ = sweep_totals(&fresh);
        }
        let bytes = snapshot_session(&fresh).unwrap();
        let mut restored = restore_session_from_bytes(&bytes).unwrap();
        for &bound in &sizes {
            fresh.select_bound(bound).unwrap();
            restored.select_bound(bound).unwrap();
            assert_eq!(sweep_totals(&fresh), sweep_totals(&restored));
        }
    }

    #[test]
    fn tampered_artifact_is_rejected() {
        let fresh = planned_session();
        let mut bytes = snapshot_session(&fresh).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        assert!(restore_session_from_bytes(&bytes).is_err());
    }
}
