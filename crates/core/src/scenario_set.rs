//! Scenario sets: lazily enumerated families of hypothetical scenarios.
//!
//! COBRA's value is answering *many* hypotheticals cheaply, and the
//! explorer's natural input is not a flat list of valuations but a
//! **grid** — "sweep the March discount from −20% to +20% while the
//! business plans move ±10%" is a cartesian product of two factor axes.
//! A [`ScenarioSet`] describes such a family in O(axes) memory and lets
//! the sweep engine bind each scenario straight into compiled evaluation
//! buffers ([`RowBinder`]) without ever materializing a
//! `Vec<Valuation>`: a grid of 10⁶ scenarios is two small `Vec`s.
//!
//! Three shapes are supported, all behind one type:
//!
//! * **Grids** ([`ScenarioSet::grid`]): a cartesian product of [`Axis`]
//!   entries, each assigning one level to a group of variables. Later
//!   axes vary fastest (row-major order, like nested `for` loops).
//! * **Perturbations** ([`ScenarioSet::perturb_each`]): one scenario per
//!   variable, nudging it off the base valuation — the input of
//!   finite-difference sensitivity.
//! * **Explicit lists** (`From<&[Valuation<Rat>]>` and friends): the
//!   legacy materialized form, so every pre-grid call site keeps working.
//!
//! # Example
//!
//! A 3 × 2 grid over the paper's telephony provenance, swept through a
//! [`CobraSession`](crate::session::CobraSession) — six scenarios
//! evaluated on both the full and the compressed provenance in one
//! compiled pass, and bit-identical to the materialized-vector path:
//!
//! ```
//! use cobra_core::{CobraSession, ScenarioSet};
//! use cobra_util::Rat;
//!
//! let mut session = CobraSession::from_text(
//!     "P1 = 208.8*p1*m1 + 240*p1*m3 + 42*v*m1 + 24.2*v*m3",
//! ).unwrap();
//! session.add_tree_text("Plans(Standard(p1,p2), v)").unwrap();
//! session.set_bound(2);
//! session.compress().unwrap();
//!
//! let m3 = session.registry_mut().var("m3");
//! let p1 = session.registry_mut().var("p1");
//! let rat = |s: &str| Rat::parse(s).unwrap();
//! let grid = ScenarioSet::grid()
//!     .axis([m3], [rat("0.8"), rat("1"), rat("1.2")]) // March ±20%
//!     .axis([p1], [rat("1"), rat("1.1")])             // plan 1 +10%
//!     .build()
//!     .unwrap();
//! assert_eq!(grid.len(), 6);
//!
//! let sweep = session.sweep(&grid).unwrap();
//! assert_eq!(sweep.len(), 6);
//! // same results as materializing every valuation up front
//! let flat = grid.materialize(session.base_valuation());
//! let reference = session.sweep(&flat[..]).unwrap();
//! for i in 0..sweep.len() {
//!     assert_eq!(sweep.comparison(i).rows, reference.comparison(i).rows);
//! }
//! ```

use crate::error::{CoreError, Result};
use cobra_provenance::{EvalProgram, Valuation, Var, VarRegistry};
use cobra_util::{FxHashSet, Rat};

/// How an axis level (or perturbation delta) combines with the base
/// valuation's value for the variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AxisOp {
    /// The level *replaces* the base value (`v ↦ level`) — the usual
    /// multiplicative-factor scenario over an all-ones base.
    Set,
    /// The level *scales* the base value (`v ↦ base(v) × level`).
    Scale,
    /// The level *shifts* the base value (`v ↦ base(v) + level`) — the
    /// finite-difference bump of sensitivity analysis.
    Shift,
}

impl AxisOp {
    /// Resolves a level against the base value of the variable.
    #[inline]
    pub fn apply(self, base: Rat, level: Rat) -> Rat {
        match self {
            AxisOp::Set => level,
            AxisOp::Scale => base * level,
            AxisOp::Shift => base + level,
        }
    }

    /// [`apply`](Self::apply) on the `f64` fast path — the same resolution
    /// rule in floating point, used by the approximate sweep binder
    /// ([`PairBinder::bind_pair_into_f64`](crate::scenario::PairBinder::bind_pair_into_f64)).
    #[inline]
    pub fn apply_f64(self, base: f64, level: f64) -> f64 {
        match self {
            AxisOp::Set => level,
            AxisOp::Scale => base * level,
            AxisOp::Shift => base + level,
        }
    }

    fn symbol(self) -> &'static str {
        match self {
            AxisOp::Set => "=",
            AxisOp::Scale => "*=",
            AxisOp::Shift => "+=",
        }
    }
}

/// One factor axis of a grid: every variable in `vars` takes the same
/// level, and the grid enumerates all levels of all axes.
#[derive(Clone, Debug, PartialEq)]
pub struct Axis {
    vars: Vec<Var>,
    levels: Vec<Rat>,
    op: AxisOp,
}

impl Axis {
    /// An axis that sets `vars` to each of `levels` in turn.
    pub fn new(
        vars: impl IntoIterator<Item = Var>,
        levels: impl IntoIterator<Item = Rat>,
    ) -> Axis {
        Axis::with_op(vars, levels, AxisOp::Set)
    }

    /// An axis with an explicit [`AxisOp`].
    pub fn with_op(
        vars: impl IntoIterator<Item = Var>,
        levels: impl IntoIterator<Item = Rat>,
        op: AxisOp,
    ) -> Axis {
        Axis {
            vars: vars.into_iter().collect(),
            levels: levels.into_iter().collect(),
            op,
        }
    }

    /// `steps` evenly spaced levels from `lo` to `hi` inclusive — exact
    /// rational spacing. Zero steps yield an empty (grid-annihilating)
    /// axis; a single step collapses to `lo`.
    pub fn linspace(vars: impl IntoIterator<Item = Var>, lo: Rat, hi: Rat, steps: usize) -> Axis {
        let levels: Vec<Rat> = if steps == 0 {
            Vec::new()
        } else if steps == 1 {
            vec![lo]
        } else {
            let width = hi - lo;
            (0..steps)
                .map(|k| lo + width * Rat::new(k as i128, (steps - 1) as i128))
                .collect()
        };
        Axis::with_op(vars, levels, AxisOp::Set)
    }

    /// The variables moved together by this axis.
    pub fn vars(&self) -> &[Var] {
        &self.vars
    }

    /// The axis levels, in enumeration order.
    pub fn levels(&self) -> &[Rat] {
        &self.levels
    }

    /// How levels combine with the base valuation.
    pub fn op(&self) -> AxisOp {
        self.op
    }
}

#[derive(Clone, Debug)]
enum Kind {
    Explicit {
        scenarios: Vec<Valuation<Rat>>,
        labels: Option<Vec<String>>,
    },
    Grid {
        axes: Vec<Axis>,
        len: usize,
    },
    PerturbEach {
        vars: Vec<Var>,
        delta: Rat,
        op: AxisOp,
    },
}

/// A lazily enumerated family of scenarios — see the [module docs](self).
///
/// Scenario `i` of a set is always *leaf-level overrides relative to a
/// base valuation*: consumers merge it over their base exactly like a
/// sparse [`Valuation`] scenario, which
/// [`scenario_valuation`](ScenarioSet::scenario_valuation) makes explicit.
#[derive(Clone, Debug)]
pub struct ScenarioSet {
    kind: Kind,
}

impl ScenarioSet {
    /// Starts a grid builder (cartesian product of factor axes).
    pub fn grid() -> GridBuilder {
        GridBuilder { axes: Vec::new() }
    }

    /// One scenario per variable in `vars`, shifting it by `delta` off the
    /// base valuation (all other variables unchanged) — the
    /// finite-difference family of
    /// [`SensitivityReport::compute_sweep`](crate::sensitivity::SensitivityReport::compute_sweep).
    ///
    /// ```
    /// use cobra_core::ScenarioSet;
    /// use cobra_provenance::{Valuation, Var};
    /// use cobra_util::Rat;
    ///
    /// let family = ScenarioSet::perturb_each([Var(0), Var(1)], Rat::new(1, 4));
    /// assert_eq!(family.len(), 2); // one scenario per variable
    /// let base = Valuation::with_default(Rat::ONE);
    /// // scenario 1 bumps Var(1) by +1/4 and touches nothing else
    /// let s1 = family.scenario_valuation(1, &base);
    /// assert_eq!(s1.get(Var(1)), Some(Rat::new(5, 4)));
    /// assert_eq!(s1.get_explicit(Var(0)), None);
    /// ```
    pub fn perturb_each(vars: impl IntoIterator<Item = Var>, delta: Rat) -> ScenarioSet {
        ScenarioSet {
            kind: Kind::PerturbEach {
                vars: vars.into_iter().collect(),
                delta,
                op: AxisOp::Shift,
            },
        }
    }

    /// One scenario per variable in `vars`, scaling it by `factor` off the
    /// base valuation (multiplicative perturbation).
    pub fn scale_each(vars: impl IntoIterator<Item = Var>, factor: Rat) -> ScenarioSet {
        ScenarioSet {
            kind: Kind::PerturbEach {
                vars: vars.into_iter().collect(),
                delta: factor,
                op: AxisOp::Scale,
            },
        }
    }

    /// An explicit list of scenarios (the legacy materialized form).
    pub fn from_valuations(scenarios: Vec<Valuation<Rat>>) -> ScenarioSet {
        ScenarioSet {
            kind: Kind::Explicit {
                scenarios,
                labels: None,
            },
        }
    }

    /// A single scenario.
    pub fn single(scenario: Valuation<Rat>) -> ScenarioSet {
        ScenarioSet::from_valuations(vec![scenario])
    }

    /// Named single scenarios, e.g. the demo catalogue ("march-20pct-off",
    /// "business-up-10pct", …). [`label`](Self::label) recovers the names.
    pub fn named(
        scenarios: impl IntoIterator<Item = (impl Into<String>, Valuation<Rat>)>,
    ) -> ScenarioSet {
        let (labels, scenarios): (Vec<String>, Vec<Valuation<Rat>>) = scenarios
            .into_iter()
            .map(|(name, val)| (name.into(), val))
            .unzip();
        ScenarioSet {
            kind: Kind::Explicit {
                scenarios,
                labels: Some(labels),
            },
        }
    }

    /// Number of scenarios the set enumerates. A grid with no axes has
    /// exactly one scenario (the base itself); a grid containing an axis
    /// with no levels is empty.
    pub fn len(&self) -> usize {
        match &self.kind {
            Kind::Explicit { scenarios, .. } => scenarios.len(),
            Kind::Grid { len, .. } => *len,
            Kind::PerturbEach { vars, .. } => vars.len(),
        }
    }

    /// True iff the set enumerates no scenario.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The grid axes, if this set is a grid.
    pub fn axes(&self) -> Option<&[Axis]> {
        match &self.kind {
            Kind::Grid { axes, .. } => Some(axes),
            _ => None,
        }
    }

    /// The name of scenario `i`, if the set carries names.
    pub fn label(&self, i: usize) -> Option<&str> {
        match &self.kind {
            Kind::Explicit {
                labels: Some(labels),
                ..
            } => labels.get(i).map(String::as_str),
            _ => None,
        }
    }

    /// The materialized valuation of scenario `i`: the explicit overrides
    /// relative to `base` (no default of its own, so merging it over the
    /// base with [`Valuation::overridden_by`] reproduces exactly what the
    /// allocation-free binder computes). `Scale`/`Shift` levels resolve
    /// against `base` with the projection fallback rule: a variable the
    /// base does not bind reads the base default, or 1 if there is none.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    pub fn scenario_valuation(&self, i: usize, base: &Valuation<Rat>) -> Valuation<Rat> {
        assert!(i < self.len(), "scenario index {i} out of range");
        match &self.kind {
            Kind::Explicit { scenarios, .. } => scenarios[i].clone(),
            Kind::Grid { axes, .. } => {
                let mut out = Valuation::new();
                for_each_grid_digit(axes, i, |j, digit| {
                    let axis = &axes[j];
                    let level = axis.levels[digit];
                    for &v in &axis.vars {
                        out.set(v, axis.op.apply(base_value(base, v), level));
                    }
                });
                out
            }
            Kind::PerturbEach { vars, delta, op } => {
                let v = vars[i];
                Valuation::new().bind(v, op.apply(base_value(base, v), *delta))
            }
        }
    }

    /// Materializes the whole family as a `Vec<Valuation>` — the
    /// pre-`ScenarioSet` representation, kept for tests and interop. Costs
    /// O(len) memory; sweeps should pass the set itself instead.
    pub fn materialize(&self, base: &Valuation<Rat>) -> Vec<Valuation<Rat>> {
        (0..self.len())
            .map(|i| self.scenario_valuation(i, base))
            .collect()
    }

    /// A human-readable description of scenario `i`, e.g. `m3=0.8, b1=1.1`
    /// (grids render resolved ops; named scenarios render their label).
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    pub fn describe(&self, i: usize, reg: &VarRegistry) -> String {
        assert!(i < self.len(), "scenario index {i} out of range");
        if let Some(label) = self.label(i) {
            return label.to_owned();
        }
        match &self.kind {
            Kind::Explicit { scenarios, .. } => {
                let mut parts: Vec<String> = scenarios[i]
                    .iter()
                    .map(|(v, c)| format!("{}={}", reg.name(v), c))
                    .collect();
                parts.sort_unstable();
                parts.join(", ")
            }
            Kind::Grid { axes, .. } => {
                let mut parts = vec![String::new(); axes.len()];
                for_each_grid_digit(axes, i, |j, digit| {
                    let axis = &axes[j];
                    let names: Vec<&str> =
                        axis.vars.iter().map(|&v| reg.name(v)).collect();
                    parts[j] = format!(
                        "{}{}{}",
                        names.join(","),
                        axis.op.symbol(),
                        axis.levels[digit]
                    );
                });
                parts.join(", ")
            }
            Kind::PerturbEach { vars, delta, op } => {
                format!("{}{}{}", reg.name(vars[i]), op.symbol(), delta)
            }
        }
    }

    /// Dispatch helper for binders: the explicit scenarios, if any.
    pub(crate) fn explicit(&self) -> Option<&[Valuation<Rat>]> {
        match &self.kind {
            Kind::Explicit { scenarios, .. } => Some(scenarios),
            _ => None,
        }
    }

    /// Dispatch helper for binders: the perturbation family, if any.
    pub(crate) fn perturbation(&self) -> Option<(&[Var], Rat, AxisOp)> {
        match &self.kind {
            Kind::PerturbEach { vars, delta, op } => Some((vars, *delta, *op)),
            _ => None,
        }
    }
}

/// THE grid enumeration order, defined once: scenario `i` decomposes into
/// one level index per axis like a mixed-radix odometer with the **last
/// axis varying fastest** (row-major, nested-loop order). Visits
/// `(axis index, level index)` in reverse axis order — the decode order.
/// Every consumer (materialization, description, and both row binders)
/// routes through this function, so the order cannot silently diverge.
///
/// Callers guarantee `i < Π levels` (so no axis is empty).
pub(crate) fn for_each_grid_digit(axes: &[Axis], i: usize, mut f: impl FnMut(usize, usize)) {
    let mut rest = i;
    for (j, axis) in axes.iter().enumerate().rev() {
        let digit = rest % axis.levels.len();
        rest /= axis.levels.len();
        f(j, digit);
    }
}

/// The base value of `v` with the projection fallback rule: the base's
/// default, or 1 ("unchanged") if the base has none — exactly the
/// fallback [`assign::project_scenario`](crate::assign::project_scenario)
/// uses when averaging groups.
pub(crate) fn base_value(base: &Valuation<Rat>, v: Var) -> Rat {
    base.get(v)
        .or_else(|| base.default_value().copied())
        .unwrap_or(Rat::ONE)
}

/// Builder for grid-shaped [`ScenarioSet`]s. Axes enumerate in insertion
/// order with the **last axis varying fastest** (row-major, nested-loop
/// order); [`build`](Self::build) validates that no variable appears in
/// two axis positions and that the cardinality fits `usize`.
///
/// Each axis moves a whole *group* of variables together through its
/// levels — [`axis`](Self::axis) sets absolute values,
/// [`scale_axis`](Self::scale_axis)/[`shift_axis`](Self::shift_axis)
/// resolve multiplicatively/additively against the base valuation, and
/// [`Axis::linspace`] generates exact evenly spaced levels:
///
/// ```
/// use cobra_core::{Axis, ScenarioSet};
/// use cobra_provenance::{Valuation, Var};
/// use cobra_util::Rat;
///
/// let rat = |s: &str| Rat::parse(s).unwrap();
/// let (m3, b1, b2) = (Var(0), Var(1), Var(2));
/// let grid = ScenarioSet::grid()
///     .axis([m3], [rat("0.8"), rat("1.2")])          // March −20% / +20%
///     .scale_axis([b1, b2], [rat("1"), rat("1.1")])  // business ±0/+10%
///     .push(Axis::linspace([Var(3)], rat("0.9"), rat("1.1"), 3))
///     .build()
///     .unwrap();
/// assert_eq!(grid.len(), 2 * 2 * 3); // cartesian product of the axes
///
/// // Last axis fastest: scenario 1 moves only the linspace axis.
/// let base = Valuation::with_default(Rat::ONE);
/// let s1 = grid.scenario_valuation(1, &base);
/// assert_eq!(s1.get(m3), Some(rat("0.8")));
/// assert_eq!(s1.get(Var(3)), Some(rat("1"))); // midpoint, exact
///
/// // Overlapping axes are rejected at build time.
/// assert!(ScenarioSet::grid()
///     .axis([m3], [rat("1")])
///     .shift_axis([m3], [rat("0.1")])
///     .build()
///     .is_err());
/// ```
#[derive(Clone, Debug, Default)]
pub struct GridBuilder {
    axes: Vec<Axis>,
}

impl GridBuilder {
    /// Adds an axis that sets `vars` to each of `levels`.
    pub fn axis(
        self,
        vars: impl IntoIterator<Item = Var>,
        levels: impl IntoIterator<Item = Rat>,
    ) -> GridBuilder {
        self.push(Axis::new(vars, levels))
    }

    /// Adds an axis that scales the base value of `vars` by each level.
    pub fn scale_axis(
        self,
        vars: impl IntoIterator<Item = Var>,
        levels: impl IntoIterator<Item = Rat>,
    ) -> GridBuilder {
        self.push(Axis::with_op(vars, levels, AxisOp::Scale))
    }

    /// Adds an axis that shifts the base value of `vars` by each level.
    pub fn shift_axis(
        self,
        vars: impl IntoIterator<Item = Var>,
        levels: impl IntoIterator<Item = Rat>,
    ) -> GridBuilder {
        self.push(Axis::with_op(vars, levels, AxisOp::Shift))
    }

    /// Adds a prebuilt [`Axis`].
    pub fn push(mut self, axis: Axis) -> GridBuilder {
        self.axes.push(axis);
        self
    }

    /// Validates and builds the grid.
    ///
    /// # Errors
    /// [`CoreError::InvalidScenarioGrid`] if a variable appears twice
    /// (within one axis or across axes — overlapping axes would make the
    /// enumeration order-dependent), or if the grid cardinality overflows
    /// `usize`.
    pub fn build(self) -> Result<ScenarioSet> {
        let mut seen: FxHashSet<Var> = FxHashSet::default();
        for axis in &self.axes {
            for &v in &axis.vars {
                if !seen.insert(v) {
                    return Err(CoreError::InvalidScenarioGrid(format!(
                        "variable Var({}) appears in more than one axis position",
                        v.0
                    )));
                }
            }
        }
        let mut len: usize = 1;
        for axis in &self.axes {
            len = len.checked_mul(axis.levels.len()).ok_or_else(|| {
                CoreError::InvalidScenarioGrid("grid cardinality overflows usize".into())
            })?;
        }
        Ok(ScenarioSet {
            kind: Kind::Grid {
                axes: self.axes,
                len,
            },
        })
    }
}

// Back-compat conversions for the pre-grid call shapes. Borrowed inputs
// are cloned into the set — fine for the small explicit lists these
// shapes carry; large families should be described as grids or
// perturbations (O(axes) memory) or passed by value.
impl From<&[Valuation<Rat>]> for ScenarioSet {
    fn from(scenarios: &[Valuation<Rat>]) -> ScenarioSet {
        ScenarioSet::from_valuations(scenarios.to_vec())
    }
}

impl From<Vec<Valuation<Rat>>> for ScenarioSet {
    fn from(scenarios: Vec<Valuation<Rat>>) -> ScenarioSet {
        ScenarioSet::from_valuations(scenarios)
    }
}

impl From<&Vec<Valuation<Rat>>> for ScenarioSet {
    fn from(scenarios: &Vec<Valuation<Rat>>) -> ScenarioSet {
        ScenarioSet::from_valuations(scenarios.clone())
    }
}

impl<const N: usize> From<&[Valuation<Rat>; N]> for ScenarioSet {
    fn from(scenarios: &[Valuation<Rat>; N]) -> ScenarioSet {
        ScenarioSet::from_valuations(scenarios.to_vec())
    }
}

impl From<&Valuation<Rat>> for ScenarioSet {
    fn from(scenario: &Valuation<Rat>) -> ScenarioSet {
        ScenarioSet::single(scenario.clone())
    }
}

impl From<Valuation<Rat>> for ScenarioSet {
    fn from(scenario: Valuation<Rat>) -> ScenarioSet {
        ScenarioSet::single(scenario)
    }
}

impl From<&ScenarioSet> for ScenarioSet {
    fn from(set: &ScenarioSet) -> ScenarioSet {
        set.clone()
    }
}

/// Binds the scenarios of a [`ScenarioSet`] into rows of a single compiled
/// [`EvalProgram`] — base row cached once, per-scenario work is a `memcpy`
/// plus one write per override, with no allocation.
///
/// For the full/compressed *pair* with meta-variable projection, see
/// [`PairBinder`](crate::scenario::PairBinder).
pub struct RowBinder<'a> {
    set: &'a ScenarioSet,
    prog: &'a EvalProgram<Rat>,
    base: &'a Valuation<Rat>,
    base_row: Vec<Rat>,
    /// Per axis (grids) or per variable (perturbations): the override
    /// slots resolved to program locals once, up front.
    slots: Vec<Vec<Slot>>,
}

#[derive(Clone, Copy)]
struct Slot {
    local: Option<u32>,
    base_val: Rat,
}

impl<'a> RowBinder<'a> {
    /// Prepares a binder.
    ///
    /// # Panics
    /// Panics if the base valuation does not cover every program variable
    /// (give it a default, as assignment screens always do).
    pub fn new(
        set: &'a ScenarioSet,
        prog: &'a EvalProgram<Rat>,
        base: &'a Valuation<Rat>,
    ) -> RowBinder<'a> {
        let base_row = prog.bind(base).expect("base valuation must be total");
        let slot = |v: Var| Slot {
            local: prog.local_of(v),
            base_val: base_value(base, v),
        };
        let slots: Vec<Vec<Slot>> = match &set.kind {
            Kind::Explicit { .. } => Vec::new(),
            Kind::Grid { axes, .. } => axes
                .iter()
                .map(|axis| axis.vars.iter().map(|&v| slot(v)).collect())
                .collect(),
            Kind::PerturbEach { vars, .. } => {
                vec![vars.iter().map(|&v| slot(v)).collect()]
            }
        };
        RowBinder {
            set,
            prog,
            base,
            base_row,
            slots,
        }
    }

    /// Scenario row width (`num_locals` of the program).
    pub fn width(&self) -> usize {
        self.base_row.len()
    }

    /// Binds scenario `i` into `row`.
    ///
    /// # Panics
    /// Panics if `i >= set.len()` or `row.len() != width()`.
    pub fn bind_into(&self, i: usize, row: &mut [Rat]) {
        match &self.set.kind {
            Kind::Explicit { scenarios, .. } => {
                let merged = self.base.overridden_by(&scenarios[i]);
                self.prog
                    .bind_into(&merged, row)
                    .expect("scenario valuation must be total");
            }
            Kind::Grid { axes, .. } => {
                assert!(i < self.set.len(), "scenario index {i} out of range");
                row.copy_from_slice(&self.base_row);
                for_each_grid_digit(axes, i, |j, digit| {
                    let axis = &axes[j];
                    let level = axis.levels[digit];
                    for s in &self.slots[j] {
                        if let Some(local) = s.local {
                            row[local as usize] = axis.op.apply(s.base_val, level);
                        }
                    }
                });
            }
            Kind::PerturbEach { vars, delta, op } => {
                assert!(i < vars.len(), "scenario index {i} out of range");
                row.copy_from_slice(&self.base_row);
                let s = self.slots[0][i];
                if let Some(local) = s.local {
                    row[local as usize] = op.apply(s.base_val, *delta);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rat(s: &str) -> Rat {
        Rat::parse(s).unwrap()
    }

    #[test]
    fn grid_cardinality_and_row_major_order() {
        let grid = ScenarioSet::grid()
            .axis([Var(0)], [rat("1"), rat("2")])
            .axis([Var(1)], [rat("10"), rat("20"), rat("30")])
            .build()
            .unwrap();
        assert_eq!(grid.len(), 6);
        let base = Valuation::with_default(Rat::ONE);
        // last axis fastest: (1,10), (1,20), (1,30), (2,10), …
        let expect = [
            ("1", "10"),
            ("1", "20"),
            ("1", "30"),
            ("2", "10"),
            ("2", "20"),
            ("2", "30"),
        ];
        for (i, (a, b)) in expect.iter().enumerate() {
            let val = grid.scenario_valuation(i, &base);
            assert_eq!(val.get(Var(0)), Some(rat(a)), "scenario {i}");
            assert_eq!(val.get(Var(1)), Some(rat(b)), "scenario {i}");
            assert_eq!(val.len(), 2);
            assert!(val.default_value().is_none());
        }
    }

    #[test]
    fn empty_axis_empties_the_grid_and_no_axes_mean_identity() {
        let empty = ScenarioSet::grid()
            .axis([Var(0)], [])
            .axis([Var(1)], [Rat::ONE])
            .build()
            .unwrap();
        assert_eq!(empty.len(), 0);
        assert!(empty.is_empty());

        let identity = ScenarioSet::grid().build().unwrap();
        assert_eq!(identity.len(), 1);
        let val = identity.scenario_valuation(0, &Valuation::with_default(Rat::ONE));
        assert!(val.is_empty());
    }

    #[test]
    fn overlapping_axes_are_rejected() {
        let err = ScenarioSet::grid()
            .axis([Var(0), Var(1)], [Rat::ONE])
            .axis([Var(1)], [Rat::ONE])
            .build()
            .unwrap_err();
        assert!(matches!(err, CoreError::InvalidScenarioGrid(_)));
        let err = ScenarioSet::grid()
            .axis([Var(2), Var(2)], [Rat::ONE])
            .build()
            .unwrap_err();
        assert!(matches!(err, CoreError::InvalidScenarioGrid(_)));
    }

    #[test]
    fn scale_and_shift_resolve_against_base() {
        let base = Valuation::with_default(Rat::ONE).bind(Var(0), rat("4"));
        let grid = ScenarioSet::grid()
            .scale_axis([Var(0)], [rat("0.5")])
            .shift_axis([Var(1)], [rat("3")])
            .build()
            .unwrap();
        let val = grid.scenario_valuation(0, &base);
        assert_eq!(val.get(Var(0)), Some(rat("2"))); // 4 × 0.5
        assert_eq!(val.get(Var(1)), Some(rat("4"))); // 1 + 3
    }

    #[test]
    fn perturb_each_is_one_scenario_per_var() {
        let base = Valuation::with_default(rat("2"));
        let set = ScenarioSet::perturb_each([Var(0), Var(5)], rat("0.25"));
        assert_eq!(set.len(), 2);
        let s0 = set.scenario_valuation(0, &base);
        assert_eq!(s0.get(Var(0)), Some(rat("2.25")));
        assert_eq!(s0.get_explicit(Var(5)), None);
        let s1 = set.scenario_valuation(1, &base);
        assert_eq!(s1.get(Var(5)), Some(rat("2.25")));

        let scaled = ScenarioSet::scale_each([Var(0)], rat("1.1"));
        assert_eq!(
            scaled.scenario_valuation(0, &base).get(Var(0)),
            Some(rat("2.2"))
        );
    }

    #[test]
    fn named_sets_carry_labels() {
        let set = ScenarioSet::named([
            ("march", Valuation::with_default(Rat::ONE).bind(Var(0), rat("0.8"))),
            ("base", Valuation::with_default(Rat::ONE)),
        ]);
        assert_eq!(set.len(), 2);
        assert_eq!(set.label(0), Some("march"));
        assert_eq!(set.label(1), Some("base"));
        assert_eq!(set.label(2), None);
        let mut reg = VarRegistry::new();
        reg.var("x");
        assert_eq!(set.describe(0, &reg), "march");
    }

    #[test]
    fn describe_renders_grid_points() {
        let mut reg = VarRegistry::new();
        let m3 = reg.var("m3");
        let b = reg.var("b1");
        let grid = ScenarioSet::grid()
            .axis([m3], [rat("0.8"), rat("1.2")])
            .scale_axis([b], [rat("1.1")])
            .build()
            .unwrap();
        assert_eq!(grid.describe(1, &reg), "m3=1.2, b1*=1.1");
    }

    #[test]
    fn from_impls_cover_legacy_shapes() {
        let vals = vec![
            Valuation::with_default(Rat::ONE),
            Valuation::with_default(Rat::ONE).bind(Var(0), rat("2")),
        ];
        assert_eq!(ScenarioSet::from(&vals[..]).len(), 2);
        assert_eq!(ScenarioSet::from(&vals).len(), 2);
        assert_eq!(ScenarioSet::from(vals.clone()).len(), 2);
        assert_eq!(ScenarioSet::from(&vals[0]).len(), 1);
        let set = ScenarioSet::from(vals.clone());
        assert_eq!(ScenarioSet::from(&set).len(), 2);
        // explicit sets materialize to themselves
        let base = Valuation::with_default(Rat::ONE);
        assert_eq!(set.materialize(&base), vals);
    }

    #[test]
    fn linspace_is_inclusive_and_exact() {
        let axis = Axis::linspace([Var(0)], rat("0.8"), rat("1.2"), 5);
        assert_eq!(
            axis.levels(),
            &[rat("0.8"), rat("0.9"), rat("1"), rat("1.1"), rat("1.2")]
        );
        assert_eq!(Axis::linspace([Var(0)], rat("3"), rat("9"), 1).levels(), &[rat("3")]);
        assert!(Axis::linspace([Var(0)], rat("3"), rat("9"), 0).levels().is_empty());
    }
}
