//! Multi-tree forests — the full-paper generalization (extension).
//!
//! The demonstration restricts to a single abstraction tree, where the
//! problem is PTIME. With several trees the interactions between cuts make
//! the problem NP-hard in general (SIGMOD'19 \[4\]), so we provide a
//! **coordinate-descent** heuristic: fix the cuts of all trees but one,
//! substitute them into the provenance, and re-optimize the remaining tree
//! exactly with the single-tree planner ([`crate::planner::ExactDp`]);
//! iterate until a fixpoint. Each step is exact given the others, so the
//! objective `(Σ variables, −size)` improves lexicographically and the
//! process terminates. The brute-force forest search
//! ([`crate::brute::optimize_forest`]) serves as the oracle on small
//! instances.

use crate::apply::{apply_cut, apply_cuts, AppliedAbstraction};
use crate::cut::Cut;
use crate::error::{CoreError, Result};
use crate::groups::GroupAnalysis;
use crate::planner::{CutPlanner, ExactDp, PlanContext};
use crate::scenario::{CompiledComparison, ScenarioSweep};
use crate::scenario_set::ScenarioSet;
use crate::tree::AbstractionTree;
use cobra_provenance::{Coeff, PolySet, Valuation, VarRegistry};
use cobra_util::Rat;

/// Output of the coordinate-descent forest optimizer.
#[derive(Clone, Debug)]
pub struct ForestSolution {
    /// One cut per tree, in input order.
    pub cuts: Vec<Cut>,
    /// Total variables across all cuts (Σ |cutᵢ|).
    pub variables: usize,
    /// Measured compressed size with all cuts applied.
    pub size: u64,
    /// Number of improvement rounds until the fixpoint.
    pub rounds: usize,
}

/// Coordinate-descent optimization over a forest of abstraction trees.
///
/// # Errors
/// [`CoreError::InfeasibleBound`] if even the all-roots abstraction
/// exceeds `bound`; [`CoreError::MonomialSpansTree`] if some monomial
/// mentions two leaves of one tree.
pub fn optimize_forest_descent<C: Coeff>(
    set: &PolySet<C>,
    trees: &[&AbstractionTree],
    bound: u64,
    reg: &mut VarRegistry,
    max_rounds: usize,
) -> Result<ForestSolution> {
    assert!(!trees.is_empty(), "forest must contain at least one tree");
    // Start from the coarsest abstraction: every tree cut at its root.
    let mut cuts: Vec<Cut> = trees.iter().map(|t| Cut::root(t)).collect();
    let pairs: Vec<(&AbstractionTree, &Cut)> =
        trees.iter().copied().zip(cuts.iter()).collect();
    let mut size = apply_cuts(set, &pairs, reg).compressed_size as u64;
    if size > bound {
        return Err(CoreError::InfeasibleBound {
            min_achievable: size,
        });
    }

    let mut rounds = 0usize;
    for _ in 0..max_rounds {
        rounds += 1;
        let mut improved = false;
        for i in 0..trees.len() {
            // Substitute every other tree's current cut.
            let others: Vec<(&AbstractionTree, &Cut)> = trees
                .iter()
                .copied()
                .zip(cuts.iter())
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, pair)| pair)
                .collect();
            let substituted = if others.is_empty() {
                set.clone()
            } else {
                apply_cuts(set, &others, reg).compressed
            };
            // Exact single-tree optimization on the substituted set,
            // through the unified planner.
            let analysis = GroupAnalysis::analyze(&substituted, trees[i])?;
            let sol = ExactDp.plan(&PlanContext::new(trees[i], &analysis), bound)?;
            let better = sol.variables > cuts[i].len()
                || (sol.variables == cuts[i].len() && sol.size < size);
            if better {
                // Confirm with a real application (guards the cost model).
                let mut candidate = cuts.clone();
                candidate[i] = sol.cut.clone();
                let pairs: Vec<(&AbstractionTree, &Cut)> =
                    trees.iter().copied().zip(candidate.iter()).collect();
                let measured = apply_cuts(set, &pairs, reg).compressed_size as u64;
                if measured <= bound && (sol.variables > cuts[i].len() || measured < size) {
                    cuts = candidate;
                    size = measured;
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }

    Ok(ForestSolution {
        variables: cuts.iter().map(Cut::len).sum(),
        cuts,
        size,
        rounds,
    })
}

/// One point of a forest's expressiveness/size trade-off curve: a total
/// cut cardinality across all trees, the measured compressed size, and
/// the witness cuts (one per tree, input order).
#[derive(Clone, Debug)]
pub struct ForestFrontierPoint {
    /// Σ |cutᵢ| across the forest.
    pub variables: usize,
    /// Measured compressed size with all cuts applied.
    pub size: u64,
    /// One witness cut per tree, in input order.
    pub cuts: Vec<Cut>,
}

/// The forest generalization of [`CutFrontier`](crate::planner::CutFrontier):
/// a staircase of coordinate-descent solutions in strictly increasing
/// `variables` **and** `size`, so any bound resolves in `O(log n)` without
/// re-running the descent. Unlike the single-tree frontier the points are
/// heuristic (the forest problem is NP-hard), but selection against them
/// is exactly as cheap.
#[derive(Clone, Debug, Default)]
pub struct ForestFrontier {
    points: Vec<ForestFrontierPoint>,
}

impl ForestFrontier {
    /// Number of frontier points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True iff the frontier has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The points in ascending `variables` (and `size`) order.
    pub fn points(&self) -> &[ForestFrontierPoint] {
        &self.points
    }

    /// The most expressive point whose size fits `bound`, as an index into
    /// [`points`](Self::points). `None` if even the coarsest point exceeds
    /// the bound.
    pub fn select_index(&self, bound: u64) -> Option<usize> {
        let feasible = self.points.partition_point(|p| p.size <= bound);
        feasible.checked_sub(1)
    }

    /// The smallest size on the curve (reported for infeasible bounds).
    pub fn min_size(&self) -> u64 {
        self.points.first().map_or(0, |p| p.size)
    }
}

/// Plans a forest's whole bound axis in one pass: repeated
/// [`optimize_forest_descent`] runs at decreasing bounds (each run's bound
/// is one below the previous solution's size, so every distinct attainable
/// size is visited once), Pareto-filtered into a [`ForestFrontier`]. The
/// session's `select_bound` then serves any forest bound as a staircase
/// lookup — the multi-tree sibling of
/// [`plan_frontier`](crate::planner::CutPlanner::plan_frontier).
///
/// # Errors
/// [`CoreError::MonomialSpansTree`] if some monomial mentions two leaves
/// of one tree; descent errors other than an infeasible bound propagate.
pub fn plan_forest_frontier<C: Coeff>(
    set: &PolySet<C>,
    trees: &[&AbstractionTree],
    reg: &mut VarRegistry,
    max_rounds: usize,
) -> Result<ForestFrontier> {
    let mut raw: Vec<ForestFrontierPoint> = Vec::new();
    let mut bound = set.total_monomials() as u64;
    loop {
        match optimize_forest_descent(set, trees, bound, reg, max_rounds) {
            Ok(sol) => {
                let next = sol.size.checked_sub(1);
                raw.push(ForestFrontierPoint {
                    variables: sol.variables,
                    size: sol.size,
                    cuts: sol.cuts,
                });
                match next {
                    Some(b) if b > 0 => bound = b,
                    _ => break,
                }
            }
            Err(CoreError::InfeasibleBound { .. }) => break,
            Err(e) => return Err(e),
        }
    }
    // Visited in strictly decreasing size; flip to ascending and keep only
    // points that strictly gain expressiveness, so selection's "last point
    // with size ≤ bound" is also the most expressive feasible one.
    raw.reverse();
    let mut points: Vec<ForestFrontierPoint> = Vec::new();
    for p in raw {
        if points
            .last()
            .is_none_or(|l: &ForestFrontierPoint| p.variables > l.variables)
        {
            points.push(p);
        }
    }
    Ok(ForestFrontier { points })
}

/// Convenience wrapper for the single-tree case: the exact planner plus a
/// real application, returning the same shape as the forest optimizer.
pub fn optimize_single_tree<C: Coeff>(
    set: &PolySet<C>,
    tree: &AbstractionTree,
    bound: u64,
    reg: &mut VarRegistry,
) -> Result<(ForestSolution, crate::apply::AppliedAbstraction<C>)> {
    let analysis = GroupAnalysis::analyze(set, tree)?;
    let sol = ExactDp.plan(&PlanContext::new(tree, &analysis), bound)?;
    let applied = apply_cut(set, tree, &sol.cut, reg);
    debug_assert_eq!(applied.compressed_size as u64, sol.size);
    Ok((
        ForestSolution {
            cuts: vec![sol.cut],
            variables: sol.variables,
            size: sol.size,
            rounds: 1,
        },
        applied,
    ))
}

/// Batched full-vs-compressed sweep for a forest application: multi-tree
/// sessions run their scenario exploration through the same compiled
/// engine as single-tree ones (meta-variables from every tree project at
/// once). Accepts anything convertible to a
/// [`ScenarioSet`] — grids stream without materializing valuations. Like
/// every sweep surface this is backed by the streaming fold engine
/// ([`CompiledComparison::sweep_fold`]); use [`forest_sweep_fold`] to
/// aggregate huge families without materializing the result matrix.
pub fn forest_sweep(
    set: &PolySet<Rat>,
    applied: &AppliedAbstraction<Rat>,
    base: &Valuation<Rat>,
    scenarios: impl Into<ScenarioSet>,
) -> ScenarioSweep {
    let engines = CompiledComparison::compile(set, &applied.compressed);
    engines.sweep(&applied.meta_vars, base, &scenarios.into())
}

/// Streaming fold over a forest application's full-vs-compressed results:
/// [`forest_sweep`] without the O(scenarios × polys) result matrix. Each
/// scenario's result rows are handed to `f` as a
/// [`FoldItem`](crate::scenario::FoldItem) in enumeration order, so a
/// 10⁷-scenario grid aggregates (max error, argmax impact, histograms)
/// in O(1) output memory over a multi-tree compression.
pub fn forest_sweep_fold<A>(
    set: &PolySet<Rat>,
    applied: &AppliedAbstraction<Rat>,
    base: &Valuation<Rat>,
    scenarios: impl Into<ScenarioSet>,
    init: A,
    f: impl FnMut(A, crate::scenario::FoldItem<'_, Rat>) -> A,
) -> A {
    let engines = CompiledComparison::compile(set, &applied.compressed);
    engines.sweep_fold(&applied.meta_vars, base, &scenarios.into(), init, f)
}

/// [`forest_sweep_fold`] **fanned across cores**: any
/// [`MergeFold`](crate::folds::MergeFold) aggregates a multi-tree
/// compression's full-vs-compressed stream with per-worker binders and
/// fold replicas, merged in ascending span order — bit-identical to the
/// sequential fold at any thread count (see
/// [`CompiledComparison::sweep_fold_par`]).
pub fn forest_sweep_fold_par<F: crate::folds::MergeFold + Send + Sync>(
    set: &PolySet<Rat>,
    applied: &AppliedAbstraction<Rat>,
    base: &Valuation<Rat>,
    scenarios: impl Into<ScenarioSet>,
    fold: F,
) -> F {
    let engines = CompiledComparison::compile(set, &applied.compressed);
    engines.sweep_fold_par(&applied.meta_vars, base, &scenarios.into(), fold)
}

/// [`forest_sweep_fold`] under a
/// [`SweepBudget`](crate::budget::SweepBudget): the forest sibling of
/// [`CompiledComparison::sweep_fold_budgeted`], returning the exact fold
/// over the completed scenario prefix when the budget runs out.
///
/// # Errors
/// [`CoreError::InfeasibleBudget`]
/// when the budget is statically unsatisfiable.
pub fn forest_sweep_fold_budgeted<A>(
    set: &PolySet<Rat>,
    applied: &AppliedAbstraction<Rat>,
    base: &Valuation<Rat>,
    scenarios: impl Into<ScenarioSet>,
    budget: &crate::budget::SweepBudget,
    init: A,
    f: impl FnMut(A, crate::scenario::FoldItem<'_, Rat>) -> A,
) -> Result<crate::budget::SweepOutcome<A>> {
    let engines = CompiledComparison::compile(set, &applied.compressed);
    engines.sweep_fold_budgeted(&applied.meta_vars, base, &scenarios.into(), budget, init, f)
}

/// [`forest_sweep_fold_par`] under a
/// [`SweepBudget`](crate::budget::SweepBudget) with worker faults
/// isolated — the forest sibling of
/// [`CompiledComparison::sweep_fold_par_budgeted`], with the same partial
/// bit-identity and panic-surfacing contracts.
///
/// # Errors
/// [`CoreError::InfeasibleBudget`]
/// for statically unsatisfiable budgets;
/// [`CoreError::WorkerPanicked`]
/// when a worker panicked (the process stays live).
pub fn forest_sweep_fold_par_budgeted<F: crate::folds::MergeFold + Send + Sync>(
    set: &PolySet<Rat>,
    applied: &AppliedAbstraction<Rat>,
    base: &Valuation<Rat>,
    scenarios: impl Into<ScenarioSet>,
    budget: &crate::budget::SweepBudget,
    fold: F,
) -> Result<crate::budget::SweepOutcome<F>> {
    let engines = CompiledComparison::compile(set, &applied.compressed);
    engines.sweep_fold_par_budgeted(&applied.meta_vars, base, &scenarios.into(), budget, fold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp;
    use crate::tree::paper_plans_tree;
    use cobra_provenance::parse_polyset;
    use cobra_util::Rat;

    fn setup() -> (VarRegistry, AbstractionTree, PolySet<Rat>) {
        let mut reg = VarRegistry::new();
        let tree = paper_plans_tree(&mut reg);
        let src = "\
P1 = 208.8*p1*m1 + 240*p1*m3 + 127.4*f1*m1 + 114.45*f1*m3 \
   + 75.9*y1*m1 + 72.5*y1*m3 + 42*v*m1 + 24.2*v*m3
P2 = 77.9*b1*m1 + 80.5*b1*m3 + 52.2*e*m1 + 56.5*e*m3 + 69.7*b2*m1 + 100.65*b2*m3";
        let set = parse_polyset(src, &mut reg).unwrap();
        (reg, tree, set)
    }

    #[test]
    fn single_tree_descent_matches_dp() {
        let (mut reg, tree, set) = setup();
        for bound in [4u64, 6, 8, 14] {
            let sol =
                optimize_forest_descent(&set, &[&tree], bound, &mut reg, 10).unwrap();
            let analysis = GroupAnalysis::analyze(&set, &tree).unwrap();
            let exact = dp::optimize(&tree, &analysis, bound).unwrap();
            assert_eq!(sol.variables, exact.variables, "bound {bound}");
            assert_eq!(sol.size, exact.size, "bound {bound}");
        }
    }

    #[test]
    fn two_tree_descent_matches_brute_force() {
        let (mut reg, plans, set) = setup();
        let months = AbstractionTree::parse("M(m1,m3)", &mut reg).unwrap();
        for bound in [2u64, 4, 6, 7, 10, 14] {
            let descent =
                optimize_forest_descent(&set, &[&plans, &months], bound, &mut reg, 20)
                    .unwrap();
            let brute = crate::brute::optimize_forest(
                &set,
                &[&plans, &months],
                bound,
                &mut reg,
                1_000_000,
            )
            .unwrap();
            // The heuristic must be feasible and match the oracle's
            // variable count on these small, well-behaved instances.
            assert!(descent.size <= bound, "bound {bound}");
            assert_eq!(
                descent.variables, brute.variables,
                "bound {bound}: descent {descent:?} vs brute {brute:?}"
            );
        }
    }

    #[test]
    fn forest_frontier_is_a_strict_staircase() {
        let (mut reg, plans, set) = setup();
        let months = AbstractionTree::parse("M(m1,m3)", &mut reg).unwrap();
        let frontier =
            plan_forest_frontier(&set, &[&plans, &months], &mut reg, 20).unwrap();
        assert!(!frontier.is_empty());
        let points = frontier.points();
        for pair in points.windows(2) {
            assert!(pair[0].size < pair[1].size, "sizes strictly ascend");
            assert!(
                pair[0].variables < pair[1].variables,
                "variables strictly ascend"
            );
        }
        // Every point's achieved solution matches a fresh descent at its
        // own size bound.
        for point in points {
            let sol = optimize_forest_descent(
                &set,
                &[&plans, &months],
                point.size,
                &mut reg,
                20,
            )
            .unwrap();
            assert_eq!(sol.variables, point.variables);
            assert_eq!(sol.size, point.size);
            assert_eq!(point.cuts.len(), 2);
        }
        // Selection resolves like the single-tree staircase.
        let coarsest = points[0].size;
        assert_eq!(frontier.min_size(), coarsest);
        assert!(frontier.select_index(coarsest.saturating_sub(1)).is_none());
        assert_eq!(frontier.select_index(coarsest), Some(0));
        assert_eq!(
            frontier.select_index(u64::MAX),
            Some(frontier.len() - 1)
        );
    }

    #[test]
    fn forest_sweep_runs_compiled_comparison() {
        let (mut reg, plans, set) = setup();
        let months = AbstractionTree::parse("M(m1,m3)", &mut reg).unwrap();
        let sol =
            optimize_forest_descent(&set, &[&plans, &months], 4, &mut reg, 20).unwrap();
        let pairs: Vec<(&AbstractionTree, &Cut)> = [&plans, &months]
            .into_iter()
            .zip(sol.cuts.iter())
            .collect();
        let applied = apply_cuts(&set, &pairs, &mut reg);
        let base = Valuation::with_default(Rat::ONE);
        let m3 = reg.var("m3");
        let scenarios = vec![
            Valuation::with_default(Rat::ONE).bind(m3, Rat::parse("0.8").unwrap()),
            Valuation::with_default(Rat::ONE),
        ];
        let sweep = forest_sweep(&set, &applied, &base, &scenarios);
        assert_eq!(sweep.len(), 2);
        // the all-ones scenario is always exact (defaults project losslessly)
        assert!(sweep.comparison(1).is_exact());
        // batched results match the scalar comparison path
        for (scenario, cmp) in scenarios.iter().zip(sweep.comparisons()) {
            let leaf_val = base.overridden_by(scenario);
            let meta_val = leaf_val.overridden_by(&crate::assign::project_scenario(
                &applied.meta_vars,
                &leaf_val,
            ));
            let expected = crate::assign::ResultComparison::evaluate(
                &set,
                &leaf_val,
                &applied.compressed,
                &meta_val,
            );
            assert_eq!(cmp.rows, expected.rows);
        }
    }

    #[test]
    fn infeasible_forest_bound() {
        let (mut reg, plans, set) = setup();
        let months = AbstractionTree::parse("M(m1,m3)", &mut reg).unwrap();
        assert!(matches!(
            optimize_forest_descent(&set, &[&plans, &months], 1, &mut reg, 10),
            Err(CoreError::InfeasibleBound { min_achievable: 2 })
        ));
    }

    use crate::tree::AbstractionTree;
}
