//! Group analysis for the single-tree optimization problem.
//!
//! In the single-tree setting each monomial mentions **at most one** leaf
//! of the abstraction tree (paper §2, last paragraph). Write a monomial as
//! `coeff · context · leaf^exp` where *context* collects the non-tree
//! variables. Under a cut, two monomials merge iff they belong to the same
//! **group** — same polynomial, same context, same exponent — and their
//! leaves fall under the same cut node.
//!
//! Consequently the compressed size decomposes additively:
//!
//! ```text
//! size(cut) = base + Σ_{v ∈ cut} w(v)
//! w(v)      = #groups touching at least one leaf in subtree(v)
//! ```
//!
//! where `base` counts monomials without tree variables. This module
//! computes the groups and the node weights `w(v)`; [`crate::dp`] runs the
//! knapsack over them.
//!
//! The additive formula counts one monomial per `(group, cut node)` pair;
//! it assumes merged coefficients never **cancel to zero** (true for
//! provenance annotations, which are nonnegative — counts, durations,
//! prices). With mixed-sign coefficients an exact cancellation would make
//! the materialized compressed set smaller than the formula predicts; the
//! optimizer pipeline debug-asserts this invariant wherever a predicted
//! size meets a real application.

use crate::error::{CoreError, Result};
use crate::tree::{AbstractionTree, NodeId};
use cobra_provenance::{Coeff, Monomial, PolySet};
use cobra_util::FxHashMap;

/// One group: the set of leaf positions (indices into the tree's flat leaf
/// order) whose monomials share `(polynomial, context, exponent)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Group {
    /// Index of the polynomial within the analyzed set.
    pub poly: u32,
    /// Exponent of the tree variable in this group's monomials.
    pub exponent: u32,
    /// The shared context monomial (the non-tree factors).
    pub context: Monomial,
    /// Leaf positions present (sorted, deduplicated).
    pub leaf_positions: Vec<u32>,
    /// For each leaf position (aligned with `leaf_positions`): the index of
    /// the member monomial in its polynomial's canonical term list. Together
    /// with `context` this is enough to rebuild the compressed provenance
    /// for any cut directly from the analysis
    /// ([`crate::apply::apply_cut_with_groups`]) — the shared cut
    /// statistics the planner rides, computed once instead of re-derived
    /// per algorithm.
    pub term_indices: Vec<u32>,
}

/// The result of analysing a polynomial set against one tree.
#[derive(Clone, Debug)]
pub struct GroupAnalysis {
    /// Monomials mentioning no tree variable: they survive any cut
    /// unchanged.
    pub base_monomials: u64,
    /// The base monomials themselves as `(polynomial index, term index)`
    /// references into the analyzed set (in set order) — lets a compressed
    /// set be rebuilt from the analysis without re-scanning the input.
    pub base_terms: Vec<(u32, u32)>,
    /// All groups, in a deterministic canonical order.
    pub groups: Vec<Group>,
    /// `w(v)` per node (indexed by `NodeId`): the number of groups whose
    /// leaves intersect the node's subtree.
    pub node_weight: Vec<u64>,
}

impl GroupAnalysis {
    /// Analyses `set` against `tree`.
    ///
    /// # Errors
    /// [`CoreError::MonomialSpansTree`] if some monomial mentions two
    /// distinct leaves of the tree (outside the single-tree setting).
    pub fn analyze<C: Coeff>(set: &PolySet<C>, tree: &AbstractionTree) -> Result<GroupAnalysis> {
        let mut base_terms: Vec<(u32, u32)> = Vec::new();
        // (poly, context, exponent) → (leaf position, term index) members
        let mut groups: FxHashMap<(u32, Monomial, u32), Vec<(u32, u32)>> = FxHashMap::default();
        for (poly_idx, (label, poly)) in set.iter().enumerate() {
            for (term_idx, (monomial, _)) in poly.iter().enumerate() {
                let mut tree_var = None;
                for v in monomial.vars() {
                    if let Some(leaf) = tree.leaf_of_var(v) {
                        if let Some((prev_var, _)) = tree_var {
                            let pv: cobra_provenance::Var = prev_var;
                            return Err(CoreError::MonomialSpansTree {
                                poly: label.to_owned(),
                                vars: (format!("Var({})", pv.0), format!("Var({})", v.0)),
                            });
                        }
                        tree_var = Some((v, leaf));
                    }
                }
                match tree_var {
                    None => base_terms.push((poly_idx as u32, term_idx as u32)),
                    Some((v, leaf)) => {
                        let (context, exp) = monomial.without(v);
                        let pos = tree.leaf_range(leaf).start as u32;
                        let entry = groups
                            .entry((poly_idx as u32, context, exp))
                            .or_default();
                        // canonical polynomials cannot repeat a leaf within
                        // a group, so a plain push keeps entries unique
                        entry.push((pos, term_idx as u32));
                    }
                }
            }
        }

        let mut out_groups = Vec::with_capacity(groups.len());
        for ((poly, context, exponent), mut members) in groups {
            members.sort_unstable_by_key(|&(pos, _)| pos);
            debug_assert!(members.windows(2).all(|w| w[0].0 != w[1].0));
            out_groups.push(Group {
                poly,
                exponent,
                context,
                leaf_positions: members.iter().map(|&(pos, _)| pos).collect(),
                term_indices: members.iter().map(|&(_, idx)| idx).collect(),
            });
        }
        // Deterministic order (hash map iteration order is not); the
        // context disambiguates groups sharing the same leaf set.
        out_groups.sort_unstable_by(|a, b| {
            (a.poly, a.exponent, &a.leaf_positions, &a.context)
                .cmp(&(b.poly, b.exponent, &b.leaf_positions, &b.context))
        });

        let node_weight = compute_node_weights(tree, &out_groups);
        Ok(GroupAnalysis {
            base_monomials: base_terms.len() as u64,
            base_terms,
            groups: out_groups,
            node_weight,
        })
    }

    /// Re-analyses only the polynomials listed in `touched` (sorted
    /// indices into `set`), reusing this analysis's groups and base terms
    /// for every other polynomial — the incremental sibling of
    /// [`analyze`](Self::analyze) behind `CobraSession::apply_delta`.
    ///
    /// Sound because groups never span polynomials: a group is keyed by
    /// `(polynomial, context, exponent)` and its `term_indices` reference
    /// that polynomial's canonical term list alone, so a delta to one
    /// polynomial cannot perturb another's groups. Only the touched
    /// polynomials pay the context-hashing cost; the merged result —
    /// canonical group order, base-term order, node weights — is
    /// **identical** to a fresh `analyze(set, tree)`.
    ///
    /// # Errors
    /// [`CoreError::MonomialSpansTree`] if a touched monomial now mentions
    /// two distinct leaves of the tree.
    pub fn reanalyze_polys<C: Coeff>(
        &self,
        set: &PolySet<C>,
        tree: &AbstractionTree,
        touched: &[usize],
    ) -> Result<GroupAnalysis> {
        let mut is_touched = vec![false; set.len()];
        for &p in touched {
            is_touched[p] = true;
        }
        // Keep everything belonging to untouched polynomials.
        let mut base_terms: Vec<(u32, u32)> = self
            .base_terms
            .iter()
            .filter(|&&(p, _)| !is_touched[p as usize])
            .copied()
            .collect();
        let mut out_groups: Vec<Group> = self
            .groups
            .iter()
            .filter(|g| !is_touched[g.poly as usize])
            .cloned()
            .collect();

        // Re-classify the touched polynomials exactly like `analyze`.
        let mut groups: FxHashMap<(u32, Monomial, u32), Vec<(u32, u32)>> = FxHashMap::default();
        for &poly_idx in touched {
            let label = set.label(poly_idx).expect("touched index in range");
            let poly = set.poly(poly_idx).expect("touched index in range");
            for (term_idx, (monomial, _)) in poly.iter().enumerate() {
                let mut tree_var = None;
                for v in monomial.vars() {
                    if let Some(leaf) = tree.leaf_of_var(v) {
                        if let Some((prev_var, _)) = tree_var {
                            let pv: cobra_provenance::Var = prev_var;
                            return Err(CoreError::MonomialSpansTree {
                                poly: label.to_owned(),
                                vars: (format!("Var({})", pv.0), format!("Var({})", v.0)),
                            });
                        }
                        tree_var = Some((v, leaf));
                    }
                }
                match tree_var {
                    None => base_terms.push((poly_idx as u32, term_idx as u32)),
                    Some((v, leaf)) => {
                        let (context, exp) = monomial.without(v);
                        let pos = tree.leaf_range(leaf).start as u32;
                        groups
                            .entry((poly_idx as u32, context, exp))
                            .or_default()
                            .push((pos, term_idx as u32));
                    }
                }
            }
        }
        for ((poly, context, exponent), mut members) in groups {
            members.sort_unstable_by_key(|&(pos, _)| pos);
            debug_assert!(members.windows(2).all(|w| w[0].0 != w[1].0));
            out_groups.push(Group {
                poly,
                exponent,
                context,
                leaf_positions: members.iter().map(|&(pos, _)| pos).collect(),
                term_indices: members.iter().map(|&(_, idx)| idx).collect(),
            });
        }
        // Restore the global canonical orders `analyze` produces.
        base_terms.sort_unstable();
        out_groups.sort_unstable_by(|a, b| {
            (a.poly, a.exponent, &a.leaf_positions, &a.context)
                .cmp(&(b.poly, b.exponent, &b.leaf_positions, &b.context))
        });

        let node_weight = compute_node_weights(tree, &out_groups);
        Ok(GroupAnalysis {
            base_monomials: base_terms.len() as u64,
            base_terms,
            groups: out_groups,
            node_weight,
        })
    }

    /// The exact compressed size for a cut, via the additive formula.
    pub fn compressed_size(&self, cut_nodes: &[NodeId]) -> u64 {
        self.base_monomials
            + cut_nodes
                .iter()
                .map(|&n| self.node_weight[n.index()])
                .sum::<u64>()
    }

    /// Total monomials in the analyzed set (base + one per group member).
    pub fn total_monomials(&self) -> u64 {
        self.base_monomials
            + self
                .groups
                .iter()
                .map(|g| g.leaf_positions.len() as u64)
                .sum::<u64>()
    }

    /// Number of groups.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }
}

/// For each node, the number of groups intersecting its subtree's leaves.
///
/// Each group contributes 1 to every ancestor of each of its leaves,
/// deduplicated per group with a stamp array — `O(Σ leaves·depth)` total.
fn compute_node_weights(tree: &AbstractionTree, groups: &[Group]) -> Vec<u64> {
    let mut weight = vec![0u64; tree.num_nodes()];
    let mut stamp = vec![u32::MAX; tree.num_nodes()];
    // leaf position → leaf NodeId
    let leaf_nodes = tree.leaf_nodes_under(tree.root()).to_vec();
    for (gi, group) in groups.iter().enumerate() {
        let gi = gi as u32;
        for &pos in &group.leaf_positions {
            let mut cur = Some(leaf_nodes[pos as usize]);
            while let Some(node) = cur {
                if stamp[node.index()] == gi {
                    break; // this ancestor already counted for the group
                }
                stamp[node.index()] = gi;
                weight[node.index()] += 1;
                cur = tree.parent(node);
            }
        }
    }
    weight
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::paper_plans_tree;
    use cobra_provenance::{Polynomial, VarRegistry};
    use cobra_util::Rat;

    fn rat(s: &str) -> Rat {
        Rat::parse(s).unwrap()
    }

    /// Example 2's P1/P2 from the paper.
    fn paper_setup() -> (VarRegistry, AbstractionTree, PolySet<Rat>) {
        let mut reg = VarRegistry::new();
        let tree = paper_plans_tree(&mut reg);
        let src = "\
P1 = 208.8*p1*m1 + 240*p1*m3 + 127.4*f1*m1 + 114.45*f1*m3 \
   + 75.9*y1*m1 + 72.5*y1*m3 + 42*v*m1 + 24.2*v*m3
P2 = 77.9*b1*m1 + 80.5*b1*m3 + 52.2*e*m1 + 56.5*e*m3 + 69.7*b2*m1 + 100.65*b2*m3";
        let set = cobra_provenance::parse_polyset(src, &mut reg).unwrap();
        (reg, tree, set)
    }

    use crate::tree::AbstractionTree;

    #[test]
    fn paper_example_groups() {
        let (_, tree, set) = paper_setup();
        let a = GroupAnalysis::analyze(&set, &tree).unwrap();
        assert_eq!(a.base_monomials, 0);
        assert_eq!(a.total_monomials(), 14);
        // groups: (P1, m1), (P1, m3), (P2, m1), (P2, m3)
        assert_eq!(a.num_groups(), 4);
        for g in &a.groups {
            let expected = if g.poly == 0 { 4 } else { 3 };
            assert_eq!(g.leaf_positions.len(), expected);
            assert_eq!(g.exponent, 1);
        }
    }

    #[test]
    fn paper_example_weights_match_cut_sizes() {
        let (_, tree, set) = paper_setup();
        let a = GroupAnalysis::analyze(&set, &tree).unwrap();
        let root = tree.root();
        // S5 = {Plans}: every group touches the root → size 4 (paper: P1
        // compresses to 2 monomials, P2 to 2).
        assert_eq!(a.compressed_size(&[root]), 4);
        // S1 = {Business, Special, Standard}: P1 touches Standard (p1) and
        // Special (f1,y1,v) in both months → 4; P2 touches Business in both
        // months → 2; total 6.
        let s1: Vec<NodeId> = ["Business", "Special", "Standard"]
            .iter()
            .map(|n| tree.node_by_name(n).unwrap())
            .collect();
        assert_eq!(a.compressed_size(&s1), 6);
        // Leaf cut: no compression → 14.
        let leaves: Vec<NodeId> = tree
            .node_ids()
            .filter(|&id| tree.is_leaf(id))
            .collect();
        assert_eq!(a.compressed_size(&leaves), 14);
    }

    #[test]
    fn base_monomials_counted() {
        let mut reg = VarRegistry::new();
        let tree = AbstractionTree::parse("T(a,b)", &mut reg).unwrap();
        let m = reg.var("m");
        let a_var = reg.lookup("a").unwrap();
        let set = PolySet::from_entries([(
            "P".to_owned(),
            Polynomial::from_terms([
                (Monomial::var(m), rat("1")),              // base
                (Monomial::one(), rat("2")),               // base (constant)
                (Monomial::from_pairs([(a_var, 1)]), rat("3")), // group
            ]),
        )]);
        let analysis = GroupAnalysis::analyze(&set, &tree).unwrap();
        assert_eq!(analysis.base_monomials, 2);
        assert_eq!(analysis.num_groups(), 1);
        assert_eq!(analysis.compressed_size(&[tree.root()]), 3);
    }

    #[test]
    fn exponents_separate_groups() {
        let mut reg = VarRegistry::new();
        let tree = AbstractionTree::parse("T(a,b)", &mut reg).unwrap();
        let a_var = reg.lookup("a").unwrap();
        let b_var = reg.lookup("b").unwrap();
        // a² and b do NOT merge under {T}: exponents differ.
        let set = PolySet::from_entries([(
            "P".to_owned(),
            Polynomial::from_terms([
                (Monomial::from_pairs([(a_var, 2)]), rat("1")),
                (Monomial::from_pairs([(b_var, 1)]), rat("1")),
            ]),
        )]);
        let analysis = GroupAnalysis::analyze(&set, &tree).unwrap();
        assert_eq!(analysis.num_groups(), 2);
        assert_eq!(analysis.compressed_size(&[tree.root()]), 2);
    }

    #[test]
    fn polynomials_do_not_merge_across_labels() {
        let mut reg = VarRegistry::new();
        let tree = AbstractionTree::parse("T(a,b)", &mut reg).unwrap();
        let a_var = reg.lookup("a").unwrap();
        let b_var = reg.lookup("b").unwrap();
        let p = Polynomial::from_terms([(Monomial::var(a_var), rat("1"))]);
        let q = Polynomial::from_terms([(Monomial::var(b_var), rat("1"))]);
        let set = PolySet::from_entries([("P".to_owned(), p), ("Q".to_owned(), q)]);
        let analysis = GroupAnalysis::analyze(&set, &tree).unwrap();
        // two groups: same context (1) and exponent but different polys
        assert_eq!(analysis.num_groups(), 2);
        assert_eq!(analysis.compressed_size(&[tree.root()]), 2);
    }

    #[test]
    fn spanning_monomial_rejected() {
        let mut reg = VarRegistry::new();
        let tree = AbstractionTree::parse("T(a,b)", &mut reg).unwrap();
        let a_var = reg.lookup("a").unwrap();
        let b_var = reg.lookup("b").unwrap();
        let set = PolySet::from_entries([(
            "P".to_owned(),
            Polynomial::from_terms([(
                Monomial::from_pairs([(a_var, 1), (b_var, 1)]),
                rat("1"),
            )]),
        )]);
        assert!(matches!(
            GroupAnalysis::analyze(&set, &tree),
            Err(CoreError::MonomialSpansTree { .. })
        ));
    }

    #[test]
    fn reanalysis_matches_fresh_analysis_after_deltas() {
        use cobra_provenance::PolyDelta;
        let (mut reg, tree, mut set) = paper_setup();
        let before = GroupAnalysis::analyze(&set, &tree).unwrap();
        // Structural churn in P1 (drop a member, add one with a new
        // context) plus a new base monomial in P2.
        let p1 = reg.lookup("p1").unwrap();
        let m1 = reg.lookup("m1").unwrap();
        let b1 = reg.lookup("b1").unwrap();
        let m9 = reg.var("m9");
        let k = reg.var("k");
        let mut delta = PolyDelta::new();
        delta.remove(0, Monomial::from_pairs([(p1, 1), (m1, 1)]));
        delta.add(0, Monomial::from_pairs([(b1, 1), (m9, 1)]), rat("5"));
        delta.add(1, Monomial::var(k), rat("2"));
        let report = set.apply_delta(&delta).unwrap();
        assert_eq!(report.structural_polys, vec![0, 1]);

        let incremental = before
            .reanalyze_polys(&set, &tree, &report.touched())
            .unwrap();
        let fresh = GroupAnalysis::analyze(&set, &tree).unwrap();
        assert_eq!(incremental.base_terms, fresh.base_terms);
        assert_eq!(incremental.groups, fresh.groups);
        assert_eq!(incremental.node_weight, fresh.node_weight);
        assert_eq!(incremental.base_monomials, fresh.base_monomials);
    }

    #[test]
    fn reanalysis_reports_spanning_monomials() {
        use cobra_provenance::PolyDelta;
        let (reg, tree, mut set) = paper_setup();
        let analysis = GroupAnalysis::analyze(&set, &tree).unwrap();
        let p1 = reg.lookup("p1").unwrap();
        let b1 = reg.lookup("b1").unwrap();
        let mut delta = PolyDelta::new();
        delta.add(0, Monomial::from_pairs([(p1, 1), (b1, 1)]), rat("1"));
        let report = set.apply_delta(&delta).unwrap();
        assert!(matches!(
            analysis.reanalyze_polys(&set, &tree, &report.touched()),
            Err(CoreError::MonomialSpansTree { .. })
        ));
    }

    #[test]
    fn weights_are_monotone_up_the_tree() {
        let (_, tree, set) = paper_setup();
        let a = GroupAnalysis::analyze(&set, &tree).unwrap();
        for id in tree.node_ids() {
            if let Some(parent) = tree.parent(id) {
                assert!(
                    a.node_weight[parent.index()] >= a.node_weight[id.index()],
                    "w(parent) must dominate w(child)"
                );
            }
            let child_sum: u64 = tree
                .children(id)
                .iter()
                .map(|c| a.node_weight[c.index()])
                .sum();
            if !tree.is_leaf(id) {
                assert!(a.node_weight[id.index()] <= child_sum);
            }
        }
    }
}
