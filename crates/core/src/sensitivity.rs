//! Sensitivity analysis — an extension for hypothetical reasoning.
//!
//! Before choosing which hypotheticals to explore (or which variables an
//! abstraction may safely group), an analyst can ask *which parameters
//! move the results most*. The sensitivity of result tuple `P` to
//! variable `x` at the current valuation is `∂P/∂x` evaluated there; the
//! aggregate sensitivity of `x` sums |∂P/∂x| over all result tuples.
//!
//! Variables with near-equal sensitivities inside a subtree are natural
//! grouping candidates — grouping them loses little scenario resolution —
//! so the report doubles as guidance for building abstraction trees (the
//! paper leaves tree construction to the user's domain knowledge).

use crate::folds::{MergeFold, SweepFold};
use crate::scenario::{fold_program_sweep_par, FoldItem};
use crate::scenario_set::ScenarioSet;
use cobra_provenance::{BatchEvaluator, Coeff, EvalProgram, PolySet, Valuation, Var, VarRegistry};
use cobra_util::{Rat, Table};

/// Sensitivity of every variable, sorted descending.
#[derive(Clone, Debug)]
pub struct SensitivityReport {
    /// `(variable, Σ over result tuples of |∂P/∂x| at the valuation)`,
    /// sorted by descending sensitivity.
    pub ranking: Vec<(Var, Rat)>,
}

impl SensitivityReport {
    /// Computes the report at `val` (must be total — give it a default).
    pub fn compute(set: &PolySet<Rat>, val: &Valuation<Rat>) -> SensitivityReport {
        let mut ranking: Vec<(Var, Rat)> = set
            .distinct_vars()
            .into_iter()
            .map(|v| {
                let total: Rat = set
                    .iter()
                    .map(|(_, p)| {
                        p.derivative(v)
                            .eval(val)
                            .expect("sensitivity requires a total valuation")
                            .abs()
                    })
                    .sum();
                (v, total)
            })
            .collect();
        ranking.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        SensitivityReport { ranking }
    }

    /// [`compute`](Self::compute) routed through the compiled evaluation
    /// engine: all `|vars| × |polys|` derivative polynomials are lowered
    /// into **one** [`EvalProgram`] and evaluated against a single scenario
    /// row. Produces exactly the same ranking as `compute` (both are exact
    /// rational arithmetic).
    pub fn compute_batched(set: &PolySet<Rat>, val: &Valuation<Rat>) -> SensitivityReport {
        let mut vars: Vec<Var> = set.distinct_vars().into_iter().collect();
        vars.sort_unstable();
        let np = set.len();
        // Program layout: derivative polys grouped per variable, so the
        // output row decomposes into |vars| consecutive chunks of np.
        let derivatives = PolySet::from_entries(vars.iter().flat_map(|&v| {
            set.iter()
                .map(move |(l, p)| (l.to_owned(), p.derivative(v)))
        }));
        let prog = EvalProgram::compile(&derivatives);
        let row = prog
            .bind(val)
            .expect("sensitivity requires a total valuation");
        let out = prog.eval_scenario(&row);
        let mut ranking: Vec<(Var, Rat)> = vars
            .into_iter()
            .enumerate()
            .map(|(i, v)| (v, out[i * np..(i + 1) * np].iter().map(|r| r.abs()).sum()))
            .collect();
        ranking.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        SensitivityReport { ranking }
    }

    /// Finite-difference sensitivity through a **batched scenario sweep**:
    /// a [`ScenarioSet::perturb_each`] family (one scenario per variable,
    /// its value bumped by `delta`) streamed through the compiled engine
    /// and ranked by `Σ |P(v + δ) − P(v)| / δ`. For multilinear provenance
    /// (every exponent 1, the common case for SPJ provenance) this equals
    /// the derivative ranking exactly.
    ///
    /// # Panics
    /// Panics if `delta` is zero or `val` is not total over `set`.
    pub fn compute_sweep(
        set: &PolySet<Rat>,
        val: &Valuation<Rat>,
        delta: Rat,
    ) -> SensitivityReport {
        assert!(!delta.is_zero(), "delta must be nonzero");
        let evaluator = BatchEvaluator::compile(set);
        let vars: Vec<Var> = evaluator.program().vars().to_vec();
        let family = ScenarioSet::perturb_each(vars.iter().copied(), delta);
        let impacts = impacts_against(&evaluator, val, &family);
        let mut ranking: Vec<(Var, Rat)> = vars
            .into_iter()
            .zip(impacts)
            .map(|(v, impact)| (v, impact / delta.abs()))
            .collect();
        // Variables absent from the program (possible when `set` came from
        // a wider registry) have zero sensitivity and are simply omitted,
        // matching `compute` which only ranks occurring variables.
        ranking.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        SensitivityReport { ranking }
    }

    /// The `n` most sensitive variables.
    pub fn top(&self, n: usize) -> &[(Var, Rat)] {
        &self.ranking[..n.min(self.ranking.len())]
    }

    /// Sensitivity of one variable (zero if absent).
    pub fn of(&self, v: Var) -> Rat {
        self.ranking
            .iter()
            .find(|(w, _)| *w == v)
            .map(|(_, s)| *s)
            .unwrap_or(Rat::ZERO)
    }

    /// Renders as a named table.
    pub fn to_table(&self, reg: &VarRegistry) -> Table {
        let mut t = Table::new(["variable", "sensitivity"]).numeric();
        for (v, s) in &self.ranking {
            t.row([reg.name(*v).to_owned(), format!("{:.4}", s.to_f64())]);
        }
        t
    }
}

/// The aggregate impact of every scenario in a family: `Σ over result
/// tuples of |P(scenario) − P(base)|`, in the set's enumeration order.
/// Accepts anything convertible to a [`ScenarioSet`] — grids and
/// perturbation families stream through the compiled engine without
/// materializing per-scenario valuations, so ranking a 10⁵-point grid by
/// how much it moves the results is O(axes) extra memory.
///
/// # Panics
/// Panics if `val` is not total over `set` (give it a default).
pub fn scenario_impacts(
    set: &PolySet<Rat>,
    val: &Valuation<Rat>,
    scenarios: impl Into<ScenarioSet>,
) -> Vec<Rat> {
    let family = scenarios.into();
    let evaluator = BatchEvaluator::compile(set);
    impacts_against(&evaluator, val, &family)
}

/// The per-scenario aggregate impact as a [`MergeFold`]: workers append
/// their own spans' impacts in enumeration order and the engine merges
/// the partial vectors in ascending span order, so the concatenation is
/// the full family's impact vector — an *ordered* (append) monoid, lawful
/// because the parallel engines guarantee that merge order.
struct ImpactsFold {
    base: Vec<Rat>,
    impacts: Vec<Rat>,
}

impl SweepFold for ImpactsFold {
    type Output = Vec<Rat>;

    fn accept<C: Coeff>(&mut self, item: FoldItem<'_, C>) {
        debug_assert_eq!(item.full.len(), self.base.len(), "baseline width");
        let mut impact = Rat::ZERO;
        for (bumped, b) in item.full.iter().zip(&self.base) {
            // Sensitivity is exact by contract, so this fold keeps `Rat`
            // arithmetic. `accept` is generic over the stream's
            // coefficient type, but [`fold_program_sweep_par`] only ever
            // produces `Rat` streams (its signature takes a
            // `BatchEvaluator<Rat>`), so the downcast always succeeds.
            let bumped = (bumped as &dyn std::any::Any)
                .downcast_ref::<Rat>()
                .expect("ImpactsFold aggregates the exact Rat stream");
            impact += (*bumped - *b).abs();
        }
        self.impacts.push(impact);
    }

    fn finish(self) -> Vec<Rat> {
        self.impacts
    }
}

impl MergeFold for ImpactsFold {
    fn init(&self) -> ImpactsFold {
        ImpactsFold {
            base: self.base.clone(),
            impacts: Vec::new(),
        }
    }

    fn merge(&mut self, later: ImpactsFold) {
        self.impacts.extend(later.impacts);
    }
}

/// Impact computation against an already-compiled engine, rebuilt on the
/// **parallel** streaming fold engine ([`fold_program_sweep_par`]): each
/// scenario folds to one aggregate `Rat`, so beyond the returned vector
/// the sweep runs in O(workers × block) transient memory at any family
/// cardinality — and the bind/evaluate work scales with cores.
fn impacts_against(
    evaluator: &BatchEvaluator<Rat>,
    val: &Valuation<Rat>,
    family: &ScenarioSet,
) -> Vec<Rat> {
    let prog = evaluator.program();
    let base_row = prog
        .bind(val)
        .expect("sensitivity requires a total valuation");
    let base = prog.eval_scenario(&base_row);
    fold_program_sweep_par(
        evaluator,
        val,
        family,
        ImpactsFold {
            base,
            impacts: Vec::with_capacity(family.len()),
        },
    )
    .finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobra_provenance::parse_polyset;

    fn rat(s: &str) -> Rat {
        Rat::parse(s).unwrap()
    }

    #[test]
    fn ranks_paper_example_variables() {
        let mut reg = VarRegistry::new();
        let set = parse_polyset(
            "P1 = 208.8*p1*m1 + 240*p1*m3 + 42*v*m1 + 24.2*v*m3",
            &mut reg,
        )
        .unwrap();
        let ones = Valuation::with_default(Rat::ONE);
        let report = SensitivityReport::compute(&set, &ones);
        let p1 = reg.lookup("p1").unwrap();
        let v = reg.lookup("v").unwrap();
        let m1 = reg.lookup("m1").unwrap();
        // ∂P1/∂p1 = 208.8·m1 + 240·m3 → 448.8 at all-ones
        assert_eq!(report.of(p1), rat("448.8"));
        assert_eq!(report.of(v), rat("66.2"));
        // ∂P1/∂m1 = 208.8·p1 + 42·v → 250.8
        assert_eq!(report.of(m1), rat("250.8"));
        // ranking: p1 > m3 (264.2) > m1 > v
        assert_eq!(report.ranking[0].0, p1);
        assert_eq!(report.top(2).len(), 2);
        assert_eq!(report.of(Var(999)), Rat::ZERO);
    }

    #[test]
    fn valuation_shifts_the_ranking() {
        let mut reg = VarRegistry::new();
        let set = parse_polyset("P = 10*a*x + 1*b*x", &mut reg).unwrap();
        let a = reg.lookup("a").unwrap();
        let b = reg.lookup("b").unwrap();
        let x = reg.lookup("x").unwrap();
        // at x=1: sens(a)=10, sens(b)=1; at x=0 both vanish
        let at_one = SensitivityReport::compute(&set, &Valuation::with_default(Rat::ONE));
        assert!(at_one.of(a) > at_one.of(b));
        let mut zero_x = Valuation::with_default(Rat::ONE);
        zero_x.set(x, Rat::ZERO);
        let at_zero = SensitivityReport::compute(&set, &zero_x);
        assert_eq!(at_zero.of(a), Rat::ZERO);
        assert_eq!(at_zero.of(b), Rat::ZERO);
        // sens(x) at ones = 11
        assert_eq!(at_one.of(x), Rat::int(11));
    }

    #[test]
    fn batched_paths_match_scalar_compute() {
        let mut reg = VarRegistry::new();
        let set = parse_polyset(
            "P1 = 208.8*p1*m1 + 240*p1*m3 + 42*v*m1 + 24.2*v*m3\nP2 = 3*p1*m1 + 7*v*m3",
            &mut reg,
        )
        .unwrap();
        let val = Valuation::with_default(Rat::ONE)
            .bind(reg.lookup("m1").unwrap(), rat("0.5"))
            .bind(reg.lookup("p1").unwrap(), rat("2"));
        let scalar = SensitivityReport::compute(&set, &val);
        let batched = SensitivityReport::compute_batched(&set, &val);
        assert_eq!(scalar.ranking, batched.ranking);
        // multilinear provenance: the finite-difference sweep is exact too,
        // at any delta
        for delta in ["1", "0.25", "-2"] {
            let sweep = SensitivityReport::compute_sweep(&set, &val, rat(delta));
            assert_eq!(scalar.ranking, sweep.ranking, "delta {delta}");
        }
    }

    #[test]
    fn scenario_impacts_rank_grid_points() {
        let mut reg = VarRegistry::new();
        let set = parse_polyset("P = 10*a + 1*b", &mut reg).unwrap();
        let a = reg.lookup("a").unwrap();
        let b = reg.lookup("b").unwrap();
        let ones = Valuation::with_default(Rat::ONE);
        let grid = crate::scenario_set::ScenarioSet::grid()
            .axis([a], [rat("1"), rat("2")])
            .axis([b], [rat("1"), rat("3")])
            .build()
            .unwrap();
        let impacts = scenario_impacts(&set, &ones, &grid);
        // |Δ| per grid point: (a,b) ∈ {(1,1),(1,3),(2,1),(2,3)}
        assert_eq!(impacts, vec![rat("0"), rat("2"), rat("10"), rat("12")]);
        // explicit lists work through the same surface
        let flat = grid.materialize(&ones);
        assert_eq!(scenario_impacts(&set, &ones, &flat[..]), impacts);
    }

    #[test]
    fn table_renders_names() {
        let mut reg = VarRegistry::new();
        let set = parse_polyset("P = 2*alpha", &mut reg).unwrap();
        let report = SensitivityReport::compute(&set, &Valuation::with_default(Rat::ONE));
        let t = report.to_table(&reg);
        assert!(t.to_string().contains("alpha"));
    }
}
