//! # cobra-server
//!
//! COBRA-as-a-service: a persistent sweep server over
//! [`cobra_core::CobraSession`]s.
//!
//! The server speaks length-prefixed JSON frames
//! ([`cobra_util::framed`] + [`json`]) over plain TCP — `std`-only, so
//! the offline build needs no new dependencies. It holds a
//! [`store::SessionStore`] of prepared sessions keyed by dataset id;
//! each session caches its compiled full-side programs, its Pareto
//! `CutFrontier`, and warm per-bound compressed engines, so repeated
//! `select_bound` / `assign` / `sweep_fold_f64` requests skip the
//! compile pipeline entirely.
//!
//! Two tiers back the store: the in-memory tier of live per-session
//! worker threads, and — when the server is given a store directory — a
//! disk tier of [`cobra_provenance::persist`] artifacts. A `prepare`
//! with `persist:true` snapshots the session
//! ([`cobra_core::snapshot_session`]); a later `prepare` (or any
//! request) naming that id re-loads it by mmap, zero-copy, through
//! [`cobra_core::restore_session`]. The in-memory tier is optionally
//! capped ([`ServerConfig::max_sessions`]): past the cap the
//! least-recently-used session is retired to the disk tier (and keeps
//! answering from there), or refused with a typed `store_full` error
//! when no disk tier exists. A graceful `shutdown` drains the whole
//! in-memory tier to disk first, so live sessions survive a restart
//! without each having asked for `persist`.
//!
//! `prepare` accepts a `dag:true` option arming **algebraic
//! compression** ([`cobra_core::CobraSession::compile_dag`]): engines
//! factor into shared-subterm DAG programs as they compile, reducing
//! multiply counts without changing any result bit. `stats` reports the
//! armed flag and built slot counts.
//!
//! Live sessions accept **incremental provenance updates**: an
//! `apply_delta` request patches the session's polynomials in place
//! through [`cobra_core::CobraSession::apply_delta`] — compiled engines
//! are spliced, plans replanned incrementally — so the session keeps
//! answering, bit-identical to a full rebuild, without re-preparing.
//!
//! Concurrent deadline-free `sweep_fold_f64` requests against the same
//! session are **coalesced**: the worker drains its queue and fuses
//! them into one batched sweep over the deduplicated union grid
//! (bit-identical to serial execution — see [`store`]). Requests may
//! carry a `deadline_ms`; sweeps that exceed it return a typed partial
//! over the completed prefix. A panic inside a request is caught and
//! returned as an error reply; the session stays live.
//!
//! ```no_run
//! use cobra_server::{serve, ServerConfig};
//!
//! let server = serve(ServerConfig::default()).unwrap();
//! println!("listening on {}", server.addr());
//! server.join(); // serve until a shutdown request
//! ```

#![warn(missing_docs)]

pub mod json;
pub mod proto;
pub mod store;

use crate::json::Json;
use crate::proto::{err_reply, ok_reply, parse_request, Request};
use crate::store::{Job, SessionStore};
use cobra_util::framed::{read_frame, write_frame, DEFAULT_MAX_FRAME};
use cobra_util::KernelTarget;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Store directory enabling the disk tier (persist / re-load).
    pub store_dir: Option<PathBuf>,
    /// Batch-kernel target every session worker runs under
    /// ([`cobra_util::kernel`]): `Auto` resolves per CPU at runtime,
    /// `Scalar`/`Avx2`/`Avx2Fma` force a kernel (unsupported targets
    /// fall back to scalar). Reported by `stats` replies.
    pub kernel: KernelTarget,
    /// Cap on live in-memory sessions (`None` = unbounded). Past the
    /// cap the least-recently-used session is retired: persisted into
    /// `store_dir` (whence it transparently re-loads on its next
    /// request), or — with no `store_dir` — the new session is refused
    /// with a typed `store_full` error.
    pub max_sessions: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            store_dir: None,
            kernel: KernelTarget::default(),
            max_sessions: None,
        }
    }
}

/// A running server: the bound address plus handles to stop it.
pub struct Server {
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    stop: Arc<AtomicBool>,
}

impl Server {
    /// The bound address (with the resolved port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the accept loop exits (a `shutdown` request, or
    /// [`Server::shutdown`] from another thread via a cloned handle).
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }

    /// Stops accepting connections and waits for the accept loop.
    ///
    /// In-flight connections finish their current request; session
    /// workers retire once the store is dropped.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept() call with a no-op connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

/// Starts the server and returns once the listener is bound.
pub fn serve(config: ServerConfig) -> io::Result<Server> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let store = Arc::new(SessionStore::with_limits(
        config.store_dir,
        config.kernel,
        config.max_sessions,
    ));
    let stop = Arc::new(AtomicBool::new(false));
    let accept_stop = stop.clone();
    let accept = std::thread::Builder::new()
        .name("cobra-accept".to_owned())
        .spawn(move || {
            for stream in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let stream = match stream {
                    Ok(s) => s,
                    Err(_) => continue,
                };
                let store = store.clone();
                let stop = accept_stop.clone();
                let _ = std::thread::Builder::new()
                    .name("cobra-conn".to_owned())
                    .spawn(move || serve_connection(stream, &store, &stop, addr));
            }
        })?;
    Ok(Server {
        addr,
        accept: Some(accept),
        stop,
    })
}

fn serve_connection(
    mut stream: TcpStream,
    store: &SessionStore,
    stop: &Arc<AtomicBool>,
    addr: SocketAddr,
) {
    loop {
        let frame = match read_frame(&mut stream, DEFAULT_MAX_FRAME) {
            Ok(Some(bytes)) => bytes,
            Ok(None) | Err(_) => return, // clean EOF or broken pipe
        };
        let (reply, shutdown) = handle_frame(&frame, store);
        let sent = write_frame(&mut stream, reply.as_bytes()).is_ok();
        if shutdown {
            // The acknowledgement goes on the wire *before* the listener
            // is unblocked: a `cobra serve` process joins only the accept
            // loop and exits when it returns, so replying first is what
            // keeps the ack ahead of process teardown.
            stop.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(addr);
            return;
        }
        if !sent || stop.load(Ordering::SeqCst) {
            return;
        }
    }
}

/// Answers one frame; the boolean is `true` for a `shutdown` request,
/// which the connection loop acts on only after the reply is written.
fn handle_frame(frame: &[u8], store: &SessionStore) -> (String, bool) {
    let text = match std::str::from_utf8(frame) {
        Ok(t) => t,
        Err(_) => {
            return (
                err_reply(&Json::Null, "bad_request", "frame is not UTF-8"),
                false,
            )
        }
    };
    let envelope = match parse_request(text) {
        Ok(e) => e,
        Err(msg) => return (err_reply(&Json::Null, "bad_request", &msg), false),
    };
    let id = envelope.id;
    let mut shutdown = false;
    let body = match envelope.request {
        Request::Prepare {
            session,
            polys,
            tree,
            persist,
            dag,
        } => store.prepare(&session, polys.as_deref(), tree.as_deref(), persist, dag),
        Request::Assign { session, scenario } => store.dispatch(&session, |reply| Job::Assign {
            scenario: scenario.clone(),
            reply,
        }),
        Request::SweepFoldF64 {
            session,
            scenarios,
            deadline_ms,
        } => store.dispatch(&session, |reply| Job::Sweep {
            scenarios: scenarios.clone(),
            deadline_ms,
            reply,
        }),
        Request::SelectBound { session, bound } => {
            store.dispatch(&session, |reply| Job::SelectBound { bound, reply })
        }
        Request::ApplyDelta { session, ops } => {
            store.dispatch(&session, |reply| Job::ApplyDelta {
                ops: ops.clone(),
                reply,
            })
        }
        Request::Stats { session } => store.dispatch(&session, |reply| Job::Stats { reply }),
        Request::Panic { session } => store.dispatch(&session, |reply| Job::Panic { reply }),
        Request::Shutdown => {
            shutdown = true;
            // Graceful shutdown drains the in-memory tier to disk (when a
            // store directory is armed), so sessions prepared without
            // `persist` survive a restart.
            let persisted = store.persist_all();
            Ok(vec![
                ("stopping".to_owned(), Json::Bool(true)),
                ("persisted".to_owned(), Json::Num(persisted as f64)),
            ])
        }
    };
    let reply = match body {
        Ok(members) => ok_reply(&id, members),
        Err((kind, message)) => err_reply(&id, &kind, &message),
    };
    (reply, shutdown)
}
