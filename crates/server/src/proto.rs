//! The wire protocol: length-prefixed JSON request/reply frames.
//!
//! Every frame (see [`cobra_util::framed`]) carries one JSON object. A
//! request names an `op`, echoes back whatever `id` it carried, and —
//! except for `prepare` and `shutdown` — addresses a prepared `session`.
//! Exact rationals travel as strings (`"0.8"`, `"4/5"`); `f64` results
//! travel as JSON numbers.
//!
//! | op               | fields                                                    |
//! |------------------|-----------------------------------------------------------|
//! | `prepare`        | `session`, `polys`?, `tree`?, `persist`?, `dag`?           |
//! | `assign`         | `session`, `scenario` (object: var → factor string)        |
//! | `sweep_fold_f64` | `session`, `scenarios` (array of `[var, factor]`), `deadline_ms`? |
//! | `select_bound`   | `session`, `bound`                                         |
//! | `apply_delta`    | `session`, `ops` (array of `{poly, action, term}`)         |
//! | `stats`          | `session`                                                  |
//! | `panic`          | `session` (debug: fault-injection probe)                   |
//! | `shutdown`       | —                                                          |
//!
//! `apply_delta` ops edit a live session's provenance in place: `poly`
//! names a polynomial label, `action` is `add` (alias `insert`), `set`,
//! or `remove` (alias `delete`), and `term` is a `coeff*monomial`
//! product in the text interchange format (for `remove`, the
//! coefficient is ignored — `"p1*m1"` suffices). Term text is parsed
//! against the *session's* registry by the worker, so new variables
//! intern on arrival.
//!
//! Replies are `{"id":…,"ok":true,…}` or
//! `{"id":…,"ok":false,"kind":…,"error":…}`. Budgeted sweeps that hit
//! their deadline return a **typed partial**: `"partial":true` with the
//! exact fold over the completed scenario prefix and the stop reason.

use crate::json::Json;
use cobra_util::Rat;

/// What a wire delta op does to its monomial's coefficient (the
/// text-level mirror of [`cobra_core::DeltaAction`], before coefficients
/// are parsed against the target session's registry).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireDeltaAction {
    /// Add the term's coefficient (tuple insert; wire names `add` /
    /// `insert`).
    Add,
    /// Set the coefficient to the term's value (wire name `set`).
    Set,
    /// Remove the monomial (tuple delete; wire names `remove` /
    /// `delete`).
    Remove,
}

/// One unparsed delta edit from an `apply_delta` request. The `term`
/// text is resolved against the session registry by the session worker,
/// not here — the registry lives with the session.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireDeltaOp {
    /// Label of the target polynomial.
    pub poly: String,
    /// The edit to perform.
    pub action: WireDeltaAction,
    /// `coeff*monomial` product in the text interchange format.
    pub term: String,
}

/// A parsed request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Create (or re-load) a session.
    Prepare {
        /// Session id (`[A-Za-z0-9_-]+`).
        session: String,
        /// Polynomials in the text interchange format; omitted to load a
        /// previously persisted session from the store.
        polys: Option<String>,
        /// Abstraction-tree text (required with `polys`).
        tree: Option<String>,
        /// Persist the prepared session to the store directory.
        persist: bool,
        /// Arm algebraic (DAG) compression: engines factor into
        /// shared-subterm programs as they compile.
        dag: bool,
    },
    /// Evaluate one exact scenario, full vs compressed.
    Assign {
        /// Target session.
        session: String,
        /// Variable-name → factor bindings.
        scenario: Vec<(String, Rat)>,
    },
    /// Fold an `f64` sweep over single-variable perturbation scenarios.
    SweepFoldF64 {
        /// Target session.
        session: String,
        /// `(var, factor)` perturbations, one scenario each.
        scenarios: Vec<(String, Rat)>,
        /// Wall-clock budget; exceeded sweeps return a typed partial.
        deadline_ms: Option<u64>,
    },
    /// Re-select the session's compression for a new size bound.
    SelectBound {
        /// Target session.
        session: String,
        /// Bound on the compressed monomial count.
        bound: u64,
    },
    /// Patch the session's provenance in place (incremental update).
    ApplyDelta {
        /// Target session.
        session: String,
        /// Term-level edits, applied atomically in order.
        ops: Vec<WireDeltaOp>,
    },
    /// Session statistics.
    Stats {
        /// Target session.
        session: String,
    },
    /// Debug: panic inside the session worker (exercises fault isolation).
    Panic {
        /// Target session.
        session: String,
    },
    /// Stop accepting connections.
    Shutdown,
}

/// A request plus the `id` echoed into its reply.
#[derive(Clone, Debug, PartialEq)]
pub struct Envelope {
    /// Client-chosen correlation id (echoed verbatim; `null` if absent).
    pub id: Json,
    /// The request.
    pub request: Request,
}

fn str_field(obj: &Json, key: &str) -> Result<String, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("missing or non-string {key:?}"))
}

fn rat_value(v: &Json, what: &str) -> Result<Rat, String> {
    let text = v
        .as_str()
        .ok_or_else(|| format!("{what}: factors are strings like \"0.8\""))?;
    Rat::parse(text).map_err(|e| format!("{what}: {e}"))
}

/// Parses one request frame.
pub fn parse_request(text: &str) -> Result<Envelope, String> {
    let obj = crate::json::parse(text)?;
    let id = obj.get("id").cloned().unwrap_or(Json::Null);
    let op = str_field(&obj, "op")?;
    let request = match op.as_str() {
        "prepare" => Request::Prepare {
            session: str_field(&obj, "session")?,
            polys: obj.get("polys").and_then(Json::as_str).map(str::to_owned),
            tree: obj.get("tree").and_then(Json::as_str).map(str::to_owned),
            persist: obj
                .get("persist")
                .and_then(Json::as_bool)
                .unwrap_or(false),
            dag: obj.get("dag").and_then(Json::as_bool).unwrap_or(false),
        },
        "assign" => {
            let scenario = match obj.get("scenario") {
                Some(Json::Obj(members)) => members
                    .iter()
                    .map(|(k, v)| Ok((k.clone(), rat_value(v, "scenario")?)))
                    .collect::<Result<Vec<_>, String>>()?,
                _ => return Err("assign requires a \"scenario\" object".into()),
            };
            Request::Assign {
                session: str_field(&obj, "session")?,
                scenario,
            }
        }
        "sweep_fold_f64" => {
            let scenarios = obj
                .get("scenarios")
                .and_then(Json::as_arr)
                .ok_or("sweep_fold_f64 requires a \"scenarios\" array")?
                .iter()
                .map(|pair| {
                    let pair = pair
                        .as_arr()
                        .filter(|p| p.len() == 2)
                        .ok_or("scenarios entries are [var, factor] pairs")?;
                    let var = pair[0]
                        .as_str()
                        .ok_or("scenario variable must be a string")?;
                    Ok((var.to_owned(), rat_value(&pair[1], "scenarios")?))
                })
                .collect::<Result<Vec<_>, String>>()?;
            Request::SweepFoldF64 {
                session: str_field(&obj, "session")?,
                scenarios,
                deadline_ms: obj.get("deadline_ms").and_then(Json::as_u64),
            }
        }
        "select_bound" => Request::SelectBound {
            session: str_field(&obj, "session")?,
            bound: obj
                .get("bound")
                .and_then(Json::as_u64)
                .ok_or("select_bound requires an integer \"bound\"")?,
        },
        "apply_delta" => {
            let ops = obj
                .get("ops")
                .and_then(Json::as_arr)
                .ok_or("apply_delta requires an \"ops\" array")?
                .iter()
                .map(|op| {
                    let action = match str_field(op, "action")?.as_str() {
                        "add" | "insert" => WireDeltaAction::Add,
                        "set" => WireDeltaAction::Set,
                        "remove" | "delete" => WireDeltaAction::Remove,
                        other => {
                            return Err(format!(
                                "delta action must be add|set|remove (or insert|delete), got {other:?}"
                            ))
                        }
                    };
                    Ok(WireDeltaOp {
                        poly: str_field(op, "poly")?,
                        action,
                        term: str_field(op, "term")?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?;
            if ops.is_empty() {
                return Err("apply_delta requires at least one op".into());
            }
            Request::ApplyDelta {
                session: str_field(&obj, "session")?,
                ops,
            }
        }
        "stats" => Request::Stats {
            session: str_field(&obj, "session")?,
        },
        "panic" => Request::Panic {
            session: str_field(&obj, "session")?,
        },
        "shutdown" => Request::Shutdown,
        other => return Err(format!("unknown op {other:?}")),
    };
    Ok(Envelope { id, request })
}

/// Builds an `ok` reply from payload members (the `id` is prepended).
pub fn ok_reply(id: &Json, members: Vec<(String, Json)>) -> String {
    let mut all = vec![
        ("id".to_owned(), id.clone()),
        ("ok".to_owned(), Json::Bool(true)),
    ];
    all.extend(members);
    Json::Obj(all).to_string()
}

/// Builds an error reply with a machine-readable `kind`.
pub fn err_reply(id: &Json, kind: &str, message: &str) -> String {
    Json::Obj(vec![
        ("id".to_owned(), id.clone()),
        ("ok".to_owned(), Json::Bool(false)),
        ("kind".to_owned(), Json::Str(kind.to_owned())),
        ("error".to_owned(), Json::Str(message.to_owned())),
    ])
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_op() {
        let e = parse_request(
            r#"{"id":1,"op":"prepare","session":"t","polys":"P = 2*a","tree":"T(a)","persist":true}"#,
        )
        .unwrap();
        assert_eq!(e.id, Json::Num(1.0));
        assert!(matches!(
            e.request,
            Request::Prepare {
                persist: true,
                dag: false,
                ..
            }
        ));
        let e = parse_request(
            r#"{"op":"prepare","session":"t","polys":"P = 2*a","tree":"T(a)","dag":true}"#,
        )
        .unwrap();
        assert!(matches!(e.request, Request::Prepare { dag: true, .. }));

        let e = parse_request(
            r#"{"op":"assign","session":"t","scenario":{"m3":"0.8","v":"5/4"}}"#,
        )
        .unwrap();
        assert_eq!(e.id, Json::Null);
        match e.request {
            Request::Assign { scenario, .. } => {
                assert_eq!(scenario[0].0, "m3");
                assert_eq!(scenario[0].1, Rat::parse("0.8").unwrap());
                assert_eq!(scenario[1].1, Rat::new(5, 4));
            }
            other => panic!("{other:?}"),
        }

        let e = parse_request(
            r#"{"id":"x","op":"sweep_fold_f64","session":"t","scenarios":[["p1","0.8"],["v","2"]],"deadline_ms":50}"#,
        )
        .unwrap();
        match e.request {
            Request::SweepFoldF64 {
                scenarios,
                deadline_ms,
                ..
            } => {
                assert_eq!(scenarios.len(), 2);
                assert_eq!(deadline_ms, Some(50));
            }
            other => panic!("{other:?}"),
        }

        assert!(matches!(
            parse_request(r#"{"op":"select_bound","session":"t","bound":6}"#)
                .unwrap()
                .request,
            Request::SelectBound { bound: 6, .. }
        ));
        let e = parse_request(
            r#"{"op":"apply_delta","session":"t","ops":[
                {"poly":"P1","action":"set","term":"250*p1*m1"},
                {"poly":"P2","action":"insert","term":"7*b1*m9"},
                {"poly":"P2","action":"delete","term":"e*m1"}]}"#,
        )
        .unwrap();
        match e.request {
            Request::ApplyDelta { ops, .. } => {
                assert_eq!(ops.len(), 3);
                assert_eq!(ops[0].action, WireDeltaAction::Set);
                assert_eq!(ops[0].poly, "P1");
                assert_eq!(ops[0].term, "250*p1*m1");
                assert_eq!(ops[1].action, WireDeltaAction::Add);
                assert_eq!(ops[2].action, WireDeltaAction::Remove);
            }
            other => panic!("{other:?}"),
        }

        assert!(matches!(
            parse_request(r#"{"op":"stats","session":"t"}"#).unwrap().request,
            Request::Stats { .. }
        ));
        assert!(matches!(
            parse_request(r#"{"op":"shutdown"}"#).unwrap().request,
            Request::Shutdown
        ));
    }

    #[test]
    fn rejects_malformed_requests() {
        for bad in [
            "{}",
            r#"{"op":"nope"}"#,
            r#"{"op":"assign","session":"t"}"#,
            r#"{"op":"assign","session":"t","scenario":{"m3":0.8}}"#,
            r#"{"op":"select_bound","session":"t","bound":"six"}"#,
            r#"{"op":"sweep_fold_f64","session":"t","scenarios":[["p1"]]}"#,
            r#"{"op":"apply_delta","session":"t"}"#,
            r#"{"op":"apply_delta","session":"t","ops":[]}"#,
            r#"{"op":"apply_delta","session":"t","ops":[{"poly":"P1","action":"zap","term":"a"}]}"#,
            r#"{"op":"apply_delta","session":"t","ops":[{"poly":"P1","action":"set"}]}"#,
        ] {
            assert!(parse_request(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn reply_builders_emit_valid_json() {
        let ok = ok_reply(&Json::Num(3.0), vec![("n".into(), Json::Num(1.0))]);
        let v = crate::json::parse(&ok).unwrap();
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(v.get("n"), Some(&Json::Num(1.0)));
        let err = err_reply(&Json::Null, "session", "no such session");
        let v = crate::json::parse(&err).unwrap();
        assert_eq!(v.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(v.get("kind").and_then(Json::as_str), Some("session"));
    }
}
