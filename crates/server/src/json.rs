//! A minimal JSON value, parser and writer.
//!
//! The wire protocol is JSON-in-frames, and the build environment is
//! offline, so the server carries its own small implementation instead of
//! a dependency: objects preserve key order, numbers are `f64`, and the
//! parser rejects trailing garbage. Exact rationals never pass through
//! `f64` — the protocol ships them as strings.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always an `f64`; the protocol keeps exact values
    /// in strings).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an exact `u64`, if this is a non-negative
    /// integer small enough for `f64` to hold exactly.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n >= 0.0 && n <= 2f64.powi(53) && n.fract() == 0.0 {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                if n.is_finite() {
                    // Integers print without a fraction; everything else
                    // round-trips through Rust's shortest representation.
                    if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    // JSON has no Infinity/NaN; the protocol strings them.
                    let _ = write!(out, "\"{n}\"");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Compact JSON text (`value.to_string()` serializes).
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON document, rejecting trailing non-whitespace.
///
/// ```
/// use cobra_server::json::{parse, Json};
/// let v = parse(r#"{"op":"stats","id":7}"#).unwrap();
/// assert_eq!(v.get("op").and_then(Json::as_str), Some("stats"));
/// assert_eq!(v.get("id").and_then(Json::as_u64), Some(7));
/// ```
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "non-ASCII \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not needed by the
                            // protocol; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).unwrap();
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let src = r#"{"a":[1,2.5,-3],"b":{"c":"x\n\"y\"","d":true,"e":null}}"#;
        let v = parse(src).unwrap();
        assert_eq!(parse(&v.to_string()).unwrap(), v);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("b").unwrap().get("c").unwrap().as_str(),
            Some("x\n\"y\"")
        );
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\"}", "1 2", "tru", "\"\\q\"", "{\"a\":}"] {
            assert!(parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn u64_accessor_is_exact_integer_only() {
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse("7.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
    }

    #[test]
    fn escapes_control_characters() {
        let v = Json::Str("a\u{1}b".into());
        assert_eq!(v.to_string(), "\"a\\u0001b\"");
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }
}
