//! The tiered session store and per-session workers.
//!
//! Sessions are keyed by a client-chosen dataset id. The in-memory tier
//! is a map of live workers (one thread per session, owning its
//! [`CobraSession`]); the disk tier is a directory of
//! [`cobra_provenance::persist`] artifacts written by `prepare … persist`
//! and re-loaded — zero-copy, by mmap — on the first request that misses
//! the in-memory tier.
//!
//! ## Capacity
//!
//! The in-memory tier is optionally capped
//! ([`SessionStore::with_limits`]): admitting a session past the cap
//! retires the least-recently-used worker, which persists its own
//! session into the disk tier before exiting, so evicted ids keep
//! answering — the next request re-hydrates them by mmap. A capped
//! store *without* a disk tier refuses new sessions with a typed
//! `store_full` error rather than growing without bound.
//!
//! ## Coalescing
//!
//! Each worker drains its queue in batches. Within a batch, maximal runs
//! of *deadline-free* `sweep_fold_f64` jobs are **fused**: their
//! perturbation scenarios are deduplicated into one union grid, the
//! engine sweeps the union once, and every request is answered from its
//! own slice of the shared rows. Per-scenario lane results are
//! independent of batch composition, so a fused reply is bit-identical
//! to a solo one. Jobs with a deadline run solo under their own
//! [`SweepBudget`]; mutating jobs (`select_bound`) form batch
//! boundaries, preserving arrival-order semantics.
//!
//! ## Fault isolation
//!
//! Every job (or fused group) runs under `catch_unwind`: a panic becomes
//! an `{"ok":false,"kind":"panic"}` reply to the affected requests and
//! the worker keeps serving (the session mutates only through its own
//! API, so an unwound job leaves it consistent).

use crate::json::Json;
use crate::proto::{WireDeltaAction, WireDeltaOp};
use cobra_core::{restore_session, snapshot_session, CobraSession, CoreError, PolyDelta,
    ScenarioSet, SweepBudget, SweepOutcome};
use cobra_provenance::parse::parse_poly;
use cobra_provenance::persist::{write_file, PersistError};
use cobra_provenance::{LoadedArtifact, Valuation};
use cobra_util::{kernel, KernelTarget, Rat};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Mutex;
use std::time::Duration;

/// Reply body: `ok` members, or `(kind, message)` for errors.
pub type ReplyBody = Result<Vec<(String, Json)>, (String, String)>;

/// Per-scenario `(full, compressed)` totals from a sweep fold.
type SweepRows = Vec<(f64, f64)>;

/// One queued sweep: its scenarios plus where the reply goes.
type QueuedSweep = (Vec<(String, Rat)>, Sender<ReplyBody>);

/// One queued request for a session worker.
pub enum Job {
    /// Exact scenario evaluation.
    Assign {
        /// Variable-name → factor bindings.
        scenario: Vec<(String, Rat)>,
        /// Reply channel.
        reply: Sender<ReplyBody>,
    },
    /// `f64` perturbation sweep (fused with queue neighbors when
    /// deadline-free).
    Sweep {
        /// `(var, factor)` single-variable perturbations.
        scenarios: Vec<(String, Rat)>,
        /// Wall-clock budget.
        deadline_ms: Option<u64>,
        /// Reply channel.
        reply: Sender<ReplyBody>,
    },
    /// Bound re-selection (batch boundary).
    SelectBound {
        /// New bound.
        bound: u64,
        /// Reply channel.
        reply: Sender<ReplyBody>,
    },
    /// Incremental provenance update (batch boundary, like
    /// `select_bound`: it mutates the session).
    ApplyDelta {
        /// Unparsed term-level edits; the worker resolves labels and
        /// term text against its session.
        ops: Vec<WireDeltaOp>,
        /// Reply channel.
        reply: Sender<ReplyBody>,
    },
    /// Cheap statistics.
    Stats {
        /// Reply channel.
        reply: Sender<ReplyBody>,
    },
    /// Eviction: persist the session to `path` and exit the worker.
    /// Sent only by the store's LRU capacity enforcement; on a persist
    /// failure the worker replies with the error and *keeps serving*.
    Retire {
        /// Artifact path to snapshot the session into.
        path: PathBuf,
        /// Reply channel.
        reply: Sender<ReplyBody>,
    },
    /// Debug: deliberately panic in the worker (fault-isolation probe).
    Panic {
        /// Reply channel.
        reply: Sender<ReplyBody>,
    },
}

struct SessionHandle {
    tx: Sender<Job>,
}

/// The in-memory tier: live workers plus a recency order for LRU
/// eviction (front = least recently used).
#[derive(Default)]
struct LiveTier {
    map: HashMap<String, SessionHandle>,
    recency: Vec<String>,
}

impl LiveTier {
    /// Marks `id` most recently used (no-op if it is not live).
    fn touch(&mut self, id: &str) {
        if let Some(pos) = self.recency.iter().position(|r| r == id) {
            let entry = self.recency.remove(pos);
            self.recency.push(entry);
        }
    }

    fn insert(&mut self, id: String, handle: SessionHandle) {
        self.recency.retain(|r| r != &id);
        self.recency.push(id.clone());
        self.map.insert(id, handle);
    }

    fn remove(&mut self, id: &str) -> Option<SessionHandle> {
        self.recency.retain(|r| r != id);
        self.map.remove(id)
    }

    fn pop_lru(&mut self) -> Option<(String, SessionHandle)> {
        let id = self.recency.first()?.clone();
        let handle = self.remove(&id)?;
        Some((id, handle))
    }
}

/// The tiered session store.
pub struct SessionStore {
    dir: Option<PathBuf>,
    /// Batch-kernel target every session worker runs under (scoped via
    /// [`cobra_util::kernel::with_target`] around the worker loop, since
    /// kernel overrides are thread-local).
    kernel: KernelTarget,
    /// In-memory tier cap; `None` is unbounded. Reaching the cap evicts
    /// the least-recently-used session: persisted to the disk tier when
    /// the store has a directory (whence it transparently re-loads on
    /// the next request), a typed `store_full` error when it does not.
    max_sessions: Option<usize>,
    sessions: Mutex<LiveTier>,
}

fn session_err(e: CoreError) -> (String, String) {
    let kind = match &e {
        CoreError::InfeasibleBound { .. } => "infeasible_bound",
        CoreError::ExactOverflow(_) => "exact_overflow",
        CoreError::Delta(_) => "delta",
        _ => "session",
    };
    (kind.to_owned(), e.to_string())
}

fn valid_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= 64
        && id
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

impl SessionStore {
    /// Creates a store; `dir` enables the disk tier. Session workers
    /// inherit the kernel target in effect on the calling thread
    /// (`COBRA_KERNEL`, or a scoped
    /// [`cobra_util::kernel::with_target`]).
    pub fn new(dir: Option<PathBuf>) -> SessionStore {
        SessionStore::with_kernel(dir, kernel::target())
    }

    /// [`new`](Self::new) with an explicit batch-kernel target for every
    /// session worker this store spawns.
    pub fn with_kernel(dir: Option<PathBuf>, target: KernelTarget) -> SessionStore {
        SessionStore::with_limits(dir, target, None)
    }

    /// [`with_kernel`](Self::with_kernel) plus a cap on live sessions.
    ///
    /// With `max_sessions: Some(n)`, admitting session `n + 1` first
    /// retires the least-recently-used live session: its worker
    /// snapshots the session into the disk tier and exits, and later
    /// requests naming the evicted id re-hydrate it by mmap exactly like
    /// a `persist`ed one. Without a store directory there is nowhere to
    /// evict *to*, so hitting the cap is a typed `store_full` error
    /// instead of unbounded memory growth.
    pub fn with_limits(
        dir: Option<PathBuf>,
        target: KernelTarget,
        max_sessions: Option<usize>,
    ) -> SessionStore {
        SessionStore {
            dir,
            kernel: target,
            max_sessions,
            sessions: Mutex::new(LiveTier::default()),
        }
    }

    fn artifact_path(&self, id: &str) -> Option<PathBuf> {
        self.dir.as_ref().map(|d| d.join(format!("{id}.cobra")))
    }

    /// Prepares a session: builds it from polynomial + tree text, or —
    /// when `polys` is omitted — re-hydrates it from the disk tier.
    /// Returns the reply body.
    pub fn prepare(
        &self,
        id: &str,
        polys: Option<&str>,
        tree: Option<&str>,
        persist: bool,
        dag: bool,
    ) -> ReplyBody {
        if !valid_id(id) {
            return Err((
                "bad_request".into(),
                "session ids are 1-64 chars of [A-Za-z0-9_-]".into(),
            ));
        }
        {
            let mut sessions = self.sessions.lock().unwrap();
            if sessions.map.contains_key(id) {
                sessions.touch(id);
                return Ok(vec![
                    ("session".into(), Json::Str(id.to_owned())),
                    ("source".into(), Json::Str("cached".into())),
                ]);
            }
        }
        let (session, source) = match polys {
            Some(polys) => {
                let tree = tree.ok_or_else(|| {
                    ("bad_request".to_owned(), "prepare with polys requires a tree".to_owned())
                })?;
                let mut s = CobraSession::from_text(polys).map_err(session_err)?;
                s.add_tree_text(tree).map_err(session_err)?;
                s.compress_frontier().map_err(session_err)?;
                if dag {
                    // Armed before any snapshot, so the flag persists and
                    // re-loads armed (the programs rewrite lazily).
                    s.set_dag_mode(true);
                }
                if persist {
                    let path = self.artifact_path(id).ok_or_else(|| {
                        (
                            "bad_request".to_owned(),
                            "persist requested but the server has no store directory".to_owned(),
                        )
                    })?;
                    let bytes = snapshot_session(&s).map_err(session_err)?;
                    write_file(&path, &bytes).map_err(persist_io_err)?;
                }
                (s, "built")
            }
            None => {
                let mut s = self.load_from_disk(id)?;
                if dag {
                    s.set_dag_mode(true);
                }
                (s, "loaded")
            }
        };
        let info = session.info();
        let points = info.frontier_points.unwrap_or(0);
        let dag_armed = info.dag;
        self.insert_worker(id, session)?;
        Ok(vec![
            ("session".into(), Json::Str(id.to_owned())),
            ("source".into(), Json::Str(source.into())),
            ("frontier_points".into(), Json::Num(points as f64)),
            ("persisted".into(), Json::Bool(persist)),
            ("dag".into(), Json::Bool(dag_armed)),
        ])
    }

    /// Adopts an already-built session into the in-memory tier under
    /// `id` — for embedding callers that construct sessions from
    /// in-memory polynomials instead of protocol text. Replaces any
    /// live worker for the id.
    pub fn adopt(&self, id: &str, session: CobraSession) -> Result<(), (String, String)> {
        if !valid_id(id) {
            return Err((
                "bad_request".into(),
                "session ids are 1-64 chars of [A-Za-z0-9_-]".into(),
            ));
        }
        self.insert_worker(id, session)
    }

    fn load_from_disk(&self, id: &str) -> Result<CobraSession, (String, String)> {
        let path = self.artifact_path(id).ok_or_else(|| {
            (
                "unknown_session".to_owned(),
                format!("session {id:?} is not prepared and the server has no store directory"),
            )
        })?;
        if !path.exists() {
            return Err((
                "unknown_session".to_owned(),
                format!("session {id:?} is neither live nor persisted"),
            ));
        }
        let artifact = LoadedArtifact::open(&path).map_err(persist_io_err)?;
        restore_session(&artifact).map_err(session_err)
    }

    /// Spawns a worker for `session` and registers it, first making
    /// room under the live-session cap.
    fn insert_worker(&self, id: &str, session: CobraSession) -> Result<(), (String, String)> {
        self.make_room(id)?;
        let (tx, rx) = channel();
        let target = self.kernel;
        std::thread::Builder::new()
            .name(format!("cobra-session-{id}"))
            .spawn(move || kernel::with_target(target, || worker_loop(session, rx)))
            .expect("spawning a session worker thread");
        self.sessions
            .lock()
            .unwrap()
            .insert(id.to_owned(), SessionHandle { tx });
        Ok(())
    }

    /// Enforces the live-session cap before admitting `incoming`:
    /// synchronously retires least-recently-used workers (each persists
    /// its own session into the disk tier, then exits) until a slot is
    /// free. Without a disk tier eviction would lose a live session, so
    /// a full store refuses the admission with a `store_full` error.
    fn make_room(&self, incoming: &str) -> Result<(), (String, String)> {
        let Some(cap) = self.max_sessions else {
            return Ok(());
        };
        loop {
            let victim = {
                let mut sessions = self.sessions.lock().unwrap();
                if sessions.map.contains_key(incoming) || sessions.map.len() < cap {
                    return Ok(());
                }
                sessions.pop_lru()
            };
            let Some((vid, handle)) = victim else {
                return Err((
                    "store_full".to_owned(),
                    format!("the live-session cap is {cap} and nothing is evictable"),
                ));
            };
            let Some(path) = self.artifact_path(&vid) else {
                self.sessions.lock().unwrap().insert(vid, handle);
                return Err((
                    "store_full".to_owned(),
                    format!(
                        "live-session cap of {cap} reached and the server has no \
                         store directory to evict into (start with --store DIR, \
                         or raise --max-sessions)"
                    ),
                ));
            };
            let (reply_tx, reply_rx) = channel();
            if handle.tx.send(Job::Retire { path, reply: reply_tx }).is_err() {
                continue; // worker already gone — the slot is free
            }
            match reply_rx.recv() {
                Ok(Ok(_)) | Err(_) => {} // persisted and retired
                Ok(Err(err)) => {
                    // The snapshot failed and the worker kept serving:
                    // put the victim back instead of losing it, and
                    // refuse the admission with the persist error.
                    self.sessions.lock().unwrap().insert(vid, handle);
                    return Err(err);
                }
            }
        }
    }

    /// Persists every live session into the disk tier and retires its
    /// worker — the graceful-shutdown path, so sessions built without
    /// `persist` survive a server restart whenever a store directory is
    /// armed. Returns the number of sessions persisted; a no-op without
    /// a disk tier. A session whose snapshot fails is skipped (its
    /// worker drains and exits when the store drops) rather than
    /// blocking the shutdown.
    pub fn persist_all(&self) -> usize {
        if self.dir.is_none() {
            return 0;
        }
        let mut persisted = 0;
        loop {
            let victim = self.sessions.lock().unwrap().pop_lru();
            let Some((id, handle)) = victim else {
                return persisted;
            };
            let path = self.artifact_path(&id).expect("disk tier checked above");
            let (reply_tx, reply_rx) = channel();
            if handle.tx.send(Job::Retire { path, reply: reply_tx }).is_err() {
                continue; // worker already gone
            }
            if matches!(reply_rx.recv(), Ok(Ok(_))) {
                persisted += 1;
            }
        }
    }

    /// Routes a job to a session's worker, re-hydrating from the disk
    /// tier on an in-memory miss, and waits for the reply.
    ///
    /// The job constructor may be called more than once: a handle can go
    /// stale when the LRU cap retires its worker between lookup and
    /// send, in which case the session is already persisted and one
    /// reload retry reaches it again.
    pub fn dispatch(&self, id: &str, job: impl Fn(Sender<ReplyBody>) -> Job) -> ReplyBody {
        if !valid_id(id) {
            return Err((
                "bad_request".into(),
                "session ids are 1-64 chars of [A-Za-z0-9_-]".into(),
            ));
        }
        let mut last_err = ("session".to_owned(), "session worker is gone".to_owned());
        for _ in 0..2 {
            let tx = {
                let mut sessions = self.sessions.lock().unwrap();
                sessions.touch(id);
                sessions.map.get(id).map(|h| h.tx.clone())
            };
            let tx = match tx {
                Some(tx) => tx,
                None => {
                    let session = self.load_from_disk(id)?;
                    self.insert_worker(id, session)?;
                    match self.sessions.lock().unwrap().map.get(id).map(|h| h.tx.clone()) {
                        Some(tx) => tx,
                        None => continue, // immediately re-evicted (tiny cap): retry
                    }
                }
            };
            let (reply_tx, reply_rx) = channel();
            if tx.send(job(reply_tx)).is_err() {
                continue; // worker retired after lookup: reload from disk
            }
            match reply_rx.recv() {
                Ok(body) => return body,
                // The worker exited (retirement) with this job still
                // queued — it never ran, so re-dispatching is safe.
                Err(_) => {
                    last_err =
                        ("session".to_owned(), "session worker retired mid-request".to_owned());
                }
            }
        }
        Err(last_err)
    }
}

fn persist_io_err(e: PersistError) -> (String, String) {
    ("persist".to_owned(), e.to_string())
}

fn send(reply: &Sender<ReplyBody>, body: ReplyBody) {
    // A disconnected client is not the worker's problem.
    let _ = reply.send(body);
}

fn worker_loop(mut session: CobraSession, rx: Receiver<Job>) {
    loop {
        let first = match rx.recv() {
            Ok(job) => job,
            Err(_) => return, // store dropped: session retires
        };
        let mut batch = vec![first];
        while let Ok(job) = rx.try_recv() {
            batch.push(job);
        }
        let mut iter = batch.into_iter().peekable();
        while let Some(job) = iter.next() {
            match job {
                Job::Sweep {
                    scenarios,
                    deadline_ms: None,
                    reply,
                } => {
                    // Fuse the maximal run of deadline-free sweeps.
                    let mut group = vec![(scenarios, reply)];
                    while matches!(
                        iter.peek(),
                        Some(Job::Sweep {
                            deadline_ms: None,
                            ..
                        })
                    ) {
                        if let Some(Job::Sweep {
                            scenarios, reply, ..
                        }) = iter.next()
                        {
                            group.push((scenarios, reply));
                        }
                    }
                    run_sweep_group(&mut session, group);
                }
                other => {
                    if !run_one(&mut session, other) {
                        // Retired: the receiver drops here, so jobs still
                        // queued behind the retirement are never run —
                        // their dispatchers retry through the disk tier.
                        return;
                    }
                }
            }
        }
    }
}

/// Runs one job; returns `false` when the worker must exit (a
/// successful [`Job::Retire`]).
fn run_one(session: &mut CobraSession, job: Job) -> bool {
    match job {
        Job::Assign { scenario, reply } => {
            let body = catch_unwind(AssertUnwindSafe(|| do_assign(session, &scenario)))
                .unwrap_or_else(panic_body);
            send(&reply, body);
        }
        Job::Sweep {
            scenarios,
            deadline_ms,
            reply,
        } => {
            let body =
                catch_unwind(AssertUnwindSafe(|| do_sweep_solo(session, &scenarios, deadline_ms)))
                    .unwrap_or_else(panic_body);
            send(&reply, body);
        }
        Job::SelectBound { bound, reply } => {
            let body = catch_unwind(AssertUnwindSafe(|| do_select_bound(session, bound)))
                .unwrap_or_else(panic_body);
            send(&reply, body);
        }
        Job::ApplyDelta { ops, reply } => {
            let body = catch_unwind(AssertUnwindSafe(|| do_apply_delta(session, &ops)))
                .unwrap_or_else(panic_body);
            send(&reply, body);
        }
        Job::Stats { reply } => {
            let body = catch_unwind(AssertUnwindSafe(|| Ok(do_stats(session))))
                .unwrap_or_else(panic_body);
            send(&reply, body);
        }
        Job::Retire { path, reply } => {
            let body = catch_unwind(AssertUnwindSafe(|| do_retire(session, &path)))
                .unwrap_or_else(panic_body);
            let retired = body.is_ok();
            send(&reply, body);
            return !retired;
        }
        Job::Panic { reply } => {
            let body = catch_unwind(|| -> ReplyBody {
                panic!("deliberate fault-injection panic");
            })
            .unwrap_or_else(panic_body);
            send(&reply, body);
        }
    }
    true
}

/// Eviction: snapshot the session into the disk tier. A success retires
/// the worker; a failure keeps it serving (the store re-registers it).
fn do_retire(session: &CobraSession, path: &std::path::Path) -> ReplyBody {
    let bytes = snapshot_session(session).map_err(session_err)?;
    write_file(path, &bytes).map_err(persist_io_err)?;
    Ok(vec![("retired".into(), Json::Bool(true))])
}

/// Resolves an `apply_delta` request's labels and term text against the
/// session, then applies the delta through the incremental session path
/// (engines spliced, plans reused — no full recompile).
fn do_apply_delta(session: &mut CobraSession, ops: &[WireDeltaOp]) -> ReplyBody {
    let mut delta = PolyDelta::new();
    for op in ops {
        let idx = session.polynomials().index_of(&op.poly).ok_or_else(|| {
            (
                "bad_request".to_owned(),
                format!("no polynomial labelled {:?} in this session", op.poly),
            )
        })?;
        let parsed = parse_poly(&op.term, session.registry_mut())
            .map_err(|e| ("bad_request".to_owned(), format!("term {:?}: {e}", op.term)))?;
        let (monomial, coeff) = match parsed.terms() {
            [single] => single.clone(),
            _ => {
                return Err((
                    "bad_request".to_owned(),
                    format!("term {:?} must be a single coeff*monomial product", op.term),
                ))
            }
        };
        match op.action {
            WireDeltaAction::Add => delta.add(idx, monomial, coeff),
            WireDeltaAction::Set => delta.set(idx, monomial, coeff),
            WireDeltaAction::Remove => delta.remove(idx, monomial),
        }
    }
    let report = session.apply_delta(&delta).map_err(session_err)?;
    Ok(vec![
        ("structural".into(), Json::Bool(report.is_structural())),
        (
            "polys_touched".into(),
            Json::Num(report.touched().len() as f64),
        ),
        (
            "terms_touched".into(),
            Json::Num(report.terms_touched as f64),
        ),
    ])
}

fn panic_body(payload: Box<dyn std::any::Any + Send>) -> ReplyBody {
    let msg = payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_owned())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "worker panicked".to_owned());
    Err(("panic".to_owned(), msg))
}

fn scenario_valuation(session: &mut CobraSession, bindings: &[(String, Rat)]) -> Valuation<Rat> {
    let mut val = Valuation::with_default(Rat::ONE);
    for (name, factor) in bindings {
        let var = session.registry_mut().var(name);
        val.set(var, *factor);
    }
    val
}

fn do_assign(session: &mut CobraSession, scenario: &[(String, Rat)]) -> ReplyBody {
    let val = scenario_valuation(session, scenario);
    let cmp = session.assign(&val).map_err(session_err)?;
    let rows: Vec<Json> = cmp
        .rows
        .iter()
        .map(|r| {
            Json::Obj(vec![
                ("label".into(), Json::Str(r.label.clone())),
                ("full".into(), Json::Str(r.full.to_string())),
                ("compressed".into(), Json::Str(r.compressed.to_string())),
            ])
        })
        .collect();
    Ok(vec![
        ("rows".into(), Json::Arr(rows)),
        ("max_rel_error".into(), Json::Num(cmp.max_rel_error())),
        ("exact".into(), Json::Bool(cmp.is_exact())),
    ])
}

/// Shared fold: per scenario, the sums of the full-side and
/// compressed-side result tuples.
fn totals_fold(
    session: &CobraSession,
    set: ScenarioSet,
    deadline_ms: Option<u64>,
) -> Result<(SweepOutcome<SweepRows>, f64), (String, String)> {
    let fold = |mut acc: SweepRows, item: cobra_core::FoldItem<'_, f64>| {
        let full: f64 = item.full.iter().sum();
        let comp: f64 = item.compressed.iter().sum();
        acc.push((full, comp));
        acc
    };
    match deadline_ms {
        None => {
            let (rows, div) = session
                .sweep_fold_f64(set, Vec::new(), fold)
                .map_err(session_err)?;
            Ok((SweepOutcome::Complete(rows), div.max_rel_divergence))
        }
        Some(ms) => {
            let budget = SweepBudget::unlimited().with_deadline(Duration::from_millis(ms));
            let (outcome, div) = session
                .sweep_fold_f64_budgeted(set, budget, Vec::new(), fold)
                .map_err(session_err)?;
            Ok((outcome, div.max_rel_divergence))
        }
    }
}

fn rows_json(rows: &[(f64, f64)]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|&(f, c)| Json::Arr(vec![Json::Num(f), Json::Num(c)]))
            .collect(),
    )
}

fn sweep_body(
    rows: SweepRows,
    requested: usize,
    outcome_meta: Option<(usize, &'static str)>,
    divergence: f64,
) -> Vec<(String, Json)> {
    let mut body = vec![
        ("rows".into(), rows_json(&rows)),
        ("requested".into(), Json::Num(requested as f64)),
        ("partial".into(), Json::Bool(outcome_meta.is_some())),
    ];
    if let Some((done, reason)) = outcome_meta {
        body.push(("done".into(), Json::Num(done as f64)));
        body.push(("stop".into(), Json::Str(reason.into())));
    }
    body.push(("max_rel_divergence".into(), Json::Num(divergence)));
    body
}

fn stop_str(reason: cobra_core::StopReason) -> &'static str {
    match reason {
        cobra_core::StopReason::Deadline => "deadline",
        cobra_core::StopReason::Cancelled => "cancelled",
        cobra_core::StopReason::ScenarioCap => "scenario_cap",
    }
}

fn do_sweep_solo(
    session: &mut CobraSession,
    scenarios: &[(String, Rat)],
    deadline_ms: Option<u64>,
) -> ReplyBody {
    let vals: Vec<Valuation<Rat>> = scenarios
        .iter()
        .map(|(name, factor)| {
            let var = session.registry_mut().var(name);
            Valuation::with_default(Rat::ONE).bind(var, *factor)
        })
        .collect();
    let requested = vals.len();
    let (outcome, divergence) =
        totals_fold(session, ScenarioSet::from_valuations(vals), deadline_ms)?;
    let body = match outcome {
        SweepOutcome::Complete(rows) => sweep_body(rows, requested, None, divergence),
        SweepOutcome::Partial {
            fold,
            scenarios_done,
            reason,
        } => sweep_body(
            fold,
            requested,
            Some((scenarios_done, stop_str(reason))),
            divergence,
        ),
    };
    Ok(body)
}

fn run_sweep_group(session: &mut CobraSession, group: Vec<QueuedSweep>) {
    if group.len() == 1 {
        let (scenarios, reply) = group.into_iter().next().expect("len checked");
        let body = catch_unwind(AssertUnwindSafe(|| do_sweep_solo(session, &scenarios, None)))
            .unwrap_or_else(panic_body);
        send(&reply, body);
        return;
    }
    // Union grid: deduplicate (var, factor) perturbations across the
    // fused requests; each request is answered from its own indices.
    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut unique: Vec<Valuation<Rat>> = Vec::new();
        let mut index_of: HashMap<(u32, Rat), usize> = HashMap::new();
        let mut per_request: Vec<Vec<usize>> = Vec::with_capacity(group.len());
        for (scenarios, _) in &group {
            let mut indices = Vec::with_capacity(scenarios.len());
            for (name, factor) in scenarios {
                let var = session.registry_mut().var(name);
                let next = unique.len();
                let idx = *index_of.entry((var.0, *factor)).or_insert(next);
                if idx == next {
                    unique.push(Valuation::with_default(Rat::ONE).bind(var, *factor));
                }
                indices.push(idx);
            }
            per_request.push(indices);
        }
        let (outcome, divergence) =
            totals_fold(session, ScenarioSet::from_valuations(unique), None)?;
        let rows = outcome.into_fold();
        Ok((rows, per_request, divergence))
    }))
    .unwrap_or_else(|payload| Err(panic_body(payload).expect_err("panic_body always errs")));

    match result {
        Err(err) => {
            for (_, reply) in &group {
                send(reply, Err(err.clone()));
            }
        }
        Ok((rows, per_request, divergence)) => {
            for ((scenarios, reply), indices) in group.iter().zip(&per_request) {
                let own: SweepRows = indices.iter().map(|&i| rows[i]).collect();
                send(
                    reply,
                    Ok(sweep_body(own, scenarios.len(), None, divergence)),
                );
            }
        }
    }
}

fn do_select_bound(session: &mut CobraSession, bound: u64) -> ReplyBody {
    let report = session.select_bound(bound).map_err(session_err)?;
    // A service trades a slower select for fast first requests: compile
    // every engine of the new selection now, while the client is already
    // waiting on a structural operation. Warm engines (restored from an
    // artifact or stashed by an earlier hop) make this a no-op.
    session.warm_up().map_err(session_err)?;
    Ok(vec![
        ("bound".into(), Json::Num(report.bound as f64)),
        (
            "original_size".into(),
            Json::Num(report.original_size as f64),
        ),
        (
            "compressed_size".into(),
            Json::Num(report.compressed_size as f64),
        ),
        (
            "original_vars".into(),
            Json::Num(report.original_vars as f64),
        ),
        (
            "compressed_vars".into(),
            Json::Num(report.compressed_vars as f64),
        ),
        (
            "cuts".into(),
            Json::Arr(report.cuts.iter().cloned().map(Json::Str).collect()),
        ),
    ])
}

fn opt_num(v: Option<u64>) -> Json {
    v.map_or(Json::Null, |n| Json::Num(n as f64))
}

fn do_stats(session: &CobraSession) -> Vec<(String, Json)> {
    let info = session.info();
    vec![
        ("trees".into(), Json::Num(info.trees as f64)),
        ("bound".into(), opt_num(info.bound)),
        (
            "frontier_points".into(),
            opt_num(info.frontier_points.map(|n| n as u64)),
        ),
        ("original_size".into(), opt_num(info.original_size)),
        (
            "original_vars".into(),
            opt_num(info.original_vars.map(|n| n as u64)),
        ),
        ("compressed_size".into(), opt_num(info.compressed_size)),
        (
            "compressed_vars".into(),
            opt_num(info.compressed_vars.map(|n| n as u64)),
        ),
        ("warm_engines".into(), Json::Num(info.warm_engines as f64)),
        ("hydrated".into(), Json::Bool(info.hydrated)),
        ("kernel".into(), Json::Str(info.kernel.into())),
        ("dag".into(), Json::Bool(info.dag)),
        (
            "dag_slots".into(),
            opt_num(info.dag_slots.map(|n| n as u64)),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    const POLYS: &str = "P1 = 208.8*p1*m1 + 240*p1*m3 + 42*v*m1 + 24.2*v*m3";
    const TREE: &str = "Plans(Standard(p1,p2), v)";

    fn prepared_store() -> SessionStore {
        let store = SessionStore::new(None);
        store.prepare("t", Some(POLYS), Some(TREE), false, false).unwrap();
        store
    }

    fn get(body: &[(String, Json)], key: &str) -> Json {
        body.iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
            .unwrap_or(Json::Null)
    }

    #[test]
    fn prepare_select_assign_round_trip() {
        let store = prepared_store();
        let body = store
            .dispatch("t", |reply| Job::SelectBound { bound: 2, reply })
            .unwrap();
        assert_eq!(get(&body, "compressed_size"), Json::Num(2.0));
        let body = store
            .dispatch("t", |reply| Job::Assign {
                scenario: vec![("m3".into(), Rat::parse("0.8").unwrap())],
                reply,
            })
            .unwrap();
        assert_eq!(get(&body, "exact"), Json::Bool(true));
        let rows = get(&body, "rows");
        assert_eq!(rows.as_arr().unwrap().len(), 1);
    }

    #[test]
    fn unknown_sessions_and_bad_ids_are_typed_errors() {
        let store = SessionStore::new(None);
        let (kind, _) = store
            .dispatch("nope", |reply| Job::Stats { reply })
            .unwrap_err();
        assert_eq!(kind, "unknown_session");
        let (kind, _) = store
            .dispatch("../evil", |reply| Job::Stats { reply })
            .unwrap_err();
        assert_eq!(kind, "bad_request");
        let (kind, _) = store.prepare("t", Some("P1 ="), Some(TREE), false, false).unwrap_err();
        assert_eq!(kind, "session");
    }

    #[test]
    fn worker_survives_panics() {
        let store = prepared_store();
        let (kind, _) = store
            .dispatch("t", |reply| Job::Panic { reply })
            .unwrap_err();
        assert_eq!(kind, "panic");
        // the session keeps serving
        let body = store
            .dispatch("t", |reply| Job::Stats { reply })
            .unwrap();
        assert_eq!(get(&body, "trees"), Json::Num(1.0));
    }

    #[test]
    fn sweeps_answer_per_request_rows() {
        let store = prepared_store();
        store
            .dispatch("t", |reply| Job::SelectBound { bound: 2, reply })
            .unwrap();
        let body = store
            .dispatch("t", |reply| Job::Sweep {
                scenarios: vec![
                    ("m3".into(), Rat::parse("0.8").unwrap()),
                    ("m1".into(), Rat::parse("1.2").unwrap()),
                ],
                deadline_ms: None,
                reply,
            })
            .unwrap();
        assert_eq!(get(&body, "partial"), Json::Bool(false));
        assert_eq!(get(&body, "rows").as_arr().unwrap().len(), 2);
    }

    #[test]
    fn fused_union_grid_matches_solo_rows() {
        let store = prepared_store();
        store
            .dispatch("t", |reply| Job::SelectBound { bound: 2, reply })
            .unwrap();
        let r1 = vec![
            ("m3".into(), Rat::parse("0.8").unwrap()),
            ("m1".into(), Rat::parse("1.2").unwrap()),
        ];
        let r2 = vec![
            ("m1".into(), Rat::parse("1.2").unwrap()),
            ("v".into(), Rat::parse("2").unwrap()),
        ];
        let solo1 = store
            .dispatch("t", |reply| Job::Sweep {
                scenarios: r1.clone(),
                deadline_ms: None,
                reply,
            })
            .unwrap();
        let solo2 = store
            .dispatch("t", |reply| Job::Sweep {
                scenarios: r2.clone(),
                deadline_ms: None,
                reply,
            })
            .unwrap();

        // Drive the fusion path directly: queue both, then let the
        // worker drain them in one batch.
        let (tx1, rx1) = channel();
        let (tx2, rx2) = channel();
        {
            let sessions = store.sessions.lock().unwrap();
            let tx = sessions.map.get("t").unwrap().tx.clone();
            tx.send(Job::Sweep {
                scenarios: r1,
                deadline_ms: None,
                reply: tx1,
            })
            .unwrap();
            tx.send(Job::Sweep {
                scenarios: r2,
                deadline_ms: None,
                reply: tx2,
            })
            .unwrap();
        }
        let fused1 = rx1.recv().unwrap().unwrap();
        let fused2 = rx2.recv().unwrap().unwrap();
        assert_eq!(get(&fused1, "rows"), get(&solo1, "rows"));
        assert_eq!(get(&fused2, "rows"), get(&solo2, "rows"));
    }

    fn assign_rows(store: &SessionStore, id: &str) -> Json {
        let body = store
            .dispatch(id, |reply| Job::Assign {
                scenario: vec![("m3".into(), Rat::parse("0.8").unwrap())],
                reply,
            })
            .unwrap();
        get(&body, "rows")
    }

    #[test]
    fn delta_updates_flow_through_the_worker() {
        let store = prepared_store();
        store
            .dispatch("t", |reply| Job::SelectBound { bound: 2, reply })
            .unwrap();
        let body = store
            .dispatch("t", |reply| Job::ApplyDelta {
                ops: vec![
                    WireDeltaOp {
                        poly: "P1".into(),
                        action: WireDeltaAction::Set,
                        term: "250*p1*m1".into(),
                    },
                    WireDeltaOp {
                        poly: "P1".into(),
                        action: WireDeltaAction::Remove,
                        term: "v*m3".into(),
                    },
                ],
                reply,
            })
            .unwrap();
        assert_eq!(get(&body, "structural"), Json::Bool(true));
        assert_eq!(get(&body, "terms_touched"), Json::Num(2.0));

        // The patched session answers exactly like one built fresh from
        // the post-delta polynomials.
        let fresh = SessionStore::new(None);
        fresh
            .prepare(
                "f",
                Some("P1 = 250*p1*m1 + 240*p1*m3 + 42*v*m1"),
                Some(TREE),
                false,
                false,
            )
            .unwrap();
        fresh
            .dispatch("f", |reply| Job::SelectBound { bound: 2, reply })
            .unwrap();
        assert_eq!(assign_rows(&store, "t"), assign_rows(&fresh, "f"));
    }

    #[test]
    fn delta_errors_are_typed_and_atomic() {
        let store = prepared_store();
        let before = store
            .dispatch("t", |reply| Job::Stats { reply })
            .map(|b| get(&b, "original_size"));
        let (kind, _) = store
            .dispatch("t", |reply| Job::ApplyDelta {
                ops: vec![WireDeltaOp {
                    poly: "Nope".into(),
                    action: WireDeltaAction::Add,
                    term: "2*p1*m1".into(),
                }],
                reply,
            })
            .unwrap_err();
        assert_eq!(kind, "bad_request");
        let (kind, _) = store
            .dispatch("t", |reply| Job::ApplyDelta {
                ops: vec![WireDeltaOp {
                    poly: "P1".into(),
                    action: WireDeltaAction::Add,
                    term: "2*p1 + 3*v".into(),
                }],
                reply,
            })
            .unwrap_err();
        assert_eq!(kind, "bad_request");
        let after = store
            .dispatch("t", |reply| Job::Stats { reply })
            .map(|b| get(&b, "original_size"));
        assert_eq!(before, after, "rejected deltas must change nothing");
    }

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "cobra-store-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn lru_cap_evicts_to_disk_and_evicted_ids_reload() {
        let dir = scratch_dir("evict");
        let store = SessionStore::with_limits(Some(dir.clone()), kernel::target(), Some(2));
        for id in ["a", "b", "c"] {
            store.prepare(id, Some(POLYS), Some(TREE), false, false).unwrap();
        }
        // "a" was LRU: its worker persisted the session and exited.
        assert_eq!(store.sessions.lock().unwrap().map.len(), 2);
        assert!(!store.sessions.lock().unwrap().map.contains_key("a"));
        assert!(dir.join("a.cobra").exists());

        // The evicted id still answers — transparently re-hydrated from
        // the artifact its own worker wrote (this in turn evicts "b").
        let body = store
            .dispatch("a", |reply| Job::SelectBound { bound: 2, reply })
            .unwrap();
        assert_eq!(get(&body, "compressed_size"), Json::Num(2.0));
        assert!(dir.join("b.cobra").exists());

        // Touching "a" protects it: the next admission evicts "c".
        store.prepare("d", Some(POLYS), Some(TREE), false, false).unwrap();
        let live = store.sessions.lock().unwrap();
        assert!(live.map.contains_key("a") && live.map.contains_key("d"));
        drop(live);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn capped_store_without_disk_tier_refuses_with_store_full() {
        let store = SessionStore::with_limits(None, kernel::target(), Some(1));
        store.prepare("a", Some(POLYS), Some(TREE), false, false).unwrap();
        let (kind, msg) = store
            .prepare("b", Some(POLYS), Some(TREE), false, false)
            .unwrap_err();
        assert_eq!(kind, "store_full");
        assert!(msg.contains("no store directory"), "{msg}");
        // The incumbent session is untouched and still serving.
        let body = store.dispatch("a", |reply| Job::Stats { reply }).unwrap();
        assert_eq!(get(&body, "trees"), Json::Num(1.0));
        // Re-preparing a live id is not an admission and stays fine.
        let body = store.prepare("a", None, None, false, false).unwrap();
        assert_eq!(get(&body, "source"), Json::Str("cached".into()));
    }
}
