//! The table generator (`dbgen`-lite).
//!
//! Cardinalities follow the TPC-H specification scaled by `sf`:
//! supplier 10k·sf, customer 150k·sf, part 200k·sf, partsupp 4/part,
//! orders 1.5M·sf, lineitem 1–7 per order. Dates span 1992–1998 and are
//! stored both as `yyyymmdd` integers (for range predicates) and as
//! year/month columns (for the time abstraction tree).

use super::text::{
    MKT_SEGMENTS, NATIONS, PART_WORDS, PRIORITIES, REGIONS, TYPE_S1, TYPE_S2, TYPE_S3,
};
use cobra_engine::{Database, Relation, Value};
use cobra_util::{Rat, SplitMix64};

/// Generator configuration.
#[derive(Clone, Copy, Debug)]
pub struct TpchConfig {
    /// Scale factor; 1.0 is the canonical 1 GB database. The experiments
    /// here use 0.01–0.1.
    pub scale_factor: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TpchConfig {
    fn default() -> Self {
        TpchConfig {
            scale_factor: 0.01,
            seed: 0x7bc4,
        }
    }
}

impl TpchConfig {
    /// A configuration at the given scale factor.
    pub fn sf(scale_factor: f64) -> TpchConfig {
        TpchConfig {
            scale_factor,
            ..Default::default()
        }
    }

    fn scaled(&self, base: usize, min: usize) -> usize {
        ((base as f64 * self.scale_factor) as usize).max(min)
    }

    /// Supplier cardinality.
    pub fn suppliers(&self) -> usize {
        self.scaled(10_000, 10)
    }
    /// Customer cardinality.
    pub fn customers(&self) -> usize {
        self.scaled(150_000, 50)
    }
    /// Part cardinality.
    pub fn parts(&self) -> usize {
        self.scaled(200_000, 50)
    }
    /// Orders cardinality.
    pub fn orders(&self) -> usize {
        self.scaled(1_500_000, 150)
    }
}

/// The generated database plus the side tables the instrumentation needs.
pub struct TpchDatabase {
    /// Tables: region, nation, supplier, customer, part, partsupp,
    /// orders, lineitem.
    pub db: Database,
    /// `supp_nation[suppkey-1]` = nationkey of the supplier.
    pub supp_nation: Vec<usize>,
    /// `part_brand[partkey-1]` = the part's `Brand#MN` digits `(M, N)`.
    pub part_brand: Vec<(u8, u8)>,
    /// The generating configuration.
    pub config: TpchConfig,
    /// Total lineitem rows generated.
    pub lineitems: usize,
}

fn yyyymmdd(year: i64, month: i64, day: i64) -> i64 {
    year * 10_000 + month * 100 + day
}

/// Generates the database.
pub fn generate(config: TpchConfig) -> TpchDatabase {
    let mut rng = SplitMix64::new(config.seed);

    // region
    let region_rows = REGIONS
        .iter()
        .enumerate()
        .map(|(k, name)| vec![Value::Int(k as i64), Value::str(name)])
        .collect();
    let region = Relation::from_rows(["r_regionkey", "r_name"], region_rows).expect("arity");

    // nation
    let nation_rows = NATIONS
        .iter()
        .enumerate()
        .map(|(k, (name, regionkey))| {
            vec![
                Value::Int(k as i64),
                Value::str(name),
                Value::Int(*regionkey as i64),
            ]
        })
        .collect();
    let nation =
        Relation::from_rows(["n_nationkey", "n_name", "n_regionkey"], nation_rows).expect("arity");

    // supplier
    let n_supp = config.suppliers();
    let mut supp_nation = Vec::with_capacity(n_supp);
    let mut supplier_rows = Vec::with_capacity(n_supp);
    for s in 1..=n_supp {
        let nk = rng.gen_index(NATIONS.len());
        supp_nation.push(nk);
        supplier_rows.push(vec![
            Value::Int(s as i64),
            Value::str(&format!("Supplier#{s:09}")),
            Value::Int(nk as i64),
        ]);
    }
    let supplier =
        Relation::from_rows(["s_suppkey", "s_name", "s_nationkey"], supplier_rows).expect("arity");

    // customer
    let n_cust = config.customers();
    let mut customer_rows = Vec::with_capacity(n_cust);
    for c in 1..=n_cust {
        customer_rows.push(vec![
            Value::Int(c as i64),
            Value::str(&format!("Customer#{c:09}")),
            Value::Int(rng.gen_index(NATIONS.len()) as i64),
            Value::str(rng.choose::<&str>(&MKT_SEGMENTS)),
        ]);
    }
    let customer = Relation::from_rows(
        ["c_custkey", "c_name", "c_nationkey", "c_mktsegment"],
        customer_rows,
    )
    .expect("arity");

    // part
    let n_part = config.parts();
    let mut part_rows = Vec::with_capacity(n_part);
    let mut part_brand = Vec::with_capacity(n_part);
    for p in 1..=n_part {
        let name = format!(
            "{} {}",
            rng.choose(&PART_WORDS),
            rng.choose(&PART_WORDS)
        );
        let (bm, bn) = (
            rng.gen_range_inclusive(1, 5) as u8,
            rng.gen_range_inclusive(1, 5) as u8,
        );
        part_brand.push((bm, bn));
        let brand = format!("Brand#{bm}{bn}");
        let ptype = format!(
            "{} {} {}",
            rng.choose(&TYPE_S1),
            rng.choose(&TYPE_S2),
            rng.choose(&TYPE_S3)
        );
        // spec-style retail price: 900 + (partkey/10 mod 2001)/100 …
        let retail = Rat::new(90_000 + (p as i128 % 20_010), 100);
        part_rows.push(vec![
            Value::Int(p as i64),
            Value::str(&name),
            Value::str(&brand),
            Value::str(&ptype),
            Value::Num(retail),
        ]);
    }
    let part = Relation::from_rows(
        ["p_partkey", "p_name", "p_brand", "p_type", "p_retailprice"],
        part_rows,
    )
    .expect("arity");

    // partsupp: 4 suppliers per part
    let mut partsupp_rows = Vec::with_capacity(n_part * 4);
    for p in 1..=n_part {
        for i in 0..4usize {
            let s = 1 + (p + i * (n_supp / 4).max(1)) % n_supp;
            partsupp_rows.push(vec![
                Value::Int(p as i64),
                Value::Int(s as i64),
                Value::Num(Rat::new(rng.gen_range_inclusive(100, 99_999) as i128, 100)),
                Value::Int(rng.gen_range_inclusive(1, 9_999)),
            ]);
        }
    }
    let partsupp = Relation::from_rows(
        ["ps_partkey", "ps_suppkey", "ps_supplycost", "ps_availqty"],
        partsupp_rows,
    )
    .expect("arity");

    // orders + lineitem
    let n_orders = config.orders();
    let mut orders_rows = Vec::with_capacity(n_orders);
    let mut lineitem_rows = Vec::new();
    for o in 1..=n_orders {
        let custkey = 1 + rng.gen_index(n_cust);
        let year = rng.gen_range_inclusive(1992, 1998);
        let month = rng.gen_range_inclusive(1, 12);
        let day = rng.gen_range_inclusive(1, 28);
        let odate = yyyymmdd(year, month, day);
        orders_rows.push(vec![
            Value::Int(o as i64),
            Value::Int(custkey as i64),
            Value::Int(odate),
            Value::Int(year),
            Value::Int(month),
            Value::str(rng.choose::<&str>(&PRIORITIES)),
        ]);
        let lines = rng.gen_range_inclusive(1, 7);
        for ln in 1..=lines {
            let partkey = 1 + rng.gen_index(n_part);
            let suppkey = 1 + rng.gen_index(n_supp);
            let quantity = rng.gen_range_inclusive(1, 50);
            // extendedprice = quantity × pseudo retail price of the part
            let retail = Rat::new(90_000 + (partkey as i128 % 20_010), 100);
            let extended = Rat::int(quantity) * retail;
            let discount = Rat::new(rng.gen_range_inclusive(0, 10) as i128, 100);
            let tax = Rat::new(rng.gen_range_inclusive(0, 8) as i128, 100);
            // ship 1..120 days after the order; clamp month arithmetic to
            // the calendar by rolling months forward
            let ship_offset_months = rng.gen_index(4) as i64;
            let (ship_year, ship_month) = {
                let m0 = month - 1 + ship_offset_months;
                (year + m0 / 12, m0 % 12 + 1)
            };
            let sdate = yyyymmdd(ship_year, ship_month, rng.gen_range_inclusive(1, 28));
            let returnflag = if sdate
                <= yyyymmdd(1995, 6, 17) && rng.gen_bool(0.5)
            {
                *rng.choose(&["R", "A"])
            } else {
                "N"
            };
            let linestatus = if ship_year <= 1995 { "F" } else { "O" };
            lineitem_rows.push(vec![
                Value::Int(o as i64),
                Value::Int(partkey as i64),
                Value::Int(suppkey as i64),
                Value::Int(ln),
                Value::Int(quantity),
                Value::Num(extended),
                Value::Num(discount),
                Value::Num(tax),
                Value::str(returnflag),
                Value::str(linestatus),
                Value::Int(sdate),
                Value::Int(ship_year),
                Value::Int(ship_month),
            ]);
        }
    }
    let lineitems = lineitem_rows.len();
    let orders = Relation::from_rows(
        [
            "o_orderkey",
            "o_custkey",
            "o_orderdate",
            "o_year",
            "o_month",
            "o_orderpriority",
        ],
        orders_rows,
    )
    .expect("arity");
    let lineitem = Relation::from_rows(
        [
            "l_orderkey",
            "l_partkey",
            "l_suppkey",
            "l_linenumber",
            "l_quantity",
            "l_extendedprice",
            "l_discount",
            "l_tax",
            "l_returnflag",
            "l_linestatus",
            "l_shipdate",
            "l_shipyear",
            "l_shipmonth",
        ],
        lineitem_rows,
    )
    .expect("arity");

    let mut db = Database::new();
    db.insert("region", region);
    db.insert("nation", nation);
    db.insert("supplier", supplier);
    db.insert("customer", customer);
    db.insert("part", part);
    db.insert("partsupp", partsupp);
    db.insert("orders", orders);
    db.insert("lineitem", lineitem);
    TpchDatabase {
        db,
        supp_nation,
        part_brand,
        config,
        lineitems,
    }
}

impl TpchDatabase {
    /// Generates at the given configuration.
    pub fn generate(config: TpchConfig) -> TpchDatabase {
        generate(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinalities_scale() {
        let small = TpchConfig::sf(0.01);
        assert_eq!(small.suppliers(), 100);
        assert_eq!(small.customers(), 1500);
        assert_eq!(small.orders(), 15_000);
        // minimums kick in at tiny scales
        let tiny = TpchConfig::sf(0.0001);
        assert_eq!(tiny.suppliers(), 10);
    }

    #[test]
    fn generates_consistent_tables() {
        let t = TpchDatabase::generate(TpchConfig {
            scale_factor: 0.001,
            seed: 5,
        });
        assert_eq!(t.db.table("region").unwrap().len(), 5);
        assert_eq!(t.db.table("nation").unwrap().len(), 25);
        let supp = t.db.table("supplier").unwrap();
        assert_eq!(supp.len(), t.config.suppliers());
        assert_eq!(t.supp_nation.len(), supp.len());
        let orders = t.db.table("orders").unwrap();
        let lineitem = t.db.table("lineitem").unwrap();
        assert!(lineitem.len() >= orders.len());
        assert_eq!(lineitem.len(), t.lineitems);
        // foreign keys in range
        for row in lineitem.rows().iter().take(100) {
            let (ok, sk) = match (&row[0], &row[2]) {
                (Value::Int(o), Value::Int(s)) => (*o, *s),
                _ => panic!("bad types"),
            };
            assert!(ok >= 1 && ok <= orders.len() as i64);
            assert!(sk >= 1 && sk <= supp.len() as i64);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = TpchDatabase::generate(TpchConfig {
            scale_factor: 0.001,
            seed: 9,
        });
        let b = TpchDatabase::generate(TpchConfig {
            scale_factor: 0.001,
            seed: 9,
        });
        assert_eq!(
            a.db.table("lineitem").unwrap().rows(),
            b.db.table("lineitem").unwrap().rows()
        );
    }

    #[test]
    fn dates_are_calendar_valid() {
        let t = TpchDatabase::generate(TpchConfig {
            scale_factor: 0.001,
            seed: 11,
        });
        for row in t.db.table("lineitem").unwrap().rows() {
            let (y, m) = match (&row[11], &row[12]) {
                (Value::Int(y), Value::Int(m)) => (*y, *m),
                _ => panic!("bad types"),
            };
            assert!((1992..=1999).contains(&y));
            assert!((1..=12).contains(&m));
        }
    }
}
