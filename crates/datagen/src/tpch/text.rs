//! Fixed text pools of the TPC-H specification (regions, nations, market
//! segments, part vocabulary) and naming helpers.

/// The five regions, index = `r_regionkey`.
pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// The 25 nations as `(name, regionkey)`, index = `n_nationkey` —
/// the standard TPC-H nation/region mapping.
pub const NATIONS: [(&str, usize); 25] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];

/// Customer market segments.
pub const MKT_SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
];

/// Order priorities.
pub const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];

/// Part-name vocabulary (a subset of the spec's P_NAME word list).
pub const PART_WORDS: [&str; 24] = [
    "almond",
    "antique",
    "aquamarine",
    "azure",
    "beige",
    "bisque",
    "black",
    "blanched",
    "blue",
    "blush",
    "brown",
    "burlywood",
    "burnished",
    "chartreuse",
    "chiffon",
    "chocolate",
    "coral",
    "cornflower",
    "cream",
    "cyan",
    "dark",
    "deep",
    "dim",
    "drab",
];

/// Part type components (`TYPE_S1 TYPE_S2 TYPE_S3`).
pub const TYPE_S1: [&str; 6] = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
pub const TYPE_S2: [&str; 5] = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
pub const TYPE_S3: [&str; 5] = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];

/// The provenance-variable name of a nation: lowercase with underscores
/// (`"UNITED STATES"` → `"united_states"`), a valid identifier for the
/// polynomial and tree parsers.
pub fn nation_var_name(nation: &str) -> String {
    nation.to_ascii_lowercase().replace(' ', "_")
}

/// The tree-node name of a region (`"MIDDLE EAST"` → `"MIDDLE_EAST"`).
pub fn region_node_name(region: &str) -> String {
    region.replace(' ', "_")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nation_region_mapping_is_complete() {
        assert_eq!(NATIONS.len(), 25);
        for (_, rk) in NATIONS {
            assert!(rk < REGIONS.len());
        }
        // every region has exactly 5 nations in TPC-H
        for r in 0..REGIONS.len() {
            assert_eq!(NATIONS.iter().filter(|(_, rk)| *rk == r).count(), 5);
        }
    }

    #[test]
    fn var_names_are_identifiers() {
        for (n, _) in NATIONS {
            let v = nation_var_name(n);
            assert!(v.chars().all(|c| c.is_ascii_lowercase() || c == '_'));
        }
        assert_eq!(nation_var_name("UNITED STATES"), "united_states");
        assert_eq!(region_node_name("MIDDLE EAST"), "MIDDLE_EAST");
    }
}
