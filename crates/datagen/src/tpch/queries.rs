//! TPC-H query analogues with provenance parameterization.
//!
//! The instrumentation mirrors the telephony example: every
//! `l_extendedprice` cell is multiplied by `nation_var × month_var`,
//! where the nation is the supplying nation and the month is the ship
//! month. The natural abstraction trees are then **geography** (regions
//! group nations — Fig. 2's analogue) and **time** (quarters group
//! months — exactly the quarter tree §4 describes).

use super::gen::TpchDatabase;
use super::text::{nation_var_name, region_node_name, NATIONS, REGIONS};
use cobra_core::AbstractionTree;
use cobra_engine::{parameterize, EngineError, Value};
use cobra_provenance::{Monomial, PolySet, Var, VarRegistry};
use cobra_util::Rat;

/// A TPC-H query analogue: SQL text plus how to extract its provenance.
#[derive(Clone, Copy, Debug)]
pub struct TpchQuery {
    /// Identifier ("Q1", …).
    pub name: &'static str,
    /// What the query computes.
    pub description: &'static str,
    /// The SQL text (dialect of `cobra_engine::sql`).
    pub sql: &'static str,
    /// Columns labelling each result tuple.
    pub label_cols: &'static [&'static str],
    /// The symbolic (SUM) column holding the provenance polynomial.
    pub poly_col: &'static str,
}

/// The demonstrated query subset.
pub const TPCH_QUERIES: [TpchQuery; 6] = [
    TpchQuery {
        name: "Q1",
        description: "pricing summary by return flag and line status",
        sql: "SELECT l_returnflag, l_linestatus, \
                     SUM(l_extendedprice * (1 - l_discount)) AS revenue, \
                     SUM(l_quantity) AS sum_qty, COUNT(*) AS count_order \
              FROM lineitem WHERE l_shipdate <= 19980902 \
              GROUP BY l_returnflag, l_linestatus",
        label_cols: &["l_returnflag", "l_linestatus"],
        poly_col: "revenue",
    },
    TpchQuery {
        name: "Q3",
        description: "revenue of building-segment orders placed before 1995-03-15",
        sql: "SELECT l_orderkey, SUM(l_extendedprice * (1 - l_discount)) AS revenue \
              FROM customer, orders, lineitem \
              WHERE c_mktsegment = 'BUILDING' AND c_custkey = o_custkey \
                AND l_orderkey = o_orderkey AND o_orderdate < 19950315 \
                AND l_shipdate > 19950315 \
              GROUP BY l_orderkey",
        label_cols: &["l_orderkey"],
        poly_col: "revenue",
    },
    TpchQuery {
        name: "Q5",
        description: "local-supplier volume per ASIA nation in 1994",
        sql: "SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue \
              FROM customer, orders, lineitem, supplier, nation, region \
              WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey \
                AND l_suppkey = s_suppkey AND c_nationkey = s_nationkey \
                AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey \
                AND r_name = 'ASIA' AND o_year = 1994 \
              GROUP BY n_name",
        label_cols: &["n_name"],
        poly_col: "revenue",
    },
    TpchQuery {
        name: "Q6",
        description: "forecast revenue change from mid-range discounts in 1994",
        sql: "SELECT SUM(l_extendedprice * l_discount) AS revenue \
              FROM lineitem \
              WHERE l_shipyear = 1994 AND l_discount >= 0.05 \
                AND l_discount <= 0.07 AND l_quantity < 24",
        label_cols: &[],
        poly_col: "revenue",
    },
    TpchQuery {
        name: "Q11",
        description: "stock value per part held by EUROPE suppliers",
        sql: "SELECT ps_partkey, SUM(ps_supplycost * ps_availqty) AS value \
              FROM partsupp, supplier, nation, region \
              WHERE ps_suppkey = s_suppkey AND s_nationkey = n_nationkey \
                AND n_regionkey = r_regionkey AND r_name = 'EUROPE' \
              GROUP BY ps_partkey",
        label_cols: &["ps_partkey"],
        poly_col: "value",
    },
    TpchQuery {
        name: "Q10",
        description: "revenue lost to returned items per customer (1993 Q4)",
        sql: "SELECT c_custkey, c_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue \
              FROM customer, orders, lineitem, nation \
              WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey \
                AND c_nationkey = n_nationkey AND l_returnflag = 'R' \
                AND o_orderdate >= 19931001 AND o_orderdate < 19940101 \
              GROUP BY c_custkey, c_name",
        label_cols: &["c_custkey"],
        poly_col: "revenue",
    },
];

/// Which ontology dimension parameterizes `l_extendedprice` (the second
/// factor is always the ship month).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PriceDimension {
    /// `price · nation(supplier) · sm(month)` — pairs with
    /// [`geography_tree`].
    SupplierNation,
    /// `price · brand(part) · sm(month)` — pairs with [`part_tree`].
    PartBrand,
}

/// The database after instrumentation, with its provenance variables.
pub struct InstrumentedTpch {
    /// The TPC-H database with `l_extendedprice` (and `ps_supplycost`)
    /// parameterized.
    pub tpch: TpchDatabase,
    /// The shared variable registry.
    pub reg: VarRegistry,
    /// Nation variables, index-aligned with [`NATIONS`].
    pub nation_vars: Vec<Var>,
    /// Ship-month variables `sm1..sm12`.
    pub month_vars: Vec<Var>,
    /// Brand variables `brand_MN` (index `(M-1)*5 + (N-1)`).
    pub brand_vars: Vec<Var>,
    /// The chosen price dimension.
    pub dimension: PriceDimension,
}

impl InstrumentedTpch {
    /// Instruments with the default supplier-nation dimension.
    pub fn new(tpch: TpchDatabase) -> InstrumentedTpch {
        Self::with_dimension(tpch, PriceDimension::SupplierNation)
    }

    /// Instruments a generated database: every `l_extendedprice` becomes
    /// `price · dim_var · sm(ship month)` where `dim_var` is the supplier
    /// nation or the part brand, and every `ps_supplycost` becomes
    /// `cost · nation(supplier)` (for the Q11 analogue).
    pub fn with_dimension(
        mut tpch: TpchDatabase,
        dimension: PriceDimension,
    ) -> InstrumentedTpch {
        let mut reg = VarRegistry::new();
        let nation_vars: Vec<Var> = NATIONS
            .iter()
            .map(|(n, _)| reg.var(&nation_var_name(n)))
            .collect();
        let month_vars: Vec<Var> = (1..=12).map(|m| reg.var(&format!("sm{m}"))).collect();
        let mut brand_vars = Vec::with_capacity(25);
        for m in 1..=5u8 {
            for n in 1..=5u8 {
                brand_vars.push(reg.var(&format!("brand_{m}{n}")));
            }
        }
        let supp_nation = tpch.supp_nation.clone();
        let part_brand = tpch.part_brand.clone();
        let lineitem = tpch
            .db
            .table_mut("lineitem")
            .expect("lineitem table exists");
        parameterize(lineitem, "l_extendedprice", |row| {
            let month = match row[12] {
                Value::Int(m) => m as usize,
                _ => return None,
            };
            let dim_var = match dimension {
                PriceDimension::SupplierNation => {
                    let suppkey = match row[2] {
                        Value::Int(s) => s as usize,
                        _ => return None,
                    };
                    nation_vars[supp_nation[suppkey - 1]]
                }
                PriceDimension::PartBrand => {
                    let partkey = match row[1] {
                        Value::Int(p) => p as usize,
                        _ => return None,
                    };
                    let (bm, bn) = part_brand[partkey - 1];
                    brand_vars[(bm as usize - 1) * 5 + (bn as usize - 1)]
                }
            };
            Some(Monomial::from_pairs([
                (dim_var, 1),
                (month_vars[month - 1], 1),
            ]))
        })
        .expect("l_extendedprice is numeric");
        let partsupp = tpch
            .db
            .table_mut("partsupp")
            .expect("partsupp table exists");
        parameterize(partsupp, "ps_supplycost", |row| {
            let suppkey = match row[1] {
                Value::Int(s) => s as usize,
                _ => return None,
            };
            Some(Monomial::var(nation_vars[supp_nation[suppkey - 1]]))
        })
        .expect("ps_supplycost is numeric");
        InstrumentedTpch {
            tpch,
            reg,
            nation_vars,
            month_vars,
            brand_vars,
            dimension,
        }
    }

    /// Runs one query and extracts its provenance polynomials.
    pub fn run(&self, query: &TpchQuery) -> Result<PolySet<Rat>, EngineError> {
        let rel = self.tpch.db.sql(query.sql)?;
        if query.label_cols.is_empty() {
            // single global aggregate → one polynomial labelled by name
            let set = rel.extract_polyset(&[], query.poly_col)?;
            let mut named = PolySet::new();
            for (i, (_, p)) in set.iter().enumerate() {
                named.push(format!("{}#{i}", query.name), p.clone());
            }
            return Ok(named);
        }
        rel.extract_polyset(query.label_cols, query.poly_col)
    }
}

/// The geography tree: `World(AFRICA(...), AMERICA(...), …)`, regions
/// grouping their five nations.
pub fn geography_tree(reg: &mut VarRegistry) -> AbstractionTree {
    let mut region_specs = Vec::with_capacity(REGIONS.len());
    for (rk, region) in REGIONS.iter().enumerate() {
        let nations: Vec<String> = NATIONS
            .iter()
            .filter(|(_, r)| *r == rk)
            .map(|(n, _)| nation_var_name(n))
            .collect();
        region_specs.push(format!("{}({})", region_node_name(region), nations.join(",")));
    }
    let src = format!("World({})", region_specs.join(","));
    AbstractionTree::parse(&src, reg).expect("generated geography tree is well-formed")
}

/// The parts tree: `Parts(Mfgr1(brand_11..brand_15), …)` — manufacturers
/// grouping their five brands (TPC-H brands `Brand#MN` belong to
/// `Manufacturer#M`).
pub fn part_tree(reg: &mut VarRegistry) -> AbstractionTree {
    let mut mfgrs = Vec::with_capacity(5);
    for m in 1..=5 {
        let brands: Vec<String> = (1..=5).map(|n| format!("brand_{m}{n}")).collect();
        mfgrs.push(format!("Mfgr{m}({})", brands.join(",")));
    }
    let src = format!("Parts({})", mfgrs.join(","));
    AbstractionTree::parse(&src, reg).expect("generated parts tree is well-formed")
}

/// The time tree: `ShipYear(sq1(sm1,sm2,sm3), …)` — quarters grouping
/// ship months, as §4 suggests for uniformly-changing periods.
pub fn time_tree(reg: &mut VarRegistry) -> AbstractionTree {
    let mut quarters = Vec::with_capacity(4);
    for q in 0..4 {
        let months: Vec<String> = (1..=3).map(|m| format!("sm{}", q * 3 + m)).collect();
        quarters.push(format!("sq{}({})", q + 1, months.join(",")));
    }
    let src = format!("ShipYear({})", quarters.join(","));
    AbstractionTree::parse(&src, reg).expect("generated time tree is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpch::TpchConfig;

    fn tiny() -> InstrumentedTpch {
        InstrumentedTpch::new(TpchDatabase::generate(TpchConfig {
            scale_factor: 0.002,
            seed: 21,
        }))
    }

    #[test]
    fn all_queries_run_and_produce_polynomials() {
        let t = tiny();
        for q in &TPCH_QUERIES {
            let set = t.run(q).unwrap_or_else(|e| panic!("{}: {e}", q.name));
            assert!(!set.is_empty(), "{} produced no polynomials", q.name);
            assert!(
                set.total_monomials() > 0,
                "{} produced empty polynomials",
                q.name
            );
        }
    }

    #[test]
    fn q5_polynomials_mention_only_asia_nations() {
        let t = tiny();
        let q5 = &TPCH_QUERIES[2];
        let set = t.run(q5).unwrap();
        let asia: Vec<Var> = NATIONS
            .iter()
            .enumerate()
            .filter(|(_, (_, rk))| *rk == 2)
            .map(|(i, _)| t.nation_vars[i])
            .collect();
        for (label, poly) in set.iter() {
            for (m, _) in poly.iter() {
                for v in m.vars() {
                    if t.nation_vars.contains(&v) {
                        assert!(asia.contains(&v), "{label} mentions non-ASIA nation");
                    }
                }
            }
        }
    }

    #[test]
    fn trees_cover_all_parameter_variables() {
        let t = tiny();
        let mut reg = t.reg.clone();
        let geo = geography_tree(&mut reg);
        let time = time_tree(&mut reg);
        assert_eq!(geo.num_leaves(), 25);
        assert_eq!(time.num_leaves(), 12);
        for &v in &t.nation_vars {
            assert!(geo.contains_var(v));
        }
        for &v in &t.month_vars {
            assert!(time.contains_var(v));
        }
    }

    #[test]
    fn q11_uses_partsupp_with_nation_provenance() {
        let t = tiny();
        let q11 = TPCH_QUERIES.iter().find(|q| q.name == "Q11").unwrap();
        let set = t.run(q11).unwrap();
        assert!(!set.is_empty());
        // every monomial mentions exactly one EUROPE nation variable
        let europe: Vec<Var> = NATIONS
            .iter()
            .enumerate()
            .filter(|(_, (_, rk))| *rk == 3)
            .map(|(i, _)| t.nation_vars[i])
            .collect();
        for (label, poly) in set.iter() {
            for (m, _) in poly.iter() {
                let nation_count = m
                    .vars()
                    .filter(|v| t.nation_vars.contains(v))
                    .count();
                assert_eq!(nation_count, 1, "{label}");
                for v in m.vars() {
                    if t.nation_vars.contains(&v) {
                        assert!(europe.contains(&v), "{label}: non-EUROPE nation");
                    }
                }
            }
        }
    }

    #[test]
    fn brand_dimension_pairs_with_part_tree() {
        let t = InstrumentedTpch::with_dimension(
            TpchDatabase::generate(crate::tpch::TpchConfig {
                scale_factor: 0.002,
                seed: 21,
            }),
            PriceDimension::PartBrand,
        );
        let set = t.run(&TPCH_QUERIES[0]).unwrap(); // Q1
        let mut reg = t.reg.clone();
        let parts = part_tree(&mut reg);
        assert_eq!(parts.num_leaves(), 25);
        // Q1's polynomials analyse cleanly against the parts tree…
        let analysis = cobra_core::GroupAnalysis::analyze(&set, &parts).unwrap();
        let full = analysis.total_monomials();
        // …and grouping brands by manufacturer shrinks the provenance
        let mfgrs: Vec<_> = (1..=5)
            .map(|m| parts.node_by_name(&format!("Mfgr{m}")).unwrap())
            .collect();
        assert!(analysis.compressed_size(&mfgrs) < full);
    }

    #[test]
    fn q1_compresses_under_geography() {
        let t = tiny();
        let set = t.run(&TPCH_QUERIES[0]).unwrap();
        let mut reg = t.reg.clone();
        let geo = geography_tree(&mut reg);
        let analysis = cobra_core::GroupAnalysis::analyze(&set, &geo).unwrap();
        let full = analysis.total_monomials();
        let root_size = analysis.compressed_size(&[geo.root()]);
        assert!(root_size < full, "grouping nations must shrink Q1");
    }
}
