//! Synthetic polynomial sets and abstraction trees for stress tests,
//! property tests, and the optimizer ablations (experiment A1).
//!
//! The generator mirrors the structure the group analysis cares about:
//! polynomials are sums of `coeff · context · leaf` monomials where
//! contexts come from a pool of non-tree variables — so tree size, group
//! count and density can be swept independently.

use cobra_core::tree::{AbstractionTree, TreeSpec};
use cobra_provenance::{Monomial, PolySet, Polynomial, Var, VarRegistry};
use cobra_util::{Rat, SplitMix64};

/// Configuration of a synthetic workload.
#[derive(Clone, Copy, Debug)]
pub struct SyntheticConfig {
    /// Number of tree leaves.
    pub leaves: usize,
    /// Maximum children per inner node (≥ 2).
    pub max_children: usize,
    /// Number of polynomials.
    pub polynomials: usize,
    /// Number of distinct context variables (monomial contexts).
    pub contexts: usize,
    /// Probability that a given (polynomial, context, leaf) monomial
    /// exists.
    pub density: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            leaves: 64,
            max_children: 4,
            polynomials: 16,
            contexts: 8,
            density: 0.5,
            seed: 7,
        }
    }
}

/// A generated synthetic workload.
pub struct Synthetic {
    /// The variable registry.
    pub reg: VarRegistry,
    /// The abstraction tree over `x0..x{leaves-1}`.
    pub tree: AbstractionTree,
    /// The polynomial set.
    pub set: PolySet<Rat>,
    /// Context variables (outside the tree).
    pub context_vars: Vec<Var>,
}

/// Builds a random tree spec with the requested number of leaves.
///
/// Leaves are named `x{i}`, inner nodes `n{i}`; both are unique, so the
/// spec always builds.
pub fn random_tree_spec(rng: &mut SplitMix64, leaves: usize, max_children: usize) -> TreeSpec {
    assert!(leaves >= 1);
    assert!(max_children >= 2);
    let mut counter = 0usize;
    let mut leaf_counter = 0usize;
    build_subtree(rng, leaves, max_children, &mut counter, &mut leaf_counter)
}

fn build_subtree(
    rng: &mut SplitMix64,
    leaves: usize,
    max_children: usize,
    inner_counter: &mut usize,
    leaf_counter: &mut usize,
) -> TreeSpec {
    if leaves == 1 {
        let spec = TreeSpec::leaf(format!("x{leaf_counter}"));
        *leaf_counter += 1;
        return spec;
    }
    let name = format!("n{inner_counter}");
    *inner_counter += 1;
    // split `leaves` into 2..=max_children non-empty parts
    let parts = 2 + rng.gen_index((max_children - 1).min(leaves - 1));
    let mut sizes = vec![1usize; parts];
    for _ in 0..(leaves - parts) {
        sizes[rng.gen_index(parts)] += 1;
    }
    let children = sizes
        .into_iter()
        .map(|s| build_subtree(rng, s, max_children, inner_counter, leaf_counter))
        .collect();
    TreeSpec::node(name, children)
}

/// Generates the full synthetic workload.
pub fn generate(config: SyntheticConfig) -> Synthetic {
    let mut rng = SplitMix64::new(config.seed);
    let mut reg = VarRegistry::new();
    let spec = random_tree_spec(&mut rng, config.leaves, config.max_children);
    let tree = AbstractionTree::build(&spec, &mut reg).expect("generated names are unique");
    let leaf_vars: Vec<Var> = tree.leaves().to_vec();
    let context_vars: Vec<Var> = (0..config.contexts)
        .map(|i| reg.var(&format!("c{i}")))
        .collect();

    let mut set = PolySet::new();
    for p in 0..config.polynomials {
        let mut poly = Polynomial::zero();
        for &ctx in &context_vars {
            for &leaf in &leaf_vars {
                if rng.gen_bool(config.density) {
                    let coeff = Rat::new(rng.gen_range_inclusive(1, 999) as i128, 10);
                    poly.add_term(Monomial::from_pairs([(ctx, 1), (leaf, 1)]), coeff);
                }
            }
        }
        // a few base monomials exercising the `base` path
        if rng.gen_bool(0.5) {
            poly.add_term(
                Monomial::var(context_vars[rng.gen_index(config.contexts.max(1))]),
                Rat::int(rng.gen_range_inclusive(1, 9)),
            );
        }
        set.push(format!("P{p}"), poly);
    }
    Synthetic {
        reg,
        tree,
        set,
        context_vars,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_spec_has_requested_leaves() {
        let mut rng = SplitMix64::new(3);
        for leaves in [1usize, 2, 5, 17, 64] {
            let spec = random_tree_spec(&mut rng, leaves, 4);
            let mut reg = VarRegistry::new();
            let tree = AbstractionTree::build(&spec, &mut reg).unwrap();
            assert_eq!(tree.num_leaves(), leaves);
        }
    }

    #[test]
    fn generation_is_deterministic_and_analyzable() {
        let config = SyntheticConfig::default();
        let a = generate(config);
        let b = generate(config);
        assert_eq!(a.set, b.set);
        // Every monomial mentions at most one leaf, so analysis succeeds.
        let analysis =
            cobra_core::GroupAnalysis::analyze(&a.set, &a.tree).expect("single-leaf monomials");
        assert_eq!(analysis.total_monomials() as usize, a.set.total_monomials());
        assert!(analysis.num_groups() > 0);
    }

    #[test]
    fn density_scales_size() {
        let sparse = generate(SyntheticConfig {
            density: 0.1,
            ..Default::default()
        });
        let dense = generate(SyntheticConfig {
            density: 0.9,
            ..Default::default()
        });
        assert!(dense.set.total_monomials() > sparse.set.total_monomials());
    }
}
