//! Hypothetical scenarios — the "what if" side of the demonstration.
//!
//! A scenario is a multiplicative change to a set of provenance
//! variables: "what if the ppm of all plans decreased by 20% on March?"
//! is `m3 ↦ 0.8`; "what if the business plans increased by 10%?" is
//! `{b1, b2, e} ↦ 1.1` (paper §2, Example 1).
//!
//! Beyond the four single scenarios the demo walks through, this module
//! emits scenario **grids** ([`telephony_grid`],
//! [`telephony_scenario_set`]): cartesian products of the demo's factor
//! axes, described as [`ScenarioSet`]s in O(axes) memory so sweeps of
//! 10⁵+ scenarios never materialize per-scenario valuations.

use cobra_core::scenario_set::{Axis, ScenarioSet};
use cobra_provenance::{Valuation, Var, VarRegistry};
use cobra_util::Rat;

/// A named multiplicative what-if scenario.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Short identifier.
    pub name: &'static str,
    /// Human-readable description (as phrased in the paper).
    pub description: &'static str,
    /// `(variable name, factor)` pairs; all other variables stay at 1.
    pub factors: Vec<(&'static str, Rat)>,
}

impl Scenario {
    /// Builds the leaf-level valuation (default 1 elsewhere), registering
    /// any missing variables.
    pub fn valuation(&self, reg: &mut VarRegistry) -> Valuation<Rat> {
        let mut val = Valuation::with_default(Rat::ONE);
        for (name, factor) in &self.factors {
            val.set(reg.var(name), *factor);
        }
        val
    }

    /// The variables this scenario moves, registering any missing ones.
    pub fn vars(&self, reg: &mut VarRegistry) -> Vec<Var> {
        self.factors.iter().map(|(name, _)| reg.var(name)).collect()
    }

    /// The scenario as one grid axis: its variable group swept over
    /// `levels` instead of pinned at the single demo factor. Composing
    /// axes from several scenarios yields the explorer's grid.
    pub fn axis(&self, reg: &mut VarRegistry, levels: impl IntoIterator<Item = Rat>) -> Axis {
        Axis::new(self.vars(reg), levels)
    }
}

fn rat(s: &str) -> Rat {
    Rat::parse(s).expect("scenario factor literal")
}

/// §2 Example 1: "what if the price per minute of all plans are decreased
/// by 20% on March?"
pub fn march_discount() -> Scenario {
    Scenario {
        name: "march-20pct-off",
        description: "ppm of all plans decreased by 20% in March",
        factors: vec![("m3", rat("0.8"))],
    }
}

/// §2 Example 1: "what if the ppm in the business calling plans are
/// increased by 10%?" — aligned with the `Business` subtree of Fig. 2,
/// so compression under any cut at or below `Business` loses nothing.
pub fn business_increase() -> Scenario {
    Scenario {
        name: "business-up-10pct",
        description: "ppm of business plans (SB1, SB2, E) increased by 10%",
        factors: vec![
            ("b1", rat("1.1")),
            ("b2", rat("1.1")),
            ("e", rat("1.1")),
        ],
    }
}

/// A tree-misaligned variant: only SB1 changes. Once `b1` is merged into
/// `SB` or `Business`, the compressed provenance can only approximate
/// this scenario — the loss the demo lets the audience observe.
pub fn sb1_only_increase() -> Scenario {
    Scenario {
        name: "sb1-only-up-10pct",
        description: "ppm of SB1 alone increased by 10% (not expressible after grouping)",
        factors: vec![("b1", rat("1.1"))],
    }
}

/// §4: "prices are usually changed uniformly during each quarter" — a
/// Q1-uniform change, aligned with the quarters tree.
pub fn q1_uniform_discount() -> Scenario {
    Scenario {
        name: "q1-uniform-5pct-off",
        description: "ppm decreased by 5% across the first quarter",
        factors: vec![
            ("m1", rat("0.95")),
            ("m2", rat("0.95")),
            ("m3", rat("0.95")),
        ],
    }
}

/// All telephony scenarios in demonstration order.
pub fn telephony_scenarios() -> Vec<Scenario> {
    vec![
        march_discount(),
        business_increase(),
        sb1_only_increase(),
        q1_uniform_discount(),
    ]
}

/// The demonstration catalogue as a named [`ScenarioSet`] — the four
/// single scenarios behind one sweepable surface (labels preserved).
pub fn telephony_scenario_set(reg: &mut VarRegistry) -> ScenarioSet {
    ScenarioSet::named(
        telephony_scenarios()
            .into_iter()
            .map(|s| (s.name, s.valuation(reg))),
    )
}

/// The explorer's scenario **grid**: the demo's three disjoint factor
/// groups — the March month (`m3`), the business plans (`b1, b2, e`) and
/// the standard plans (`p1, p2`) — each swept over `steps` evenly spaced
/// factors (March ±20%, plans ±10%), giving `steps³` scenarios described
/// in O(1) memory. `steps = 47` yields a 103 823-scenario grid.
pub fn telephony_grid(reg: &mut VarRegistry, steps: usize) -> ScenarioSet {
    telephony_grid_steps(reg, [steps; 3])
}

/// [`telephony_grid`] with a per-axis step count — the knob the streaming
/// fold-sweep experiments turn to reach 10⁶–10⁷ scenarios (`[100; 3]` is
/// a 10⁶-point grid, `[220; 3]` ≈ 1.06 × 10⁷) while the description stays
/// three axes. Zero steps on any axis empties the grid.
pub fn telephony_grid_steps(reg: &mut VarRegistry, steps: [usize; 3]) -> ScenarioSet {
    let rat = |s: &str| Rat::parse(s).expect("grid bound literal");
    ScenarioSet::grid()
        .push(Axis::linspace(
            march_discount().vars(reg),
            rat("0.8"),
            rat("1.2"),
            steps[0],
        ))
        .push(Axis::linspace(
            business_increase().vars(reg),
            rat("0.9"),
            rat("1.1"),
            steps[1],
        ))
        .push(Axis::linspace(
            [reg.var("p1"), reg.var("p2")],
            rat("0.9"),
            rat("1.1"),
            steps[2],
        ))
        .build()
        .expect("telephony grid axes are disjoint")
}

/// [`telephony_grid_steps`] with a **fourth factor axis** — the special
/// plans (`y1, y2, y3, f1, f2, v`, the full `Special` subtree of Fig. 2)
/// swept ±10% — so grids reach 10⁸⁺ scenarios while staying an O(axes)
/// description (`[100; 4]` is a 10⁸-point family) and every axis still
/// moves a whole tree group (compression stays lossless across the
/// grid). This is the scale knob for the parallel fold-combine engines
/// (`sweep_fold_par` and friends), whose per-worker streaming makes such
/// families tractable.
pub fn telephony_grid4(reg: &mut VarRegistry, steps: [usize; 4]) -> ScenarioSet {
    let rat = |s: &str| Rat::parse(s).expect("grid bound literal");
    let special: Vec<Var> = ["y1", "y2", "y3", "f1", "f2", "v"]
        .iter()
        .map(|n| reg.var(n))
        .collect();
    ScenarioSet::grid()
        .push(Axis::linspace(
            march_discount().vars(reg),
            rat("0.8"),
            rat("1.2"),
            steps[0],
        ))
        .push(Axis::linspace(
            business_increase().vars(reg),
            rat("0.9"),
            rat("1.1"),
            steps[1],
        ))
        .push(Axis::linspace(
            [reg.var("p1"), reg.var("p2")],
            rat("0.9"),
            rat("1.1"),
            steps[2],
        ))
        .push(Axis::linspace(special, rat("0.9"), rat("1.1"), steps[3]))
        .build()
        .expect("telephony grid axes are disjoint")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valuations_bind_factors_with_unit_default() {
        let mut reg = VarRegistry::new();
        let val = march_discount().valuation(&mut reg);
        let m3 = reg.lookup("m3").unwrap();
        assert_eq!(val.get(m3), Some(rat("0.8")));
        assert_eq!(val.get(reg.var("other")), Some(Rat::ONE));
    }

    #[test]
    fn business_scenario_is_uniform_over_group() {
        let mut reg = VarRegistry::new();
        let val = business_increase().valuation(&mut reg);
        for name in ["b1", "b2", "e"] {
            assert_eq!(val.get(reg.lookup(name).unwrap()), Some(rat("1.1")));
        }
    }

    #[test]
    fn scenario_set_carries_catalogue_labels() {
        let mut reg = VarRegistry::new();
        let set = telephony_scenario_set(&mut reg);
        assert_eq!(set.len(), 4);
        assert_eq!(set.label(0), Some("march-20pct-off"));
        let m3 = reg.lookup("m3").unwrap();
        let base = Valuation::with_default(Rat::ONE);
        assert_eq!(set.scenario_valuation(0, &base).get(m3), Some(rat("0.8")));
    }

    #[test]
    fn telephony_grid_steps_sets_per_axis_cardinality() {
        let mut reg = VarRegistry::new();
        let grid = telephony_grid_steps(&mut reg, [2, 3, 4]);
        assert_eq!(grid.len(), 24);
        // a 10⁷-scale grid is still three axes of O(steps) levels
        let huge = telephony_grid_steps(&mut VarRegistry::new(), [220, 220, 220]);
        assert_eq!(huge.len(), 10_648_000);
        assert_eq!(huge.axes().unwrap().len(), 3);
    }

    #[test]
    fn telephony_grid4_reaches_1e8_in_four_axes() {
        let mut reg = VarRegistry::new();
        let grid = telephony_grid4(&mut reg, [2, 3, 4, 5]);
        assert_eq!(grid.len(), 120);
        let axes = grid.axes().unwrap();
        assert_eq!(axes.len(), 4);
        assert_eq!(axes[3].vars().len(), 6); // the whole Special group moves together
        let huge = telephony_grid4(&mut VarRegistry::new(), [100; 4]);
        assert_eq!(huge.len(), 100_000_000);
        assert_eq!(huge.axes().unwrap().len(), 4);
    }

    #[test]
    fn telephony_grid_scales_as_steps_cubed() {
        let mut reg = VarRegistry::new();
        let grid = telephony_grid(&mut reg, 5);
        assert_eq!(grid.len(), 125);
        let axes = grid.axes().unwrap();
        assert_eq!(axes.len(), 3);
        assert_eq!(axes[0].levels().first(), Some(&rat("0.8")));
        assert_eq!(axes[0].levels().last(), Some(&rat("1.2")));
        assert_eq!(axes[1].vars().len(), 3); // b1, b2, e move together
        // a 10^5+ grid is still just three axes
        let big = telephony_grid(&mut VarRegistry::new(), 47);
        assert_eq!(big.len(), 103_823);
    }

    #[test]
    fn scenario_axis_reuses_the_factor_group() {
        let mut reg = VarRegistry::new();
        let axis = business_increase().axis(&mut reg, [rat("0.9"), rat("1.1")]);
        assert_eq!(axis.vars().len(), 3);
        assert_eq!(axis.levels().len(), 2);
    }

    #[test]
    fn scenario_catalogue_is_distinctly_named() {
        let all = telephony_scenarios();
        let mut names: Vec<&str> = all.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len());
    }
}
