//! The telephony workload — the paper's running example.
//!
//! Two constructions are provided:
//!
//! * [`Telephony::paper_example`] — the exact Figure 1 database (7
//!   customers, months 1 and 3). Running the revenue query over it must
//!   reproduce Example 2's polynomials `P1`/`P2` coefficient-for-
//!   coefficient (asserted in `tests/paper_example.rs`).
//! * [`Telephony::generate`] — the scalable database behind §4's numbers:
//!   `zips` zip codes (1055, as implied by `139,260 = 1055 × 11 × 12`),
//!   11 plans, 12 months, any number of customers. Customers are placed
//!   round-robin over (zip, plan) so every combination is inhabited,
//!   which makes the full provenance size exactly
//!   `zips × plans × months` monomials.
//!
//! The engine path materializes real tables and runs the paper's SQL; the
//! [`Telephony::direct_polyset`] fast path emits the identical aggregated
//! polynomials without materializing `customers × months` call rows
//! (needed for the 1M-customer experiment; equality with the engine path
//! is asserted in tests at small scale).

use cobra_core::tree::{paper_plans_tree, AbstractionTree};
use cobra_engine::{parameterize, Database, Relation, Value};
use cobra_provenance::{Monomial, PolySet, Polynomial, Valuation, Var, VarRegistry};
use cobra_util::{Rat, SplitMix64};

/// The 11 canonical plans: `(plan name, provenance variable)`, matching
/// Fig. 1/2 of the paper.
pub const PLANS: [(&str, &str); 11] = [
    ("A", "p1"),
    ("B", "p2"),
    ("F1", "f1"),
    ("F2", "f2"),
    ("Y1", "y1"),
    ("Y2", "y2"),
    ("Y3", "y3"),
    ("V", "v"),
    ("SB1", "b1"),
    ("SB2", "b2"),
    ("E", "e"),
];

/// Base price-per-minute of each plan, in cents (index-aligned with
/// [`PLANS`]). Monthly prices perturb these deterministically.
const BASE_PRICE_CENTS: [i64; 11] = [40, 45, 35, 30, 30, 25, 20, 25, 10, 10, 5];

/// Configuration of the scalable telephony database.
#[derive(Clone, Copy, Debug)]
pub struct TelephonyConfig {
    /// Number of customers (the paper demos with 1,000,000).
    pub customers: usize,
    /// Number of zip codes. 1055 reproduces the paper's provenance sizes.
    pub zips: usize,
    /// Number of months of call data (the paper uses a full year).
    pub months: u32,
    /// RNG seed for durations and price perturbations.
    pub seed: u64,
}

impl Default for TelephonyConfig {
    fn default() -> Self {
        TelephonyConfig {
            customers: 10_000,
            zips: 1055,
            months: 12,
            seed: 0xC0B2A,
        }
    }
}

impl TelephonyConfig {
    /// The §4 configuration: one million customers.
    pub fn paper_scale() -> TelephonyConfig {
        TelephonyConfig {
            customers: 1_000_000,
            ..TelephonyConfig::default()
        }
    }

    /// A configuration scaled down to `customers`, keeping everything
    /// else at the paper's values.
    pub fn with_customers(customers: usize) -> TelephonyConfig {
        TelephonyConfig {
            customers,
            ..TelephonyConfig::default()
        }
    }

    fn zip_of(&self, customer: usize) -> i64 {
        10_000 + (customer % self.zips) as i64
    }

    fn plan_of(&self, customer: usize) -> usize {
        // Round-robin over plans within each zip so every (zip, plan)
        // pair is inhabited once customers ≥ zips × 11.
        (customer / self.zips) % PLANS.len()
    }

    /// Deterministic, stateless call duration for a customer-month —
    /// shared by the engine path and the direct path so both produce the
    /// same polynomials.
    fn duration(&self, customer: usize, month: u32) -> i64 {
        let mut rng = SplitMix64::new(
            self.seed ^ (customer as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (month as u64) << 48,
        );
        rng.gen_range_inclusive(10, 1500)
    }

    /// Deterministic price of a plan in a month (exact rational, cents).
    fn price(&self, plan_idx: usize, month: u32) -> Rat {
        const PRICE_SALT: u64 = 0x5052_4943_455F_5341;
        let mut rng =
            SplitMix64::new(self.seed ^ PRICE_SALT ^ ((plan_idx as u64) << 32) ^ month as u64);
        let jitter = rng.gen_range_inclusive(-5, 5); // ±5 cents
        let cents = (BASE_PRICE_CENTS[plan_idx] + jitter).max(1);
        Rat::new(cents as i128, 100)
    }
}

/// The assembled telephony workload.
pub struct Telephony {
    /// The database with the `Price` column already parameterized.
    pub db: Database,
    /// The variable registry (plan vars + month vars).
    pub reg: VarRegistry,
    /// Plan variables, index-aligned with [`PLANS`].
    pub plan_vars: Vec<Var>,
    /// Month variables `m1..m{months}`.
    pub month_vars: Vec<Var>,
    /// The generating configuration.
    pub config: TelephonyConfig,
}

impl Telephony {
    /// The paper's revenue query (§2), verbatim.
    pub const REVENUE_SQL: &'static str = "SELECT Zip, SUM(Calls.Dur * Plans.Price) AS revenue \
         FROM Calls, Cust, Plans \
         WHERE Cust.Plan = Plans.Plan AND Cust.ID = Calls.CID AND Calls.Mo = Plans.Mo \
         GROUP BY Cust.Zip";

    /// Generates the full database (engine path). Memory grows with
    /// `customers × months` call rows; prefer [`Self::direct_polyset`]
    /// beyond ~100k customers.
    pub fn generate(config: TelephonyConfig) -> Telephony {
        let mut reg = VarRegistry::new();
        let plan_vars: Vec<Var> = PLANS.iter().map(|(_, v)| reg.var(v)).collect();
        let month_vars: Vec<Var> =
            (1..=config.months).map(|m| reg.var(&format!("m{m}"))).collect();

        let mut cust_rows = Vec::with_capacity(config.customers);
        for c in 0..config.customers {
            cust_rows.push(vec![
                Value::Int(c as i64 + 1),
                Value::str(PLANS[config.plan_of(c)].0),
                Value::Int(config.zip_of(c)),
            ]);
        }
        let cust = Relation::from_rows(["ID", "Plan", "Zip"], cust_rows).expect("arity");

        let mut call_rows = Vec::with_capacity(config.customers * config.months as usize);
        for c in 0..config.customers {
            for mo in 1..=config.months {
                call_rows.push(vec![
                    Value::Int(c as i64 + 1),
                    Value::Int(mo as i64),
                    Value::Int(config.duration(c, mo)),
                ]);
            }
        }
        let calls = Relation::from_rows(["CID", "Mo", "Dur"], call_rows).expect("arity");

        let mut plan_rows = Vec::with_capacity(PLANS.len() * config.months as usize);
        for (pi, (name, _)) in PLANS.iter().enumerate() {
            for mo in 1..=config.months {
                plan_rows.push(vec![
                    Value::str(name),
                    Value::Int(mo as i64),
                    Value::Num(config.price(pi, mo)),
                ]);
            }
        }
        let mut plans = Relation::from_rows(["Plan", "Mo", "Price"], plan_rows).expect("arity");

        // Instrument the Price cells: price(plan, mo) ↦ price · plan_var · m_mo
        // (the paper's Example 2 parameterization).
        parameterize(&mut plans, "Price", |row| {
            let plan_idx = match &row[0] {
                Value::Str(s) => PLANS.iter().position(|(n, _)| n == &&**s)?,
                _ => return None,
            };
            let mo = match row[1] {
                Value::Int(m) => m as usize,
                _ => return None,
            };
            Some(Monomial::from_pairs([
                (plan_vars[plan_idx], 1),
                (month_vars[mo - 1], 1),
            ]))
        })
        .expect("Price column is numeric");

        let mut db = Database::new();
        db.insert("Cust", cust);
        db.insert("Calls", calls);
        db.insert("Plans", plans);
        Telephony {
            db,
            reg,
            plan_vars,
            month_vars,
            config,
        }
    }

    /// Runs the revenue query and extracts one polynomial per zip.
    pub fn revenue_polyset(&self) -> PolySet<Rat> {
        let result = self
            .db
            .sql(Self::REVENUE_SQL)
            .expect("revenue query is valid");
        result
            .extract_polyset(&["Zip"], "revenue")
            .expect("revenue column holds polynomials")
    }

    /// Emits the same polynomials as the engine path without
    /// materializing call rows: coefficient of `plan_var·m_mo` in zip `z`
    /// is `Σ_{customers c in (z, plan)} duration(c, mo) × price(plan, mo)`.
    pub fn direct_polyset(
        config: TelephonyConfig,
        reg: &mut VarRegistry,
    ) -> (PolySet<Rat>, Vec<Var>, Vec<Var>) {
        let plan_vars: Vec<Var> = PLANS.iter().map(|(_, v)| reg.var(v)).collect();
        let month_vars: Vec<Var> =
            (1..=config.months).map(|m| reg.var(&format!("m{m}"))).collect();
        // dur_sum[zip][plan][month] accumulated over customers
        let nz = config.zips;
        let np = PLANS.len();
        let nm = config.months as usize;
        let mut dur_sum = vec![0i64; nz * np * nm];
        for c in 0..config.customers {
            let z = c % nz;
            let p = config.plan_of(c);
            for mo in 1..=config.months {
                dur_sum[(z * np + p) * nm + mo as usize - 1] += config.duration(c, mo);
            }
        }
        let mut set = PolySet::new();
        for z in 0..nz {
            let mut poly = Polynomial::zero();
            for p in 0..np {
                for mo in 1..=config.months {
                    let total = dur_sum[(z * np + p) * nm + mo as usize - 1];
                    if total == 0 {
                        continue;
                    }
                    let coeff = Rat::int(total) * config.price(p, mo);
                    poly.add_term(
                        Monomial::from_pairs([
                            (plan_vars[p], 1),
                            (month_vars[mo as usize - 1], 1),
                        ]),
                        coeff,
                    );
                }
            }
            set.push(format!("{}", 10_000 + z), poly);
        }
        (set, plan_vars, month_vars)
    }

    /// The Fig. 2 abstraction tree over the plan variables.
    pub fn plans_tree(reg: &mut VarRegistry) -> AbstractionTree {
        paper_plans_tree(reg)
    }

    /// The quarters tree over the month variables described in §4:
    /// `Year(q1(m1,m2,m3), q2(m4,m5,m6), …)`.
    pub fn months_tree(reg: &mut VarRegistry, months: u32) -> AbstractionTree {
        let mut quarters: Vec<String> = Vec::new();
        let mut q = 0;
        let mut current: Vec<String> = Vec::new();
        for m in 1..=months {
            current.push(format!("m{m}"));
            if current.len() == 3 || m == months {
                q += 1;
                quarters.push(format!("q{q}({})", current.join(",")));
                current.clear();
            }
        }
        let src = format!("Year({})", quarters.join(","));
        AbstractionTree::parse(&src, reg).expect("generated tree is well-formed")
    }

    /// The all-ones base valuation ("no change").
    pub fn base_valuation(&self) -> Valuation<Rat> {
        Valuation::with_default(Rat::ONE)
    }

    /// The exact Figure 1 database (7 customers, months 1 and 3),
    /// parameterized like Example 2. Returns the workload with tables
    /// `Cust`, `Calls`, `Plans` in the database.
    pub fn paper_example() -> Telephony {
        let mut reg = VarRegistry::new();
        // Only the 7 plans of Fig. 1, but register all 11 vars so the
        // Fig. 2 tree applies unchanged.
        let plan_vars: Vec<Var> = PLANS.iter().map(|(_, v)| reg.var(v)).collect();
        let month_vars: Vec<Var> = vec![reg.var("m1"), reg.var("m3")];

        let cust = Relation::from_rows(
            ["ID", "Plan", "Zip"],
            vec![
                vec![Value::Int(1), Value::str("A"), Value::Int(10001)],
                vec![Value::Int(2), Value::str("F1"), Value::Int(10001)],
                vec![Value::Int(3), Value::str("SB1"), Value::Int(10002)],
                vec![Value::Int(4), Value::str("Y1"), Value::Int(10001)],
                vec![Value::Int(5), Value::str("V"), Value::Int(10001)],
                vec![Value::Int(6), Value::str("E"), Value::Int(10002)],
                vec![Value::Int(7), Value::str("SB2"), Value::Int(10002)],
            ],
        )
        .expect("arity");

        let durs_m1 = [522, 364, 779, 253, 168, 1044, 697];
        let durs_m3 = [480, 327, 805, 290, 121, 1130, 671];
        let mut call_rows = Vec::new();
        for (i, &d) in durs_m1.iter().enumerate() {
            call_rows.push(vec![Value::Int(i as i64 + 1), Value::Int(1), Value::Int(d)]);
        }
        for (i, &d) in durs_m3.iter().enumerate() {
            call_rows.push(vec![Value::Int(i as i64 + 1), Value::Int(3), Value::Int(d)]);
        }
        let calls = Relation::from_rows(["CID", "Mo", "Dur"], call_rows).expect("arity");

        let prices_m1: [(&str, &str); 7] = [
            ("A", "0.4"),
            ("F1", "0.35"),
            ("Y1", "0.3"),
            ("V", "0.25"),
            ("SB1", "0.1"),
            ("SB2", "0.1"),
            ("E", "0.05"),
        ];
        let prices_m3: [(&str, &str); 7] = [
            ("A", "0.5"),
            ("F1", "0.35"),
            ("Y1", "0.25"),
            ("V", "0.2"),
            ("SB1", "0.1"),
            ("SB2", "0.15"),
            ("E", "0.05"),
        ];
        let mut plan_rows = Vec::new();
        for (plan, price) in prices_m1 {
            plan_rows.push(vec![
                Value::str(plan),
                Value::Int(1),
                Value::Num(Rat::parse(price).expect("price literal")),
            ]);
        }
        for (plan, price) in prices_m3 {
            plan_rows.push(vec![
                Value::str(plan),
                Value::Int(3),
                Value::Num(Rat::parse(price).expect("price literal")),
            ]);
        }
        let mut plans = Relation::from_rows(["Plan", "Mo", "Price"], plan_rows).expect("arity");

        parameterize(&mut plans, "Price", |row| {
            let plan_idx = match &row[0] {
                Value::Str(s) => PLANS.iter().position(|(n, _)| n == &&**s)?,
                _ => return None,
            };
            let mv = match row[1] {
                Value::Int(1) => month_vars[0],
                Value::Int(3) => month_vars[1],
                _ => return None,
            };
            Some(Monomial::from_pairs([(plan_vars[plan_idx], 1), (mv, 1)]))
        })
        .expect("Price column is numeric");

        let mut db = Database::new();
        db.insert("Cust", cust);
        db.insert("Calls", calls);
        db.insert("Plans", plans);
        Telephony {
            db,
            reg,
            plan_vars,
            month_vars,
            config: TelephonyConfig {
                customers: 7,
                zips: 2,
                months: 3,
                seed: 0,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_matches_example2() {
        let t = Telephony::paper_example();
        let set = t.revenue_polyset();
        assert_eq!(set.len(), 2);
        let p1 = set.get("10001").unwrap();
        let p2 = set.get("10002").unwrap();
        assert_eq!(p1.num_terms(), 8);
        assert_eq!(p2.num_terms(), 6);
        let reg = &t.reg;
        let coeff = |poly: &Polynomial<Rat>, a: &str, b: &str| {
            poly.coeff_of(&Monomial::from_pairs([
                (reg.lookup(a).unwrap(), 1),
                (reg.lookup(b).unwrap(), 1),
            ]))
        };
        // Example 2, verbatim
        assert_eq!(coeff(p1, "p1", "m1"), Rat::parse("208.8").unwrap());
        assert_eq!(coeff(p1, "p1", "m3"), Rat::parse("240").unwrap());
        assert_eq!(coeff(p1, "f1", "m1"), Rat::parse("127.4").unwrap());
        assert_eq!(coeff(p1, "f1", "m3"), Rat::parse("114.45").unwrap());
        assert_eq!(coeff(p1, "y1", "m1"), Rat::parse("75.9").unwrap());
        assert_eq!(coeff(p1, "y1", "m3"), Rat::parse("72.5").unwrap());
        assert_eq!(coeff(p1, "v", "m1"), Rat::parse("42").unwrap());
        assert_eq!(coeff(p1, "v", "m3"), Rat::parse("24.2").unwrap());
        assert_eq!(coeff(p2, "b1", "m1"), Rat::parse("77.9").unwrap());
        assert_eq!(coeff(p2, "b1", "m3"), Rat::parse("80.5").unwrap());
        assert_eq!(coeff(p2, "e", "m1"), Rat::parse("52.2").unwrap());
        assert_eq!(coeff(p2, "e", "m3"), Rat::parse("56.5").unwrap());
        assert_eq!(coeff(p2, "b2", "m1"), Rat::parse("69.7").unwrap());
        assert_eq!(coeff(p2, "b2", "m3"), Rat::parse("100.65").unwrap());
    }

    #[test]
    fn engine_and_direct_paths_agree() {
        let config = TelephonyConfig {
            customers: 500,
            zips: 13,
            months: 4,
            seed: 42,
        };
        let t = Telephony::generate(config);
        let engine_set = t.revenue_polyset();
        let mut reg2 = VarRegistry::new();
        let (direct_set, _, _) = Telephony::direct_polyset(config, &mut reg2);
        // Same zips, same polynomials (variable ids align: both register
        // plan vars then month vars in the same order).
        assert_eq!(engine_set.len(), direct_set.len());
        for (label, direct_poly) in direct_set.iter() {
            let engine_poly = engine_set
                .get(label)
                .unwrap_or_else(|| panic!("zip {label} missing from engine output"));
            assert_eq!(engine_poly, direct_poly, "zip {label}");
        }
    }

    #[test]
    fn full_coverage_size_formula() {
        // customers ≥ zips × plans ⇒ every (zip, plan, month) inhabited
        let config = TelephonyConfig {
            customers: 11 * 7,
            zips: 7,
            months: 5,
            seed: 1,
        };
        let mut reg = VarRegistry::new();
        let (set, _, _) = Telephony::direct_polyset(config, &mut reg);
        assert_eq!(set.len(), 7);
        assert_eq!(set.total_monomials(), 7 * 11 * 5);
    }

    #[test]
    fn generation_is_deterministic() {
        let config = TelephonyConfig::with_customers(200);
        let mut r1 = VarRegistry::new();
        let mut r2 = VarRegistry::new();
        let (a, _, _) = Telephony::direct_polyset(config, &mut r1);
        let (b, _, _) = Telephony::direct_polyset(config, &mut r2);
        assert_eq!(a, b);
    }

    #[test]
    fn months_tree_shape() {
        let mut reg = VarRegistry::new();
        let t = Telephony::months_tree(&mut reg, 12);
        assert_eq!(t.num_leaves(), 12);
        let q1 = t.node_by_name("q1").unwrap();
        assert_eq!(t.leaves_under(q1).len(), 3);
        assert_eq!(t.children(t.root()).len(), 4);
        // uneven month counts still partition
        let mut reg2 = VarRegistry::new();
        let t2 = Telephony::months_tree(&mut reg2, 7);
        assert_eq!(t2.num_leaves(), 7);
        assert_eq!(t2.children(t2.root()).len(), 3);
    }

    #[test]
    fn prices_are_positive_exact_cents() {
        let config = TelephonyConfig::default();
        for p in 0..PLANS.len() {
            for mo in 1..=12 {
                let price = config.price(p, mo);
                assert!(price > Rat::ZERO);
                assert!(price.denom() <= 100);
            }
        }
    }
}
