//! # cobra-datagen
//!
//! Workload generators for the COBRA reproduction:
//!
//! * [`telephony`] — the paper's running example: the exact Figure 1
//!   database, and a scalable generator (up to the paper's one million
//!   customers) whose provenance sizes reproduce §4's numbers exactly
//!   (139,260 monomials full; 88,620 and 37,980 compressed).
//! * [`tpch`] — a TPC-H-style database generator (`dbgen`-lite: same
//!   schema and key structure, seeded and scale-factor driven) plus
//!   provenance-parameterized analogues of Q1/Q3/Q5/Q6/Q10 and the
//!   geography/time abstraction trees the demo describes.
//! * [`scenarios`] — the hypothetical scenarios used in the paper's
//!   walk-through ("what if the ppm of all plans decreased by 20% in
//!   March?", "business plans +10%").
//! * [`synthetic`] — random polynomial sets and abstraction trees for
//!   stress tests, property tests and the optimizer ablations.
//!
//! All generation is deterministic per seed (SplitMix64), so the numbers
//! in EXPERIMENTS.md are reproducible bit-for-bit.

pub mod scenarios;
pub mod synthetic;
pub mod telephony;
pub mod tpch;

pub use scenarios::Scenario;
pub use telephony::{Telephony, TelephonyConfig};
pub use tpch::{TpchConfig, TpchDatabase};
