//! Grid-driven scenario exploration: the "millions of hypotheticals"
//! workflow on the paper's running example.
//!
//! A `ScenarioSet` grid describes a cartesian product of factor axes in
//! O(axes) memory; `CobraSession::sweep` streams it through the compiled
//! batch engines without ever materializing per-scenario valuations.
//!
//! Run with: `cargo run --release --example grid_sweep [steps]`
//! (default 21 → 21³ = 9,261 scenarios; 47 → 103,823).

use cobra::core::{scenario_impacts, CobraSession, ScenarioSet};
use cobra::core::scenario_set::Axis;
use cobra::util::table::thousands;
use cobra::util::{Rat, Stopwatch, Table};

const PAPER_POLYS: &str = "\
P1 = 208.8*p1*m1 + 240*p1*m3 + 127.4*f1*m1 + 114.45*f1*m3 \
   + 75.9*y1*m1 + 72.5*y1*m3 + 42*v*m1 + 24.2*v*m3
P2 = 77.9*b1*m1 + 80.5*b1*m3 + 52.2*e*m1 + 56.5*e*m3 + 69.7*b2*m1 + 100.65*b2*m3";

fn main() {
    // at least 2 levels per axis: the corner table below indexes the grid
    // ends, which degenerate on single-point axes
    let steps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(21)
        .max(2);
    let rat = |s: &str| Rat::parse(s).unwrap();

    let mut session = CobraSession::from_text(PAPER_POLYS).unwrap();
    session
        .add_tree_text(
            "Plans(Standard(p1,p2), Special(Y(y1,y2,y3), F(f1,f2), v), Business(SB(b1,b2), e))",
        )
        .unwrap();
    session.set_bound(6);
    let report = session.compress().unwrap();
    println!(
        "compressed {} → {} monomials under bound {}\n",
        report.original_size, report.compressed_size, report.bound
    );

    // Three factor axes, all aligned with the abstraction: March price,
    // the business plans, the standard plans.
    let m3 = session.registry_mut().var("m3");
    let b_vars = ["b1", "b2", "e"].map(|n| session.registry_mut().var(n));
    let p_vars = ["p1", "p2"].map(|n| session.registry_mut().var(n));
    let grid = ScenarioSet::grid()
        .push(Axis::linspace([m3], rat("0.8"), rat("1.2"), steps))
        .push(Axis::linspace(b_vars, rat("0.9"), rat("1.1"), steps))
        .push(Axis::linspace(p_vars, rat("0.9"), rat("1.1"), steps))
        .build()
        .unwrap();

    let sw = Stopwatch::start();
    let sweep = session.sweep(&grid).unwrap();
    println!(
        "swept {} scenarios (exact rational, full AND compressed sides) in {:.0} ms; \
         every point exact: {}\n",
        thousands(sweep.len() as u64),
        sw.elapsed_ms(),
        sweep.is_exact()
    );

    // Corners of the grid, side by side.
    let mut table = Table::new(["scenario", "P1 full", "P1 compressed", "P2 full"]).numeric();
    let corners = [0, steps - 1, sweep.len() - steps, sweep.len() - 1];
    for i in corners {
        let cmp = sweep.comparison(i);
        table.row([
            grid.describe(i, session.registry()),
            format!("{}", cmp.rows[0].full),
            format!("{}", cmp.rows[0].compressed),
            format!("{}", cmp.rows[1].full),
        ]);
    }
    println!("{table}");

    // Which grid points move the results most? (streamed, no per-scenario
    // valuations here either)
    let impacts = scenario_impacts(
        session.polynomials(),
        session.base_valuation(),
        &grid,
    );
    let (argmax, max) = impacts
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.cmp(b.1))
        .unwrap();
    println!(
        "\nlargest move over the base: {} (|Δ| = {:.2})",
        grid.describe(argmax, session.registry()),
        max.to_f64()
    );

    // A deliberately misaligned axis: y1 alone inside the Special group
    // can only be approximated after compression.
    let y1 = session.registry_mut().var("y1");
    let lossy = ScenarioSet::grid()
        .push(Axis::linspace([m3], rat("0.8"), rat("1.2"), steps))
        .push(Axis::linspace([y1], rat("0.5"), rat("1.5"), steps))
        .build()
        .unwrap();
    let lossy_sweep = session.sweep(&lossy).unwrap();
    println!(
        "\nmisaligned grid (y1 alone, {} scenarios): max rel. error {:.4} — \
         the compression loss the explorer lets the analyst inspect",
        thousands(lossy_sweep.len() as u64),
        lossy_sweep.max_rel_error()
    );
}
