//! One-pass Pareto-frontier compression: the multi-budget exploration
//! workflow the unified planner opens.
//!
//! The COBRA demo's interactive screen lets an analyst drag the size
//! bound and watch the expressiveness/size trade-off respond. Before the
//! planner, every bound change re-ran the whole pipeline (group analysis,
//! optimization, application). Now a session plans the **entire**
//! trade-off curve once (`compress_frontier`), and each bound is an
//! `O(log frontier)` re-selection (`select_bound`) that reuses the cached
//! full-side engines and rebuilds only the compressed side — identical
//! results, a fraction of the cost (experiment E12 measures the gap).
//!
//! ```text
//! cargo run --release --example frontier
//! ```

use cobra::core::{frontier_table, CobraSession};
use cobra::datagen::telephony::{Telephony, TelephonyConfig};
use cobra::util::Stopwatch;

fn main() {
    // A mid-size telephony workload (the paper's schema at 50k customers).
    let config = TelephonyConfig::with_customers(50_000);
    let mut reg = cobra::provenance::VarRegistry::new();
    let (polys, _, _) = Telephony::direct_polyset(config, &mut reg);
    let tree = Telephony::plans_tree(&mut reg);
    let full_size = polys.total_monomials();
    println!("telephony provenance: {full_size} monomials\n");

    let mut session = CobraSession::new(reg, polys);
    session.add_tree(tree);

    // 1. Plan the whole frontier in one pass.
    let sw = Stopwatch::start();
    let frontier = session.compress_frontier().unwrap().clone();
    println!(
        "frontier planned in {:.1} ms — {} selectable points:\n",
        sw.elapsed_ms(),
        frontier.len()
    );
    println!("{}", frontier_table(&frontier, &session.trees()[0]));

    // 2. Sweep the bound axis: every budget is a re-selection.
    let budgets: Vec<u64> = frontier
        .points()
        .iter()
        .map(|p| p.size)
        .collect();
    let sw = Stopwatch::start();
    for &bound in &budgets {
        let report = session.select_bound(bound).unwrap();
        println!(
            "bound {:>8} → {:>8} monomials, {} meta-variables ({})",
            bound,
            report.compressed_size,
            report.compressed_vars,
            report.cuts[0],
        );
    }
    println!(
        "\n{} bounds re-selected in {:.1} ms total",
        budgets.len(),
        sw.elapsed_ms()
    );

    // 3. The selected compression is a full session state: scenarios run
    //    against it exactly as after a plain `compress()`.
    session.select_bound(budgets[budgets.len() / 2]).unwrap();
    let m3 = session.registry_mut().var("m3");
    let discount = cobra::provenance::Valuation::with_default(cobra::util::Rat::ONE)
        .bind(m3, cobra::util::Rat::parse("0.8").unwrap());
    let cmp = session.assign(&discount).unwrap();
    println!(
        "\nMarch −20% under the mid-frontier bound: max rel. error {:.2e} \
         (months sit outside the tree, so the hypothetical is lossless: {})",
        cmp.max_rel_error(),
        cmp.is_exact()
    );
}
