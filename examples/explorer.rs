//! Bound explorer: "interactively examine the effect of the bound on the
//! query results, provenance size and assignment time" (§4) — rendered as
//! a full sweep over every feasible bound.
//!
//! Run with: `cargo run --release --example explorer [customers]`
//! (default 20,000).

use cobra::core::{pareto_frontier, GroupAnalysis};
use cobra::datagen::scenarios;
use cobra::datagen::telephony::{Telephony, TelephonyConfig};
use cobra::provenance::{DenseValuation, VarRegistry};
use cobra::util::table::thousands;
use cobra::util::timing::time_best_of;
use cobra::util::Table;

fn main() {
    let customers: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    let config = TelephonyConfig::with_customers(customers);
    let mut reg = VarRegistry::new();
    let (polys, _, _) = Telephony::direct_polyset(config, &mut reg);
    let tree = Telephony::plans_tree(&mut reg);
    let analysis = GroupAnalysis::analyze(&polys, &tree).expect("telephony fits one tree");

    println!(
        "telephony with {} customers: {} monomials before compression\n",
        thousands(customers as u64),
        thousands(analysis.total_monomials())
    );

    // The full expressiveness/size trade-off curve of the Fig. 2 tree —
    // every bound a user could set collapses onto one of these points.
    let frontier = pareto_frontier(&tree, &analysis);
    let scenario_rat = scenarios::march_discount().valuation(&mut reg);
    let scenario = scenario_rat.map(|c| c.to_f64());
    let full64 = polys.to_f64_set();
    let (_, t_full) = {
        let dense = DenseValuation::from_valuation(&scenario, reg.len(), 1.0);
        time_best_of(1, 5, || {
            std::hint::black_box(full64.eval_dense(&dense).len())
        })
    };

    let mut table = Table::new([
        "plan variables",
        "compressed size",
        "size ratio",
        "assignment time",
        "speedup",
    ])
    .numeric();
    for point in &frontier {
        // materialize the cut of this cardinality to time the assignment
        let sol = cobra::core::dp::optimize_for_cardinality(&tree, &analysis, point.variables)
            .expect("frontier points are attainable");
        let applied = cobra::core::apply_cut(&polys, &tree, &sol.cut, &mut reg);
        let comp64 = applied.compressed.to_f64_set();
        let dense = DenseValuation::from_valuation(&scenario, reg.len(), 1.0);
        let (_, t_comp) = time_best_of(1, 5, || {
            std::hint::black_box(comp64.eval_dense(&dense).len())
        });
        table.row([
            point.variables.to_string(),
            thousands(point.size),
            format!("{:.3}", point.size as f64 / analysis.total_monomials() as f64),
            format!("{:.3} ms", t_comp.as_secs_f64() * 1e3),
            format!(
                "{:.0}%",
                cobra::util::timing::speedup_percent(t_full, t_comp)
            ),
        ]);
    }
    println!("{table}");
    println!(
        "full provenance assignment time: {:.3} ms",
        t_full.as_secs_f64() * 1e3
    );
    println!(
        "\nreading: each row is the optimal abstraction at that expressiveness; \
         pick any bound and COBRA lands on the row with the most variables \
         whose size fits."
    );
}
