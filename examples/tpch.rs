//! The TPC-H phase of the demonstration (§4): run the query subset with
//! provenance tracking, compress against the geography and time trees,
//! and explore a bound sweep per query.
//!
//! Run with: `cargo run --release --example tpch [scale_factor]`
//! (default 0.01).

use cobra::core::{CobraSession, GroupAnalysis};
use cobra::datagen::tpch::{
    geography_tree, time_tree, InstrumentedTpch, TpchConfig, TpchDatabase, TPCH_QUERIES,
};
use cobra::provenance::{ProvenanceStats, Valuation};
use cobra::util::table::thousands;
use cobra::util::{Rat, Stopwatch, Table};

fn main() {
    let sf: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.01);
    println!("TPC-H dbgen-lite at sf {sf}");

    let sw = Stopwatch::start();
    let instrumented = InstrumentedTpch::new(TpchDatabase::generate(TpchConfig::sf(sf)));
    println!(
        "generated {} lineitems in {:.1} ms\n",
        thousands(instrumented.tpch.lineitems as u64),
        sw.elapsed_ms()
    );

    let mut summary = Table::new([
        "query",
        "result tuples",
        "monomials",
        "geo root",
        "geo+time roots",
    ])
    .numeric();

    for query in &TPCH_QUERIES {
        let sw = Stopwatch::start();
        let polys = match instrumented.run(query) {
            Ok(p) => p,
            Err(e) => {
                println!("{}: {e}", query.name);
                continue;
            }
        };
        let stats = ProvenanceStats::compute(&polys);
        println!(
            "{} ({}) in {:.1} ms — {}",
            query.name,
            query.description,
            sw.elapsed_ms(),
            stats
        );

        // Compression against geography alone, then geography + time.
        let mut session = CobraSession::new(instrumented.reg.clone(), polys.clone());
        let geo = geography_tree(session.registry_mut());
        session.add_tree(geo);
        let geo_analysis =
            GroupAnalysis::analyze(session.polynomials(), &session.trees()[0])
                .expect("single nation var per monomial");
        let geo_root =
            geo_analysis.compressed_size(&[session.trees()[0].root()]);

        let time = time_tree(session.registry_mut());
        session.add_tree(time);
        session.set_bound(1); // force the coarsest abstraction…
        let both_roots = match session.compress() {
            Ok(r) => r.compressed_size,
            Err(cobra::core::CoreError::InfeasibleBound { min_achievable }) => min_achievable,
            Err(e) => panic!("{e}"),
        };
        summary.row([
            query.name.to_owned(),
            polys.len().to_string(),
            thousands(stats.total_monomials as u64),
            thousands(geo_root),
            thousands(both_roots),
        ]);

        // Bound sweep on Q1 (the most compressible): show the Pareto
        // frontier of expressiveness vs. size for the geography tree.
        if query.name == "Q1" {
            let frontier = cobra::core::pareto_frontier(&session.trees()[0], &geo_analysis);
            println!("  Q1 geography Pareto frontier (variables → size):");
            for point in frontier.iter().take(8) {
                println!("    {:>3} vars → {:>6} monomials", point.variables, point.size);
            }
            if frontier.len() > 8 {
                println!("    … ({} points total)", frontier.len());
            }
        }
    }
    println!("\n{summary}");

    // A geography-aligned what-if on Q5: ASIA suppliers +5%.
    let q5 = &TPCH_QUERIES[2];
    if let Ok(polys) = instrumented.run(q5) {
        let mut session = CobraSession::new(instrumented.reg.clone(), polys);
        let geo = geography_tree(session.registry_mut());
        session.add_tree(geo);
        session.set_bound(60);
        if session.compress().is_ok() {
            let mut scenario = Valuation::with_default(Rat::ONE);
            for name in ["india", "indonesia", "japan", "china", "vietnam"] {
                scenario.set(session.registry_mut().var(name), Rat::parse("1.05").unwrap());
            }
            let cmp = session.assign(&scenario).expect("assignment");
            println!(
                "Q5 what-if (ASIA +5%): max rel. error {:.6}, exact: {}",
                cmp.max_rel_error(),
                cmp.is_exact()
            );
        }
    }
}
