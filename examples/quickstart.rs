//! Quickstart: the paper's running example end to end.
//!
//! Builds the Figure 1 database, runs the revenue query with provenance
//! tracking (reproducing Example 2's polynomials), compresses with the
//! Figure 2 abstraction tree (Example 4), and evaluates the two
//! hypothetical scenarios of Example 1.
//!
//! Run with: `cargo run --release --example quickstart`

use cobra::core::CobraSession;
use cobra::datagen::scenarios;
use cobra::datagen::telephony::Telephony;
use cobra::util::Rat;

fn main() {
    // ── 1. The provenance engine side (Fig. 4, left) ────────────────────
    let telephony = Telephony::paper_example();
    println!("Figure 1 database:");
    for name in ["Cust", "Calls", "Plans"] {
        let table = telephony.db.table(name).expect("table exists");
        println!("\n{name} ({} rows)", table.len());
    }
    println!("\nRevenue query:\n{}\n", Telephony::REVENUE_SQL);

    let polys = telephony.revenue_polyset();
    println!("Provenance polynomials (paper Example 2):");
    print!("{}", polys.display(&telephony.reg));

    // ── 2. The COBRA side: tree + bound → compression ──────────────────
    let mut session = CobraSession::new(telephony.reg, polys);
    session.enable_trace();
    session
        .add_tree_text(
            "Plans(Standard(p1,p2), Special(Y(y1,y2,y3), F(f1,f2), v), Business(SB(b1,b2), e))",
        )
        .expect("Fig. 2 tree parses");
    session.set_bound(6);
    let report = session.compress().expect("bound 6 is feasible");
    println!("\nCompression report (bound 6):\n{report}");

    println!("Compressed polynomials:");
    print!(
        "{}",
        session
            .compressed_polynomials()
            .expect("compressed")
            .display(session.registry())
    );

    // The meta-variable screen (paper Fig. 5).
    println!("\nMeta-variables (Fig. 5 screen):");
    for row in session.meta_summary().expect("compressed") {
        let leaves: Vec<String> = row
            .leaves
            .iter()
            .map(|(n, v)| format!("{n}={v}"))
            .collect();
        println!(
            "  {} = {{{}}}  default {}",
            row.name,
            leaves.join(", "),
            row.default_value
        );
    }

    // ── 3. Hypothetical reasoning ───────────────────────────────────────
    for scenario in [scenarios::march_discount(), scenarios::business_increase()] {
        let valuation = scenario.valuation(session.registry_mut());
        let cmp = session.assign(&valuation).expect("assignment");
        println!("\nScenario: {}", scenario.description);
        println!("  zip    full        compressed  rel.err");
        for row in &cmp.rows {
            println!(
                "  {:<6} {:<11} {:<11} {:.4}",
                row.label,
                row.full.to_f64(),
                row.compressed.to_f64(),
                row.rel_error()
            );
        }
        if cmp.is_exact() {
            println!("  (compression introduced no error for this scenario)");
        }
    }

    // A scenario the abstraction cannot express exactly:
    let misaligned = scenarios::sb1_only_increase();
    let valuation = misaligned.valuation(session.registry_mut());
    let cmp = session.assign(&valuation).expect("assignment");
    println!("\nScenario: {}", misaligned.description);
    println!(
        "  max relative error from compression: {:.4}",
        cmp.max_rel_error()
    );

    // ── 4. Sensitivity analysis (extension): which parameters matter? ──
    use cobra::core::SensitivityReport;
    use cobra::provenance::Valuation;
    let sensitivity = SensitivityReport::compute(
        session.polynomials(),
        &Valuation::with_default(Rat::ONE),
    );
    println!("\nMost sensitive parameters (|∂revenue/∂x| at the base valuation):");
    for (var, s) in sensitivity.top(5) {
        println!("  {:<4} {}", session.registry().name(*var), s);
    }

    // ── 5. Under the hood (the demo's final phase) ──────────────────────
    println!("\nTrace:");
    for line in session.trace() {
        println!("  {line}");
    }

    // Sanity: exact rational arithmetic reproduces 522 × 0.4 = 208.8.
    assert_eq!(
        Rat::int(522) * Rat::parse("0.4").unwrap(),
        Rat::parse("208.8").unwrap()
    );
}
