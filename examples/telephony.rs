//! The §4 demonstration at scale: the telephony database with up to one
//! million customers, the two bounds the paper reports, and the induced
//! provenance sizes and assignment speedups.
//!
//! Run with: `cargo run --release --example telephony [customers]`
//! (default 100,000; pass 1000000 for the paper's full scale).

use cobra::core::CobraSession;
use cobra::datagen::scenarios;
use cobra::datagen::telephony::{Telephony, TelephonyConfig};
use cobra::provenance::{ProvenanceStats, VarRegistry};
use cobra::util::table::thousands;
use cobra::util::{Stopwatch, Table};

fn main() {
    let customers: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    let config = TelephonyConfig::with_customers(customers);
    println!(
        "telephony: {} customers, {} zips, {} months (seed {})",
        thousands(customers as u64),
        config.zips,
        config.months,
        config.seed
    );

    // Generate provenance via the verified direct path (the engine path
    // materializes customers × months call rows; see DESIGN.md).
    let sw = Stopwatch::start();
    let mut reg = VarRegistry::new();
    let (polys, _, _) = Telephony::direct_polyset(config, &mut reg);
    println!(
        "provenance generated in {:.1} ms: {}",
        sw.elapsed_ms(),
        ProvenanceStats::compute(&polys)
    );

    let mut session = CobraSession::new(reg, polys);
    session
        .add_tree_text(
            "Plans(Standard(p1,p2), Special(Y(y1,y2,y3), F(f1,f2), v), Business(SB(b1,b2), e))",
        )
        .expect("Fig. 2 tree parses");

    // The two bounds §4 reports, plus the uncompressed baseline.
    let full = session.polynomials().total_monomials() as u64;
    let mut table = Table::new([
        "bound",
        "compressed size",
        "variables",
        "cut",
        "assignment speedup",
    ])
    .numeric();
    for bound in [full, 94_600, 38_600] {
        session.set_bound(bound);
        let report = match session.compress() {
            Ok(r) => r,
            Err(e) => {
                println!("bound {bound}: {e}");
                continue;
            }
        };
        let scenario = scenarios::march_discount().valuation(session.registry_mut());
        let speedup = session
            .measure_speedup(&scenario, 1, 5)
            .expect("compressed");
        table.row([
            thousands(bound),
            thousands(report.compressed_size),
            report.compressed_vars.to_string(),
            report.cuts.join("; "),
            format!("{:.0}%", speedup.speedup_percent()),
        ]);
    }
    println!("\n{table}");
    println!(
        "paper (1M customers): full 139,260; bound 94,600 → 88,620 (47% speedup); \
         bound 38,600 → 37,980 (79% speedup)"
    );

    // What-if: evaluate the paper's scenarios under the tightest bound.
    session.set_bound(38_600.min(full));
    if session.compress().is_ok() {
        for scenario in scenarios::telephony_scenarios() {
            let valuation = scenario.valuation(session.registry_mut());
            let cmp = session.assign(&valuation).expect("assignment");
            println!(
                "scenario {:<22} max rel. error {:.6}  (exact: {})",
                scenario.name,
                cmp.max_rel_error(),
                cmp.is_exact()
            );
        }
    }
}
