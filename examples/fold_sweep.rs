//! Streaming fold-sweeps: aggregate hypothetical questions over grids far
//! too large to materialize.
//!
//! `CobraSession::sweep` returns an O(scenarios × polys) result matrix —
//! fine at 10⁵ scenarios, hopeless at 10⁷. The fold surface streams each
//! scenario's full/compressed results to composable aggregates instead
//! (`cobra::core::folds`), so the questions an analyst actually asks —
//! *worst-case abstraction error? which scenario moves revenue most? how
//! are outcomes distributed?* — run in O(1) output memory, and
//! `sweep_fold_f64` answers them at `f64` lane-kernel speed with a
//! measured exact-vs-approximate divergence attached.
//!
//! Run with: `cargo run --release --example fold_sweep [steps]`
//! (default 47 → 47³ = 103,823 scenarios; 100 → 10⁶; 220 → 1.06 × 10⁷).

use cobra::core::folds::{self, ArgmaxImpact, Histogram, MaxAbsError, SweepFold, TopK};
use cobra::core::CobraSession;
use cobra::datagen::scenarios;
use cobra::datagen::telephony::Telephony;
use cobra::util::table::thousands;
use cobra::util::Stopwatch;

fn main() {
    let steps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(47)
        .max(2);

    let t = Telephony::paper_example();
    let polys = t.revenue_polyset();
    let mut session = CobraSession::new(t.reg, polys);
    session
        .add_tree_text(
            "Plans(Standard(p1,p2), Special(Y(y1,y2,y3), F(f1,f2), v), Business(SB(b1,b2), e))",
        )
        .unwrap();
    session.set_bound(6);
    session.compress().unwrap();

    let grid = scenarios::telephony_grid_steps(session.registry_mut(), [steps; 3]);
    println!(
        "grid: {} scenarios in {} axes (March ±20%, business ±10%, standard ±10%)\n",
        thousands(grid.len() as u64),
        grid.axes().map_or(0, <[_]>::len),
    );

    // ── One exact streamed pass, four aggregates, no result matrix ─────
    let base = session.baseline_results().unwrap();
    let sw = Stopwatch::start();
    let (worst, argmax, top, hist) = session
        .sweep_fold(
            &grid,
            (
                MaxAbsError::new(),
                ArgmaxImpact::against(base.clone()),
                TopK::new(0, 3),
                Histogram::new(0, 700.0, 1150.0, 9),
            ),
            |(w, a, t, h), item| {
                (
                    folds::step(w, item),
                    folds::step(a, item),
                    folds::step(t, item),
                    folds::step(h, item),
                )
            },
        )
        .unwrap();
    let exact_ms = sw.elapsed_ms();
    println!(
        "exact fold-sweep: {:.0} ms ({:.2} µs/scenario), O(1) output memory",
        exact_ms,
        exact_ms * 1e3 / grid.len() as f64
    );
    println!(
        "  worst-case abstraction error over the family: {:.6} (all axes \
         move whole tree groups → lossless)",
        worst.max_rel_error
    );
    let (amax, impact) = argmax.best().unwrap();
    println!(
        "  argmax impact: scenario {} ({}) with Σ|Δ| = {:.2}",
        amax,
        grid.describe(amax, session.registry()),
        impact
    );
    let top = top.finish();
    println!("  top-3 P1 revenue scenarios:");
    for (scenario, value) in &top {
        println!(
            "    #{scenario} {} → {:.2}",
            grid.describe(*scenario, session.registry()),
            value
        );
    }
    let hist = hist.finish();
    println!(
        "  P1 distribution over [700, 1150) in 9 bins: {:?} (out of range: {})",
        hist.counts,
        hist.underflow + hist.overflow
    );

    // ── The same aggregates at f64 lane-kernel speed ───────────────────
    let sw = Stopwatch::start();
    let ((worst64, argmax64), div) = session
        .sweep_fold_f64(
            &grid,
            (MaxAbsError::new(), ArgmaxImpact::against(base)),
            |(w, a), item| (folds::step(w, item), folds::step(a, item)),
        )
        .unwrap();
    let f64_ms = sw.elapsed_ms();
    println!(
        "\napproximate fold-sweep (f64 lane kernel): {:.0} ms \
         ({:.2} µs/scenario) — {:.1}× under the exact path",
        f64_ms,
        f64_ms * 1e3 / grid.len() as f64,
        exact_ms / f64_ms.max(1e-9)
    );
    println!(
        "  same answers: worst error {:.6}, argmax impact scenario {:?}",
        worst64.max_rel_error,
        argmax64.best().map(|(i, _)| i)
    );
    println!(
        "  measured divergence from exact over {} probed scenarios: {:.2e}",
        div.probed, div.max_rel_divergence
    );

    // ── The parallel fold-combine engine ───────────────────────────────
    // Any `MergeFold` (tuples included) fans across worker threads with
    // per-worker binders and fold replicas; partials merge in span order,
    // so the aggregates are bit-identical to the sequential pass at any
    // `COBRA_THREADS`.
    let sw = Stopwatch::start();
    let ((pworst, pargmax), pdiv) = session
        .sweep_fold_f64_par(
            &grid,
            (
                MaxAbsError::new(),
                ArgmaxImpact::against(session.baseline_results().unwrap()),
            ),
        )
        .unwrap();
    let par_ms = sw.elapsed_ms();
    assert_eq!(pworst.max_rel_error, worst64.max_rel_error);
    assert_eq!(pargmax.best(), argmax64.best());
    assert_eq!(pdiv.probed, div.probed);
    println!(
        "\nparallel fold-combine (sweep_fold_f64_par, {} worker(s)): {:.0} ms \
         ({:.2} µs/scenario) — bit-identical aggregates, O(workers) memory",
        cobra::util::par::num_threads(),
        par_ms,
        par_ms * 1e3 / grid.len() as f64
    );
}
